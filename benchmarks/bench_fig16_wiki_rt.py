"""Benchmark + regeneration of Figure 16 (Wikipedia RT vs CPU deflation)."""

from benchmarks.helpers import run_and_print


def test_fig16_wiki_rt(benchmark):
    result = benchmark.pedantic(run_and_print, args=("fig16",), rounds=1)
    rows = {r["deflation_pct"]: r for r in result.rows}
    assert rows[50]["mean_rt_s"] < 1.5 * rows[0]["mean_rt_s"]
