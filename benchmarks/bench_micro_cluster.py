"""Micro-benchmarks of the trace-driven cluster simulator and placement.

``test_resident_bookkeeping_hot_path`` stresses the admit/depart path that
used to pay an O(n) ``list.remove`` per departure plus a lazily-created
per-VM dict: huge servers keep thousands of VMs resident at once, and the
preemption policy sidesteps the rebalance math so bookkeeping dominates.
"""

import numpy as np
import pytest

from repro.core.placement import vectorized_cosine_scores
from repro.scenario import Scenario, run_sweep
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace


@pytest.mark.parametrize("n_servers", [64, 1024])
def test_vectorized_placement_scoring(benchmark, n_servers):
    rng = np.random.default_rng(3)
    availability = rng.uniform(0, 1, size=(n_servers, 4))
    demand = np.array([0.2, 0.3, 0.0, 0.0])
    scores = benchmark(vectorized_cosine_scores, demand, availability)
    assert scores.shape == (n_servers,)


@pytest.mark.parametrize("policy", ["proportional", "priority", "deterministic", "preemption"])
def test_cluster_replay(benchmark, policy):
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=300, seed=6))
    config = ClusterSimConfig(n_servers=8, policy=policy)

    def run():
        return ClusterSimulator(traces, config).run()

    result = benchmark.pedantic(run, rounds=3)
    assert result.n_placed > 0


def test_resident_bookkeeping_hot_path(benchmark):
    """Dense-resident stress: thousands of VMs resident per server."""
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=4000, seed=17))
    config = ClusterSimConfig(
        n_servers=2,
        cores_per_server=1e6,
        memory_per_server_mb=1e9,
        policy="preemption",
    )

    def run():
        return ClusterSimulator(traces, config).run()

    result = benchmark.pedantic(run, rounds=3)
    assert result.n_placed == len(traces)


def test_scenario_sweep_pipeline(benchmark):
    """End-to-end Scenario grid through run_sweep (serial, 4 points)."""
    base = Scenario(name="bench").with_workload("azure", n_vms=200, seed=6)
    grid = [
        base.with_policy(p).with_overcommitment(oc)
        for p in ("proportional", "preemption")
        for oc in (0.0, 0.5)
    ]

    results = benchmark.pedantic(lambda: run_sweep(grid), rounds=1)
    assert len(results) == len(grid)


def test_trace_synthesis(benchmark):
    def run():
        return synthesize_azure_trace(AzureTraceConfig(n_vms=500, seed=9))

    traces = benchmark.pedantic(run, rounds=3)
    assert len(traces) == 500
