"""Micro-benchmarks of the trace-driven cluster simulator and placement."""

import numpy as np
import pytest

from repro.core.placement import vectorized_cosine_scores
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace


@pytest.mark.parametrize("n_servers", [64, 1024])
def test_vectorized_placement_scoring(benchmark, n_servers):
    rng = np.random.default_rng(3)
    availability = rng.uniform(0, 1, size=(n_servers, 4))
    demand = np.array([0.2, 0.3, 0.0, 0.0])
    scores = benchmark(vectorized_cosine_scores, demand, availability)
    assert scores.shape == (n_servers,)


@pytest.mark.parametrize("policy", ["proportional", "priority", "deterministic", "preemption"])
def test_cluster_replay(benchmark, policy):
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=300, seed=6))
    config = ClusterSimConfig(n_servers=8, policy=policy)

    def run():
        return ClusterSimulator(traces, config).run()

    result = benchmark.pedantic(run, rounds=3)
    assert result.n_placed > 0


def test_trace_synthesis(benchmark):
    def run():
        return synthesize_azure_trace(AzureTraceConfig(n_vms=500, seed=9))

    traces = benchmark.pedantic(run, rounds=3)
    assert len(traces) == 500
