"""Benchmark + regeneration of Figure 14 (transparent vs hybrid memory
deflation for SpecJBB)."""

from benchmarks.helpers import run_and_print


def test_fig14_specjbb_memory(benchmark):
    result = benchmark(run_and_print, "fig14")
    rows = {r["deflation_pct"]: r for r in result.rows}
    assert rows[30.0]["hybrid_rt"] < rows[30.0]["transparent_rt"]
