"""Benchmark + regeneration of fig11 (feasibility analysis)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig11_disk(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig11",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    assert result.rows
