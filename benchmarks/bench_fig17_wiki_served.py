"""Benchmark + regeneration of Figure 17 (% Wikipedia requests served)."""

from benchmarks.helpers import run_and_print


def test_fig17_wiki_served(benchmark):
    result = benchmark.pedantic(run_and_print, args=("fig17",), rounds=1)
    rows = {r["deflation_pct"]: r["served_pct"] for r in result.rows}
    assert rows[70] > 98
