"""Benchmark + regeneration of fig08 (feasibility analysis)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig08_by_peak(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig08",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    assert result.rows
