"""Micro-benchmarks of the processor-sharing network engine.

Event throughput bounds how long the application experiments take; the
single-station case doubles as a regression guard on the wake-dedup logic
(naive rescheduling is quadratic under overload).
"""

import pytest

from repro.queueing.ps_server import PSServer
from repro.traces.workload_gen import make_request_trace


@pytest.mark.parametrize("rho", [0.5, 0.9, 1.5])
def test_ps_server_event_throughput(benchmark, rho):
    wl = make_request_trace(
        rate_per_s=100 * rho, duration_s=30, mean_service_s=0.01, seed=1
    )

    def run():
        return PSServer(cores=1).simulate(wl, timeout_s=5.0)

    result = benchmark(run)
    assert result.n_arrived == wl.n_requests


def test_socialnet_simulation_throughput(benchmark):
    from repro.microsim.app import SocialNetworkApp

    app = SocialNetworkApp(seed=2)

    def run():
        return app.simulate(rate_per_s=300, duration_s=5, deflation=0.3, seed=2)

    result = benchmark.pedantic(run, rounds=3)
    assert result.n_completed > 0
