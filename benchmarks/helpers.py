"""Shared helpers for the figure benchmarks.

Each ``bench_figXX`` file regenerates one paper figure under
pytest-benchmark and prints the reproduced series, so
``pytest benchmarks/ --benchmark-only`` both times the pipelines and emits
the same rows the paper reports.

Heavier experiments cache intermediate artifacts (traces, sweeps) via
``functools.lru_cache``; benchmarks clear those caches in setup so each
round measures the real pipeline, not a dictionary lookup.
"""

from __future__ import annotations

from repro.experiments.registry import EXPERIMENTS


def run_and_print(figure_id: str, scale: str = "small"):
    """Run one experiment and print its table (used inside benchmarks)."""
    result = EXPERIMENTS[figure_id](scale)
    print()
    result.print_table()
    return result


def clear_experiment_caches() -> None:
    """Drop all cached traces/sweeps so a benchmark round is end-to-end.

    Covers every memo layer the pipeline grew: the per-figure trace caches,
    the scenario-level :class:`~repro.scenario.cache.SweepCache` behind
    figures 20-22, and the workload-resolution cache inside the scenario
    engine (which would otherwise hand later rounds a pre-synthesized
    trace).  A disk-backed sweep cache (``REPRO_SWEEP_CACHE_DIR``) is
    detached rather than wiped — benchmarks must measure cold runs, but
    never destroy a store the user asked to persist.
    """
    from repro.experiments import alibaba_feasibility, azure_feasibility, cluster_sweep
    from repro.scenario import engine as scenario_engine

    azure_feasibility.feasibility_trace.cache_clear()
    alibaba_feasibility.container_trace.cache_clear()
    cluster_sweep.cluster_sweep.cache_clear()
    scenario_engine._cached_workload.cache_clear()
