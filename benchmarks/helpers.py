"""Shared helpers for the figure benchmarks.

Each ``bench_figXX`` file regenerates one paper figure under
pytest-benchmark and prints the reproduced series, so
``pytest benchmarks/ --benchmark-only`` both times the pipelines and emits
the same rows the paper reports.

Heavier experiments cache intermediate artifacts (traces, sweeps) via
``functools.lru_cache``; benchmarks clear those caches in setup so each
round measures the real pipeline, not a dictionary lookup.
"""

from __future__ import annotations

from repro.experiments.registry import EXPERIMENTS


def run_and_print(figure_id: str, scale: str = "small"):
    """Run one experiment and print its table (used inside benchmarks)."""
    result = EXPERIMENTS[figure_id](scale)
    print()
    result.print_table()
    return result


def clear_experiment_caches() -> None:
    """Drop all cached traces/sweeps so a benchmark round is end-to-end."""
    from repro.experiments import alibaba_feasibility, azure_feasibility, cluster_sweep

    azure_feasibility.feasibility_trace.cache_clear()
    alibaba_feasibility.container_trace.cache_clear()
    cluster_sweep.cluster_sweep.cache_clear()
