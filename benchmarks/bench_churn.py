"""Churn-path benchmark: what failure injection costs the replay.

The churn machinery (correlated bursts, warning-time drains, server
arrivals) rides the injector's heap loop instead of the failure-free
array-sorted fast path, so its cost must be tracked separately.  This
module times one trace under four regimes against the failure-free
baseline replay of the same scenario:

* ``failure-free`` — the golden array loop (the reference cost);
* ``spot`` — PR 3's independent instant-evacuation path;
* ``correlated+warning`` — rack bursts with a budgeted drain (ticks,
  deadlines, retries: the heaviest new path);
* ``elastic`` — arrivals growing the server arrays mid-run.

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_churn.py
  --benchmark-only``) at a CI-friendly 2k VMs;
* :func:`run_churn_benchmark`, used by ``benchmarks/run_bench.py`` to
  produce the ``churn`` section of ``BENCH_cluster.json`` (5k VMs with
  ``--quick``, 20k in the full run).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.scenario.scenario import Scenario
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

#: Default trace size for the full run.
CHURN_N_VMS = 20_000
CHURN_SEED = 29

CHURN_OC = 0.3
CHURN_POLICY = "proportional"
CHURN_RATE = 0.002
CHURN_FAILURE_SEED = 17


def churn_scenarios(n_vms: int = CHURN_N_VMS, seed: int = CHURN_SEED) -> dict[str, Scenario]:
    """The timed regimes, sharing one pre-synthesized trace."""
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=n_vms, seed=seed))
    # Warm the shared per-record p95 cache so no timed case pays it first.
    ClusterSimulator(traces, ClusterSimConfig(n_servers=1, policy="preemption"))
    base = (
        Scenario(name="bench-churn")
        .with_traces(traces)
        .with_policy(CHURN_POLICY)
        .with_overcommitment(CHURN_OC)
    )
    return {
        "failure-free": base,
        "spot": base.with_failures(
            "spot", rate=CHURN_RATE, seed=CHURN_FAILURE_SEED, response="evacuate"
        ),
        "correlated+warning": base.with_topology(racks=8).with_failures(
            "correlated-spot",
            rate=CHURN_RATE,
            seed=CHURN_FAILURE_SEED,
            response="evacuate",
            warning_intervals=3,
            evacuation_budget=4,
        ),
        "elastic": base.with_failures(
            "elastic-pool",
            rate=CHURN_RATE,
            arrival_rate=0.01,
            seed=CHURN_FAILURE_SEED,
            response="evacuate",
        ),
    }


def run_churn_benchmark(
    n_vms: int = CHURN_N_VMS,
    seed: int = CHURN_SEED,
    rounds: int = 1,
    progress=None,
) -> dict:
    """Time the churn regimes; return the ``churn`` report section."""
    cases = churn_scenarios(n_vms, seed)
    times: dict[str, list[float]] = {label: [] for label in cases}
    # Rounds interleave across cases so shared-machine noise skews every
    # label equally instead of poisoning one.
    for _ in range(rounds):
        for label, scenario in cases.items():
            t0 = time.perf_counter()
            scenario.run()
            times[label].append(time.perf_counter() - t0)
    medians = {label: statistics.median(ts) for label, ts in times.items()}
    if progress is not None:
        for label, s in medians.items():
            progress(label, s)
    baseline = medians["failure-free"]
    report = {
        "n_vms": n_vms,
        "seed": seed,
        "policy": CHURN_POLICY,
        "overcommitment": CHURN_OC,
        "rate": CHURN_RATE,
        "rounds": rounds,
        "cases": {label: round(s, 4) for label, s in medians.items()},
    }
    for label, s in medians.items():
        if label != "failure-free" and baseline > 0:
            report[f"overhead_{label}"] = round(s / baseline, 3)
    return report


# -- pytest-benchmark entry points ---------------------------------------------------


@pytest.fixture(scope="module")
def scenarios_2k():
    return churn_scenarios(n_vms=2000, seed=CHURN_SEED)


def test_churn_replay_benchmark(benchmark, scenarios_2k):
    result = benchmark.pedantic(
        lambda: scenarios_2k["correlated+warning"].run(), rounds=1
    )
    assert result.collected["failure-injection"]["revocations"] > 0


def test_churn_paths_stay_deterministic(scenarios_2k):
    """Cheap guard: the timed scenarios are reproducible run to run."""
    scenario = scenarios_2k["correlated+warning"]
    assert scenario.run().sim == scenario.run().sim
