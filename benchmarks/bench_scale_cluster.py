"""Scaling benchmark: 20k-VM trace replay, optimized vs. pinned reference.

The fast-path rework of :class:`repro.simulator.cluster_sim.ClusterSimulator`
targets cloud-scale traces; this module measures it against the
pre-optimization snapshot (:mod:`repro.simulator.reference`) on a 20k-VM
synthetic Azure trace across the paper's four policies and three
overcommitment regimes.

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_scale_cluster.py
  --benchmark-only``) timing the optimized simulator on the headline cases;
* :func:`run_scale_benchmark`, the programmatic form used by
  ``benchmarks/run_bench.py`` to produce ``BENCH_cluster.json`` — it times
  optimized *and* reference end to end (construction + replay + metrics)
  and reports per-case and aggregate speedups.

The **headline** suite is the paper's featured comparison — proportional
deflation and the preemption baseline (Figures 20-22's protagonists) plus
the priority policy (Eqs. 3/4), whose replay is the water-fill solver's
showcase — at overcommitment 0.0/0.3/0.6; the rework's budget is >= 3x
end-to-end there.  The deterministic variant is measured and reported but
not headline.  Priority earned promotion when the closed-form breakpoint
solver replaced the 80-iteration bisection (the deliberate numerical
change pinned by ``repro/core/waterfill_reference.py``): its runtime was
the optimization target, so it is tracked where regressions gate.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimulator,
    servers_for_overcommitment,
)
from repro.simulator.reference import ReferenceClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

#: Default trace size for the scaling run (the ISSUE's 20k-VM target).
SCALE_N_VMS = 20000
SCALE_SEED = 11

#: (policy, overcommitment) cases whose aggregate carries the >= 3x target.
HEADLINE_CASES = tuple(
    (policy, oc)
    for policy in ("proportional", "preemption", "priority")
    for oc in (0.0, 0.3, 0.6)
)

#: Additional cases measured and recorded, but not part of the headline.
REPORT_CASES = tuple(("deterministic", oc) for oc in (0.0, 0.3, 0.6))


def scale_trace(n_vms: int = SCALE_N_VMS, seed: int = SCALE_SEED):
    return synthesize_azure_trace(AzureTraceConfig(n_vms=n_vms, seed=seed))


def replay(simulator_cls, traces, policy: str, oc: float):
    """One end-to-end run: sizing + construction + replay + metrics."""
    n_servers = servers_for_overcommitment(traces, oc)
    config = ClusterSimConfig(n_servers=n_servers, policy=policy)
    return simulator_cls(traces, config).run()


def run_scale_benchmark(
    n_vms: int = SCALE_N_VMS,
    seed: int = SCALE_SEED,
    rounds: int = 3,
    cases: tuple[tuple[str, float], ...] | None = None,
    verify: bool = True,
    progress=None,
) -> dict:
    """Time optimized vs. reference on every case; return the report dict."""
    traces = scale_trace(n_vms, seed)
    # Warm the (shared) per-record p95 cache so neither side pays it first.
    ClusterSimulator(traces, ClusterSimConfig(n_servers=1, policy="preemption"))
    all_cases = tuple(cases) if cases is not None else HEADLINE_CASES + REPORT_CASES
    report: dict = {
        "n_vms": n_vms,
        "seed": seed,
        "rounds": rounds,
        "cases": {},
    }
    head_opt = head_ref = 0.0
    for policy, oc in all_cases:
        times = {"optimized": [], "reference": []}
        results = {}
        for _ in range(rounds):
            for label, cls in (
                ("optimized", ClusterSimulator),
                ("reference", ReferenceClusterSimulator),
            ):
                t0 = time.perf_counter()
                results[label] = replay(cls, traces, policy, oc)
                times[label].append(time.perf_counter() - t0)
        if verify and results["optimized"] != results["reference"]:
            raise AssertionError(
                f"optimized result diverged from reference on {policy}@oc{oc}"
            )
        opt = statistics.median(times["optimized"])
        ref = statistics.median(times["reference"])
        case_name = f"{policy}@oc{oc:.1f}"
        headline = (policy, oc) in HEADLINE_CASES
        report["cases"][case_name] = {
            "optimized_s": round(opt, 4),
            "reference_s": round(ref, 4),
            "speedup": round(ref / opt, 3),
            "headline": headline,
        }
        if headline:
            head_opt += opt
            head_ref += ref
        if progress is not None:
            progress(case_name, report["cases"][case_name])
    tot_opt = sum(c["optimized_s"] for c in report["cases"].values())
    tot_ref = sum(c["reference_s"] for c in report["cases"].values())
    report["aggregate"] = {
        "optimized_s": round(tot_opt, 4),
        "reference_s": round(tot_ref, 4),
        "speedup": round(tot_ref / tot_opt, 3) if tot_opt else 0.0,
    }
    if head_opt:
        report["headline"] = {
            "cases": [f"{p}@oc{oc:.1f}" for p, oc in HEADLINE_CASES],
            "optimized_s": round(head_opt, 4),
            "reference_s": round(head_ref, 4),
            "speedup": round(head_ref / head_opt, 3),
        }
    return report


# -- pytest-benchmark entry points ---------------------------------------------------


@pytest.fixture(scope="module")
def traces_20k():
    traces = scale_trace()
    # Warm the shared p95 cache outside the timed region.
    ClusterSimulator(traces, ClusterSimConfig(n_servers=1, policy="preemption"))
    return traces


@pytest.mark.parametrize("policy,oc", HEADLINE_CASES, ids=lambda v: str(v))
def test_scale_replay_optimized(benchmark, traces_20k, policy, oc):
    result = benchmark.pedantic(replay, args=(ClusterSimulator, traces_20k, policy, oc), rounds=1)
    assert result.n_placed > 0


def test_scale_speedup_smoke(traces_20k):
    """Cheap guard (one headline case) that the fast path stays faster."""
    t0 = time.perf_counter()
    opt = replay(ClusterSimulator, traces_20k, "preemption", 0.3)
    t_opt = time.perf_counter() - t0
    t0 = time.perf_counter()
    ref = replay(ReferenceClusterSimulator, traces_20k, "preemption", 0.3)
    t_ref = time.perf_counter() - t0
    assert opt == ref
    assert t_ref > t_opt, f"reference ({t_ref:.2f}s) should trail optimized ({t_opt:.2f}s)"
