"""Benchmark + regeneration of Figure 3 (app performance vs deflation)."""

from benchmarks.helpers import run_and_print


def test_fig03_app_perf(benchmark):
    result = benchmark(run_and_print, "fig03")
    at_50 = next(r for r in result.rows if abs(r["deflation_pct"] - 50) < 1)
    assert at_50["Memcached"] > at_50["SpecJBB"]
