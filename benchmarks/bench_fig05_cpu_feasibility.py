"""Benchmark + regeneration of Figure 5 (CPU deflation feasibility)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig05_cpu_feasibility(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig05",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    at_50 = next(r for r in result.rows if abs(r["deflation_pct"] - 50) < 1)
    assert at_50["median"] <= 0.30
