"""Benchmark + regeneration of fig10 (feasibility analysis)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig10_membw(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig10",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    assert result.rows
