"""Benchmark + regeneration of fig07 (feasibility analysis)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig07_by_size(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig07",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    assert result.rows
