"""Tracked cluster-performance benchmark runner.

Runs the micro cluster benchmarks (small-trace replays, the dense-resident
bookkeeping stress, trace synthesis), the 20k-VM scaling comparison
against the pinned pre-optimization simulator, the sharded-engine 100k-VM
comparison, the churn-path overhead suite, and the 100k-VM priority-policy
frontier run, then writes the medians to ``BENCH_cluster.json`` so the
perf trajectory is visible across PRs::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full (20k VMs)
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # CI scale (5k VMs)
    PYTHONPATH=src python benchmarks/run_bench.py --out custom.json
    PYTHONPATH=src python benchmarks/run_bench.py --only churn    # refresh one section

``--only`` reruns just the named sections and merges them into the
existing output file (other sections are preserved verbatim), so a PR
touching one path can refresh its entry without paying for a full run.

The scaling section reports per-case optimized/reference wall-times and the
headline aggregate (proportional + preemption across overcommitment
regimes) whose budget is a >= 3x end-to-end speedup.  CI runs the quick
form as a non-gating job; the checked-in ``BENCH_cluster.json`` holds the
full run from the PR that produced it.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_churn import CHURN_N_VMS, run_churn_benchmark  # noqa: E402
from bench_lint import run_lint_benchmark  # noqa: E402
from bench_priority_scale import PRIORITY_N_VMS, run_priority_benchmark  # noqa: E402
from bench_scale_cluster import SCALE_N_VMS, run_scale_benchmark  # noqa: E402
from bench_sharded import SHARDED_N_VMS, run_sharded_benchmark  # noqa: E402

from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator  # noqa: E402
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace  # noqa: E402

#: Micro cases: small enough to run with several rounds every time.
MICRO_N_VMS = 300
MICRO_SEED = 6

#: Report sections, each refreshable independently via ``--only``.
_SECTIONS = ("micro", "scale", "sharded", "churn", "priority", "lint")


def _median_time(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def micro_benchmarks(rounds: int) -> dict:
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=MICRO_N_VMS, seed=MICRO_SEED))
    dense = synthesize_azure_trace(AzureTraceConfig(n_vms=4000, seed=17))
    cases: dict[str, float] = {}
    for policy in ("proportional", "priority", "deterministic", "preemption"):
        config = ClusterSimConfig(n_servers=8, policy=policy)
        cases[f"replay-300vm-{policy}"] = _median_time(
            lambda c=config: ClusterSimulator(traces, c).run(), rounds
        )
    dense_config = ClusterSimConfig(
        n_servers=2, cores_per_server=1e6, memory_per_server_mb=1e9, policy="preemption"
    )
    cases["dense-residents-4000vm"] = _median_time(
        lambda: ClusterSimulator(dense, dense_config).run(), rounds
    )
    cases["trace-synthesis-500vm"] = _median_time(
        lambda: synthesize_azure_trace(AzureTraceConfig(n_vms=500, seed=9)), rounds
    )
    return {k: round(v, 4) for k, v in cases.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI scale: 5k-VM scaling trace instead of 20k, single round",
    )
    parser.add_argument("--n-vms", type=int, default=None, help="scaling trace size")
    parser.add_argument("--rounds", type=int, default=3, help="micro rounds (median)")
    parser.add_argument(
        "--scale-rounds", type=int, default=None, help="scaling rounds (median; default 3, quick 1)"
    )
    parser.add_argument(
        "--sharded-n-vms",
        type=int,
        default=None,
        help="sharded-engine trace size (default 100k, quick 20k)",
    )
    parser.add_argument(
        "--sharded-rounds",
        type=int,
        default=None,
        help="sharded rounds (median; default 3, quick 1)",
    )
    parser.add_argument(
        "--churn-n-vms",
        type=int,
        default=None,
        help="churn-path trace size (default 20k, quick 5k)",
    )
    parser.add_argument(
        "--churn-rounds",
        type=int,
        default=None,
        help="churn rounds (median; default 3, quick 1)",
    )
    parser.add_argument(
        "--priority-n-vms",
        type=int,
        default=None,
        help="priority-frontier trace size (default 100k, quick 20k)",
    )
    parser.add_argument(
        "--priority-rounds",
        type=int,
        default=None,
        help="priority-frontier rounds (median; default 2, quick 1)",
    )
    parser.add_argument(
        "--only",
        choices=_SECTIONS,
        nargs="+",
        default=None,
        help="rerun only these sections, merging into the existing output file",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_cluster.json"
    )
    args = parser.parse_args(argv)

    n_vms = args.n_vms or (5000 if args.quick else SCALE_N_VMS)
    scale_rounds = args.scale_rounds or (1 if args.quick else 3)
    sharded_n_vms = args.sharded_n_vms or (20000 if args.quick else SHARDED_N_VMS)
    sharded_rounds = args.sharded_rounds or (1 if args.quick else 3)
    churn_n_vms = args.churn_n_vms or (5000 if args.quick else CHURN_N_VMS)
    churn_rounds = args.churn_rounds or (1 if args.quick else 3)
    priority_n_vms = args.priority_n_vms or (20000 if args.quick else PRIORITY_N_VMS)
    priority_rounds = args.priority_rounds or (1 if args.quick else 2)
    sections = set(args.only) if args.only else set(_SECTIONS)

    host = {"python": platform.python_version(), "machine": platform.machine()}
    report: dict = {"schema": 1, **host}
    partial = bool(args.only) and args.out.exists()
    if partial:
        # Partial refresh: keep the other sections verbatim.  The
        # top-level host metadata still describes the host of the last
        # full run, so each refreshed section gets its own "host" stamp
        # below — otherwise its numbers would be misattributed.
        report = json.loads(args.out.read_text())

    if "micro" in sections:
        print(f"[run_bench] micro benchmarks ({args.rounds} rounds)...", flush=True)
        micro = micro_benchmarks(args.rounds)
        for name, t in micro.items():
            print(f"  {name:28s} {t:8.4f}s")
        report["micro"] = {"n_vms": MICRO_N_VMS, "rounds": args.rounds, "cases": micro}

    if "scale" in sections:
        print(
            f"[run_bench] scaling benchmark ({n_vms} VMs, {scale_rounds} round(s), "
            "optimized vs reference)...",
            flush=True,
        )

        def progress(name, case):
            print(
                f"  {name:24s} opt={case['optimized_s']:8.3f}s "
                f"ref={case['reference_s']:8.3f}s speedup={case['speedup']:5.2f}x"
                f"{'  [headline]' if case['headline'] else ''}",
                flush=True,
            )

        report["scale"] = run_scale_benchmark(
            n_vms=n_vms, rounds=scale_rounds, progress=progress
        )

    if "sharded" in sections:
        print(
            f"[run_bench] sharded-engine benchmark ({sharded_n_vms} VMs, "
            f"{sharded_rounds} round(s), cluster-sim vs sharded)...",
            flush=True,
        )
        report["sharded"] = run_sharded_benchmark(
            n_vms=sharded_n_vms,
            rounds=sharded_rounds,
            progress=lambda label, s: print(f"  {label:24s} {s:8.3f}s", flush=True),
        )

    if "churn" in sections:
        print(
            f"[run_bench] churn-path benchmark ({churn_n_vms} VMs, "
            f"{churn_rounds} round(s), failure regimes vs failure-free)...",
            flush=True,
        )
        report["churn"] = run_churn_benchmark(
            n_vms=churn_n_vms,
            rounds=churn_rounds,
            progress=lambda label, s: print(f"  {label:24s} {s:8.3f}s", flush=True),
        )

    if "priority" in sections:
        print(
            f"[run_bench] priority-frontier benchmark ({priority_n_vms} VMs, "
            f"{priority_rounds} round(s), optimized only + small-scale verify)...",
            flush=True,
        )
        report["priority"] = run_priority_benchmark(
            n_vms=priority_n_vms,
            rounds=priority_rounds,
            progress=lambda name, case: print(
                f"  {name:24s} opt={case['optimized_s']:8.3f}s "
                f"({case['events_per_s']:,} events/s)",
                flush=True,
            ),
        )

    if "lint" in sections:
        lint_rounds = 1 if args.quick else args.rounds
        print(
            f"[run_bench] lint pass ({lint_rounds} round(s), serial + --jobs)...",
            flush=True,
        )
        report["lint"] = run_lint_benchmark(
            rounds=lint_rounds,
            progress=lambda label, s: print(f"  {label:24s} {s:8.3f}s", flush=True),
        )

    if partial:
        for section in sections:
            report[section]["host"] = host
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    if "scale" in sections:
        scale = report["scale"]
        agg = scale["aggregate"]
        head = scale.get("headline")
        print(f"[run_bench] aggregate: {agg['speedup']:.2f}x "
              f"(opt {agg['optimized_s']:.1f}s vs ref {agg['reference_s']:.1f}s)")
        if head:
            print(f"[run_bench] headline ({len(head['cases'])} cases): {head['speedup']:.2f}x")
    if "sharded" in sections:
        sharded = report["sharded"]
        print(
            f"[run_bench] sharded ({sharded['n_vms']} VMs, {sharded['n_shards']} shards): "
            + ", ".join(
                f"{k}={sharded[k]:.2f}x" for k in sorted(sharded) if k.startswith("speedup")
            )
        )
    if "churn" in sections:
        churn = report["churn"]
        print(
            f"[run_bench] churn ({churn['n_vms']} VMs): "
            + ", ".join(
                f"{k.removeprefix('overhead_')}={churn[k]:.2f}x"
                for k in sorted(churn)
                if k.startswith("overhead_")
            )
        )
    if "priority" in sections:
        prio = report["priority"]
        print(
            f"[run_bench] priority frontier ({prio['n_vms']} VMs): "
            + ", ".join(
                f"{name}={case['optimized_s']:.1f}s" for name, case in prio["cases"].items()
            )
        )
    print(f"[run_bench] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
