"""Tracked cluster-performance benchmark runner.

Runs the micro cluster benchmarks (small-trace replays, the dense-resident
bookkeeping stress, trace synthesis) and the 20k-VM scaling comparison
against the pinned pre-optimization simulator, then writes the medians to
``BENCH_cluster.json`` so the perf trajectory is visible across PRs::

    PYTHONPATH=src python benchmarks/run_bench.py                 # full (20k VMs)
    PYTHONPATH=src python benchmarks/run_bench.py --quick         # CI scale (5k VMs)
    PYTHONPATH=src python benchmarks/run_bench.py --out custom.json

The scaling section reports per-case optimized/reference wall-times and the
headline aggregate (proportional + preemption across overcommitment
regimes) whose budget is a >= 3x end-to-end speedup.  CI runs the quick
form as a non-gating job; the checked-in ``BENCH_cluster.json`` holds the
full run from the PR that produced it.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_scale_cluster import SCALE_N_VMS, run_scale_benchmark  # noqa: E402
from bench_sharded import SHARDED_N_VMS, run_sharded_benchmark  # noqa: E402

from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator  # noqa: E402
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace  # noqa: E402

#: Micro cases: small enough to run with several rounds every time.
MICRO_N_VMS = 300
MICRO_SEED = 6


def _median_time(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def micro_benchmarks(rounds: int) -> dict:
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=MICRO_N_VMS, seed=MICRO_SEED))
    dense = synthesize_azure_trace(AzureTraceConfig(n_vms=4000, seed=17))
    cases: dict[str, float] = {}
    for policy in ("proportional", "priority", "deterministic", "preemption"):
        config = ClusterSimConfig(n_servers=8, policy=policy)
        cases[f"replay-300vm-{policy}"] = _median_time(
            lambda c=config: ClusterSimulator(traces, c).run(), rounds
        )
    dense_config = ClusterSimConfig(
        n_servers=2, cores_per_server=1e6, memory_per_server_mb=1e9, policy="preemption"
    )
    cases["dense-residents-4000vm"] = _median_time(
        lambda: ClusterSimulator(dense, dense_config).run(), rounds
    )
    cases["trace-synthesis-500vm"] = _median_time(
        lambda: synthesize_azure_trace(AzureTraceConfig(n_vms=500, seed=9)), rounds
    )
    return {k: round(v, 4) for k, v in cases.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI scale: 5k-VM scaling trace instead of 20k, single round",
    )
    parser.add_argument("--n-vms", type=int, default=None, help="scaling trace size")
    parser.add_argument("--rounds", type=int, default=3, help="micro rounds (median)")
    parser.add_argument(
        "--scale-rounds", type=int, default=None, help="scaling rounds (median; default 3, quick 1)"
    )
    parser.add_argument(
        "--sharded-n-vms",
        type=int,
        default=None,
        help="sharded-engine trace size (default 100k, quick 20k)",
    )
    parser.add_argument(
        "--sharded-rounds",
        type=int,
        default=None,
        help="sharded rounds (median; default 3, quick 1)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_cluster.json"
    )
    args = parser.parse_args(argv)

    n_vms = args.n_vms or (5000 if args.quick else SCALE_N_VMS)
    scale_rounds = args.scale_rounds or (1 if args.quick else 3)
    sharded_n_vms = args.sharded_n_vms or (20000 if args.quick else SHARDED_N_VMS)
    sharded_rounds = args.sharded_rounds or (1 if args.quick else 3)

    print(f"[run_bench] micro benchmarks ({args.rounds} rounds)...", flush=True)
    micro = micro_benchmarks(args.rounds)
    for name, t in micro.items():
        print(f"  {name:28s} {t:8.4f}s")

    print(
        f"[run_bench] scaling benchmark ({n_vms} VMs, {scale_rounds} round(s), "
        "optimized vs reference)...",
        flush=True,
    )

    def progress(name, case):
        print(
            f"  {name:24s} opt={case['optimized_s']:8.3f}s "
            f"ref={case['reference_s']:8.3f}s speedup={case['speedup']:5.2f}x"
            f"{'  [headline]' if case['headline'] else ''}",
            flush=True,
        )

    scale = run_scale_benchmark(n_vms=n_vms, rounds=scale_rounds, progress=progress)

    print(
        f"[run_bench] sharded-engine benchmark ({sharded_n_vms} VMs, "
        f"{sharded_rounds} round(s), cluster-sim vs sharded)...",
        flush=True,
    )
    sharded = run_sharded_benchmark(
        n_vms=sharded_n_vms,
        rounds=sharded_rounds,
        progress=lambda label, s: print(f"  {label:24s} {s:8.3f}s", flush=True),
    )

    report = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "micro": {"n_vms": MICRO_N_VMS, "rounds": args.rounds, "cases": micro},
        "scale": scale,
        "sharded": sharded,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    agg = scale["aggregate"]
    head = scale.get("headline")
    print(f"[run_bench] aggregate: {agg['speedup']:.2f}x "
          f"(opt {agg['optimized_s']:.1f}s vs ref {agg['reference_s']:.1f}s)")
    if head:
        print(f"[run_bench] headline ({len(head['cases'])} cases): {head['speedup']:.2f}x")
    print(
        f"[run_bench] sharded ({sharded['n_vms']} VMs, {sharded['n_shards']} shards): "
        + ", ".join(
            f"{k}={sharded[k]:.2f}x" for k in sorted(sharded) if k.startswith("speedup")
        )
    )
    print(f"[run_bench] wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
