"""Lint-pass timing: the whole-program analysis must stay CI-cheap.

The lint-invariants CI job gates every PR with a hard wall-clock budget
(<60s), so the cost of the per-file rule pack, the ``ProjectIndex``
build (module graph + symbol table + call graph), and the repo-scope
rules that consume it is tracked here like any other perf surface.
Serial and ``--jobs`` timings are both recorded; the parallel phase must
stay bit-identical to serial, so the only thing it may change is the
wall-clock.
"""

from __future__ import annotations

import statistics
import time
from pathlib import Path

from repro.analysis.project import ProjectIndex
from repro.analysis.runner import collect_sources, run_lint

#: The tree the CI gate lints.
LINT_PATHS = ("src", "examples")


def run_lint_benchmark(rounds: int = 3, jobs: int = 2, progress=None) -> dict:
    root = Path(__file__).resolve().parent.parent
    paths = [root / p for p in LINT_PATHS]

    def timed(fn) -> float:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return statistics.median(times)

    index_s = timed(lambda: ProjectIndex(collect_sources(paths, root)))
    serial_s = timed(lambda: run_lint(paths, root=root, baseline_path=None))
    jobs_s = timed(lambda: run_lint(paths, root=root, baseline_path=None, jobs=jobs))

    report = run_lint(paths, root=root, baseline_path=None)
    result = {
        "paths": list(LINT_PATHS),
        "rounds": rounds,
        "files": report.files,
        "rules": len(report.rules),
        "index_s": round(index_s, 4),
        "serial_s": round(serial_s, 4),
        f"jobs{jobs}_s": round(jobs_s, 4),
    }
    if progress is not None:
        for key in ("index_s", "serial_s", f"jobs{jobs}_s"):
            progress(key, result[key])
    return result
