"""Priority-policy frontier benchmark: a 100k-VM water-fill replay.

The closed-form breakpoint water-fill (docs/performance.md, "Deliberate
numerical changes") plus the batched departure hot path moved the priority
policy from the slowest replay in ``BENCH_cluster.json`` to headline
territory; this module tracks how far up the ISSUE/ROADMAP "million-VM
event loop" axis that buys.  It times the optimized simulator alone at a
scale the pinned reference cannot reach in benchmark time (the reference's
per-event scans put a 100k-VM priority replay in the tens of minutes), and
keeps the bit-identity claim honest two ways instead:

* a verification replay at ``VERIFY_N_VMS`` asserts optimized ==
  reference end to end before any big case is timed;
* the golden, randomized-equivalence and water-fill equivalence suites
  pin the same code paths at test scale on every PR.

Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_priority_scale.py
  --benchmark-only``) at a CI-friendly 20k VMs;
* :func:`run_priority_benchmark`, used by ``benchmarks/run_bench.py`` to
  produce the ``priority`` section of ``BENCH_cluster.json`` (100k VMs in
  the full run, 20k with ``--quick``).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimulator,
    servers_for_overcommitment,
)
from repro.simulator.reference import ReferenceClusterSimulator
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

#: Default trace size for the full run (the ISSUE's >= 100k-VM target).
PRIORITY_N_VMS = 100_000
PRIORITY_SEED = 29

#: Overcommitment regimes timed for the big trace; 0.6 is the historical
#: pain point (11.8s at 20k VMs under the old bisection).
PRIORITY_OCS = (0.3, 0.6)

#: Scale of the optimized-vs-reference verification replay.
VERIFY_N_VMS = 5_000


def priority_trace(n_vms: int = PRIORITY_N_VMS, seed: int = PRIORITY_SEED):
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=n_vms, seed=seed))
    # Warm the shared per-record p95 cache so no timed run pays it first.
    ClusterSimulator(traces, ClusterSimConfig(n_servers=1, policy="preemption"))
    return traces


def replay(simulator_cls, traces, oc: float):
    """One end-to-end run: sizing + construction + replay + metrics."""
    n_servers = servers_for_overcommitment(traces, oc)
    config = ClusterSimConfig(n_servers=n_servers, policy="priority")
    return simulator_cls(traces, config).run()


def run_priority_benchmark(
    n_vms: int = PRIORITY_N_VMS,
    seed: int = PRIORITY_SEED,
    rounds: int = 2,
    ocs: tuple[float, ...] = PRIORITY_OCS,
    verify: bool = True,
    progress=None,
) -> dict:
    """Time the optimized priority replay at scale; return the report dict."""
    report: dict = {
        "n_vms": n_vms,
        "seed": seed,
        "rounds": rounds,
        "policy": "priority",
        "cases": {},
    }
    if verify:
        small = priority_trace(VERIFY_N_VMS, seed)
        for oc in ocs:
            opt = replay(ClusterSimulator, small, oc)
            ref = replay(ReferenceClusterSimulator, small, oc)
            if opt != ref:
                raise AssertionError(
                    f"optimized diverged from reference on priority@oc{oc} "
                    f"at {VERIFY_N_VMS} VMs"
                )
        report["verified_vs_reference_at_n_vms"] = VERIFY_N_VMS
    traces = priority_trace(n_vms, seed)
    n_events = 2 * len(traces)
    for oc in ocs:
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = replay(ClusterSimulator, traces, oc)
            times.append(time.perf_counter() - t0)
        assert result.n_placed > 0
        sec = statistics.median(times)
        case_name = f"priority@oc{oc:.1f}"
        report["cases"][case_name] = {
            "optimized_s": round(sec, 4),
            "events_per_s": round(n_events / sec),
        }
        if progress is not None:
            progress(case_name, report["cases"][case_name])
    return report


# -- pytest-benchmark entry points ---------------------------------------------------


@pytest.fixture(scope="module")
def traces_20k():
    return priority_trace(n_vms=20_000, seed=PRIORITY_SEED)


@pytest.mark.parametrize("oc", PRIORITY_OCS, ids=lambda v: f"oc{v}")
def test_priority_replay_optimized(benchmark, traces_20k, oc):
    result = benchmark.pedantic(replay, args=(ClusterSimulator, traces_20k, oc), rounds=1)
    assert result.n_placed > 0
