"""Benchmark + regeneration of fig09 (feasibility analysis)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig09_memory(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig09",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    assert result.rows
