"""Sharded-engine scaling benchmark: a 100k-VM partitioned trace replay.

The ``sharded`` engine targets traces beyond the single-process engine's
comfortable range (:mod:`bench_scale_cluster` stops at 20k VMs).  This
module times the same partitioned scenario end to end — engine
construction + shard planning + replay + merge — on both engines:

* ``cluster-sim`` — the single-process flat partitioned replay;
* ``sharded`` at ``workers=1`` and ``workers>=4`` — per-pool shards,
  serial and fanned out over worker processes.  The engine caps effective
  workers at the CPU count (oversubscribing cores with CPU-bound shards
  only adds overhead), so the report records the requested label, the
  effective count, and the machine's ``cpu_count``.

Every timed pair is verified bit-identical before it is reported (the
cross-engine golden contract), so the speedup is never bought with drift.
Two entry points:

* pytest-benchmark tests (``pytest benchmarks/bench_sharded.py
  --benchmark-only``) at a CI-friendly 20k VMs;
* :func:`run_sharded_benchmark`, used by ``benchmarks/run_bench.py`` to
  produce the ``sharded`` section of ``BENCH_cluster.json`` (100k VMs in
  the full run, 20k with ``--quick``).

The sharded engine wins twice: shards skip the flat partitioned run's
per-event candidate gathers (each shard *is* its whole cluster, so the
gather-free array paths apply), and on multi-core machines the pool
replays overlap.  The largest pool bounds the parallel win (Amdahl), so
speedups are reported per worker count rather than assumed linear.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.registry import create
from repro.scenario.scenario import Scenario
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimulator
from repro.simulator.sharded import ShardedEngine, plan_shards
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

#: Default trace size for the full run (the ISSUE's 100k-VM target).
SHARDED_N_VMS = 100_000
SHARDED_SEED = 23

#: The timed scenario: the paper's protagonist policy under real pressure.
SHARDED_OC = 0.3
SHARDED_POLICY = "proportional"

#: Worker counts timed for the sharded engine.
WORKER_COUNTS = (1, 4)


def sharded_scenario(n_vms: int = SHARDED_N_VMS, seed: int = SHARDED_SEED) -> Scenario:
    """The benchmark scenario, with the trace synthesized up front."""
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=n_vms, seed=seed))
    # Warm the shared per-record p95 cache so no timed side pays it first.
    ClusterSimulator(traces, ClusterSimConfig(n_servers=1, policy="preemption"))
    return (
        Scenario(name="bench-sharded")
        .with_traces(traces)
        .with_policy(SHARDED_POLICY)
        .with_overcommitment(SHARDED_OC)
        .with_partitions()
    )


def run_sharded_benchmark(
    n_vms: int = SHARDED_N_VMS,
    seed: int = SHARDED_SEED,
    rounds: int = 1,
    workers: tuple[int, ...] = WORKER_COUNTS,
    verify: bool = True,
    progress=None,
) -> dict:
    """Time cluster-sim vs sharded on one scenario; return the report dict."""
    scenario = sharded_scenario(n_vms, seed)
    plan = plan_shards(scenario)

    # Rounds are interleaved across the cases (cluster-sim, w1, w4,
    # cluster-sim, ...) so a slow phase of a shared machine skews every
    # label equally instead of poisoning whichever case it landed on.
    cases: list[tuple[str, object]] = [
        ("cluster-sim", lambda: create("engine", "cluster-sim").run(scenario))
    ]
    effective = {}
    for w in workers:
        label = f"sharded@w{w}"
        engine = ShardedEngine(workers=w)
        effective[label] = engine._resolve_workers(len(plan.specs))
        cases.append((label, lambda e=engine: e.run(scenario)))

    times: dict[str, list[float]] = {label: [] for label, _ in cases}
    results = {}
    for _ in range(rounds):
        for label, run in cases:
            t0 = time.perf_counter()
            results[label] = run()
            times[label].append(time.perf_counter() - t0)
    if verify:
        flat = results["cluster-sim"]
        for label, result in results.items():
            if result.sim != flat.sim:
                raise AssertionError(
                    f"{label} diverged from cluster-sim at {n_vms} VMs"
                )

    medians = {label: statistics.median(ts) for label, ts in times.items()}
    if progress is not None:
        for label, s in medians.items():
            progress(label, s)
    report = {
        "n_vms": n_vms,
        "seed": seed,
        "policy": SHARDED_POLICY,
        "overcommitment": SHARDED_OC,
        "n_servers": plan.n_servers,
        "n_shards": len(plan.specs),
        "shard_vms": [len(spec.traces) for spec in plan.specs],
        # Effective workers are capped at the CPU count (oversubscribing
        # cores with CPU-bound shards only adds overhead), so the recorded
        # machine matters when comparing entries across hosts.
        "cpu_count": os.cpu_count(),
        "rounds": rounds,
        "cases": {label: round(s, 4) for label, s in medians.items()},
        "effective_workers": effective,
    }
    flat_s = medians["cluster-sim"]
    for w in workers:
        shard_s = medians[f"sharded@w{w}"]
        report[f"speedup_w{w}"] = round(flat_s / shard_s, 3) if shard_s else 0.0
    return report


# -- pytest-benchmark entry points ---------------------------------------------------


@pytest.fixture(scope="module")
def scenario_20k():
    return sharded_scenario(n_vms=20000, seed=SHARDED_SEED)


def test_sharded_replay_benchmark(benchmark, scenario_20k):
    result = benchmark.pedantic(
        lambda: ShardedEngine(workers=4).run(scenario_20k), rounds=1
    )
    assert result.sim.n_placed > 0


def test_sharded_matches_and_beats_flat(scenario_20k):
    """Cheap guard: bit-identical and not slower than the flat replay."""
    t0 = time.perf_counter()
    flat = create("engine", "cluster-sim").run(scenario_20k)
    t_flat = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = ShardedEngine(workers=4).run(scenario_20k)
    t_sharded = time.perf_counter() - t0
    assert flat.sim == sharded.sim
    assert t_sharded < t_flat, (
        f"sharded ({t_sharded:.2f}s) should beat cluster-sim ({t_flat:.2f}s)"
    )
