"""Benchmark + regeneration of Figure 20 (failure probability vs OC)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig20_failure(benchmark):
    result = benchmark.pedantic(
        run_and_print, args=("fig20",), setup=clear_experiment_caches, rounds=1
    )
    top = max(r["overcommit_pct"] for r in result.rows)
    row = next(r for r in result.rows if r["overcommit_pct"] == top)
    assert row["proportional_failure"] < row["preemption_failure"]
