"""Benchmark + regeneration of fig12 (feasibility analysis)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig12_network(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig12",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    assert result.rows
