"""Benchmarks for the design-choice ablations."""

import pytest

from repro.experiments.ablations import ABLATIONS


@pytest.mark.parametrize("name", sorted(ABLATIONS))
def test_ablation(benchmark, name):
    result = benchmark.pedantic(ABLATIONS[name], args=("small",), rounds=1)
    print()
    result.print_table()
    assert result.rows
