"""Benchmark + regeneration of Figure 18 (social-network RT percentiles)."""

from benchmarks.helpers import run_and_print


def test_fig18_socialnet(benchmark):
    result = benchmark.pedantic(run_and_print, args=("fig18",), rounds=1)
    rows = {r["deflation_pct"]: r for r in result.rows}
    assert rows[65]["p99_ms"] > rows[0]["p99_ms"]
