"""Benchmark + regeneration of fig06 (feasibility analysis)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig06_by_class(benchmark):
    result = benchmark.pedantic(
        run_and_print,
        args=("fig06",),
        setup=clear_experiment_caches,
        rounds=3,
    )
    assert result.rows
