"""Micro-benchmarks of the deflation-policy solvers.

The cluster simulator evaluates a policy at every VM arrival/departure, so
per-call cost matters.  These benches also serve as an ablation of the
water-filling solver against the closed-form proportional path.
"""

import numpy as np
import pytest

from repro.core.deflation import POLICIES


def _pool(n, seed=0):
    rng = np.random.default_rng(seed)
    caps = rng.uniform(1, 32, size=n)
    mins = caps * 0.05
    prios = rng.choice([0.2, 0.4, 0.6, 0.8], size=n)
    return caps, mins, prios


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("n_vms", [8, 64, 512])
def test_policy_solver(benchmark, policy_name, n_vms):
    caps, mins, prios = _pool(n_vms)
    policy = POLICIES[policy_name]
    required = 0.5 * policy.max_reclaimable(caps, mins, prios)
    result = benchmark(policy.target_allocations, caps, mins, prios, required)
    assert result.satisfied
