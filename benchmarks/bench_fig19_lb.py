"""Benchmark + regeneration of Figure 19 (deflation-aware load balancing)."""

from benchmarks.helpers import run_and_print


def test_fig19_lb(benchmark):
    result = benchmark.pedantic(run_and_print, args=("fig19",), rounds=1)
    rows = {r["deflation_pct"]: r for r in result.rows}
    assert rows[80]["aware_p90_s"] < rows[80]["vanilla_p90_s"]
