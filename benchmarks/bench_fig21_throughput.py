"""Benchmark + regeneration of Figure 21 (throughput loss vs OC)."""

from benchmarks.helpers import clear_experiment_caches, run_and_print


def test_fig21_throughput(benchmark):
    result = benchmark.pedantic(
        run_and_print, args=("fig21",), setup=clear_experiment_caches, rounds=1
    )
    top = max(r["overcommit_pct"] for r in result.rows)
    row = next(r for r in result.rows if r["overcommit_pct"] == top)
    assert row["priority_loss"] < row["proportional_loss"]
