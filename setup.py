"""Legacy shim so `pip install -e . --no-use-pep517` works without the
`wheel` package (this environment is offline)."""
from setuptools import setup

setup()
