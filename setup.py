"""Legacy shim so `pip install -e . --no-use-pep517` works without the
`wheel` package (this environment is offline).

Also the packaging home of the ``repro-lint`` console entry point
(equivalent to ``python -m repro.analysis``; see docs/analysis.md).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro-lint=repro.analysis.cli:main",
        ],
    },
)
