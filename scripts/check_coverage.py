#!/usr/bin/env python3
"""Compare a coverage report against the committed baseline (stdlib only).

Reads the JSON written by ``measure_coverage.py`` (or ``pytest --cov
--cov-report=json``), compares ``totals.percent_covered`` with
``coverage-baseline.json`` at the repo root, and fails **only** on a
regression of more than ``TOLERANCE_PTS`` percentage points — coverage is
reported, not gated on, and the tolerance also absorbs the small gap
between the ``coverage`` package and the stdlib fallback tracer
(docs/testing.md#coverage).

Usage::

    python scripts/check_coverage.py coverage.json                    # compare
    python scripts/check_coverage.py coverage.json --update-baseline  # accept
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "coverage-baseline.json"
TOLERANCE_PTS = 2.0


def read_percent(report: Path) -> tuple[float, str]:
    data = json.loads(report.read_text(encoding="utf-8"))
    percent = float(data["totals"]["percent_covered"])
    tool = str(data.get("meta", {}).get("tool", "coverage"))
    return percent, tool


def main(argv: list[str]) -> int:
    update = "--update-baseline" in argv
    paths = [a for a in argv if not a.startswith("-")]
    if len(paths) != 1:
        print("usage: check_coverage.py REPORT.json [--update-baseline]", file=sys.stderr)
        return 2
    percent, tool = read_percent(Path(paths[0]))

    if update or not BASELINE.exists():
        BASELINE.write_text(
            json.dumps({"percent_covered": round(percent, 2), "tool": tool}, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {percent:.2f}% ({tool}) -> {BASELINE.name}")
        return 0

    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    floor = float(baseline["percent_covered"]) - TOLERANCE_PTS
    verdict = "OK" if percent >= floor else "REGRESSION"
    print(
        f"coverage {percent:.2f}% ({tool}) vs baseline "
        f"{baseline['percent_covered']:.2f}% ({baseline.get('tool', '?')}), "
        f"floor {floor:.2f}%: {verdict}"
    )
    if percent < floor:
        print(
            "coverage regressed by more than "
            f"{TOLERANCE_PTS:g} points; if deliberate, re-run with "
            "--update-baseline and commit coverage-baseline.json",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
