#!/usr/bin/env python3
"""Markdown link checker for the docs tree (stdlib only; used by CI).

The checking engine lives in ``src/repro/analysis/mdlinks.py`` so that
``repro-lint`` can run the same checks as its ``docs-links`` rule (one
lint entry point; see ``docs/analysis.md``).  This script stays the
standalone CI door: it loads the module by file path, so it needs no
``PYTHONPATH`` and imports nothing heavyweight.

Checks every link in the given markdown files/directories (relative
targets exist, reference labels are defined, ``#anchor`` fragments match
GitHub-style heading slugs or explicit ``<a id>`` anchors; external URLs
are never fetched), and additionally verifies that every ``docs/*.md``
page mentioned from the top-level pages (``README.md``, ``ISSUE.md``,
``ROADMAP.md``) exists.  Exit status is the number of broken links
(0 = everything resolves).

Usage::

    python scripts/check_links.py README.md docs
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

_MDLINKS = (
    Path(__file__).resolve().parent.parent / "src" / "repro" / "analysis" / "mdlinks.py"
)
_spec = importlib.util.spec_from_file_location("repro_mdlinks", _MDLINKS)
assert _spec is not None and _spec.loader is not None
_mdlinks = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_mdlinks)

# Re-exports: the unit tests (tests/scripts/test_check_links.py) and any
# downstream tooling keep addressing the checker through this script.
strip_code_blocks = _mdlinks.strip_code_blocks
github_slug = _mdlinks.github_slug
anchor_slugs = _mdlinks.anchor_slugs
check_file = _mdlinks.check_file
check_file_errors = _mdlinks.check_file_errors
referenced_docs_errors = _mdlinks.referenced_docs_errors
collect = _mdlinks.collect
main = _mdlinks.main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
