#!/usr/bin/env python3
"""Markdown link checker for the docs tree (stdlib only; used by CI).

Checks every ``[text](target)`` link in the given markdown files/directories:

* relative file targets must exist (resolved against the linking file);
* ``#anchor`` fragments — standalone or on a relative ``.md`` target —
  must match a GitHub-style heading slug in the target file;
* absolute URLs (http/https/mailto) are *not* fetched: external liveness
  is not this checker's job, and CI must not flake on the network.

Links inside fenced code blocks are ignored. Exit status is the number of
broken links (0 = everything resolves).

Usage::

    python scripts/check_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_FENCE = re.compile(r"^(```|~~~)")
#: Inline links: [text](target) — target captured up to the matching paren.
_LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def strip_code_blocks(text: str) -> list[str]:
    """The file's lines with fenced code blocks blanked out."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (minus duplicate suffixes)."""
    # Drop inline code/links markup, then non-word punctuation.
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.replace("`", "").strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    for line in strip_code_blocks(path.read_text(encoding="utf-8")):
        m = _HEADING.match(line)
        if m:
            slugs.add(github_slug(m.group(2)))
    return slugs


def iter_links(path: Path):
    """(line_number, target) for every inline link outside code blocks."""
    for i, line in enumerate(strip_code_blocks(path.read_text(encoding="utf-8")), 1):
        for m in _LINK.finditer(line):
            yield i, m.group(1)


def check_file(path: Path) -> list[str]:
    errors = []
    for lineno, target in iter_links(path):
        if target.startswith(_EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            errors.append(f"{path}:{lineno}: broken link target {target!r}")
            continue
        if fragment and dest.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(dest):
                errors.append(
                    f"{path}:{lineno}: anchor #{fragment} not found in {dest.name}"
                )
    return errors


def collect(args: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.suffix == ".md":
            files.append(p)
        else:
            print(f"warning: skipping non-markdown argument {arg}", file=sys.stderr)
    return files


def main(argv: list[str]) -> int:
    files = collect(argv or ["README.md", "docs"])
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} broken links")
    return min(len(errors), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
