#!/usr/bin/env python3
"""Measure line coverage of ``src/repro`` over the tier-1 suite.

Writes a ``coverage.py``-compatible JSON report (the subset
``check_coverage.py`` reads: ``totals.percent_covered`` plus a ``meta``
block recording the tool) so the comparison step is agnostic to how the
numbers were produced:

* when the ``coverage`` package is installed (CI installs ``pytest-cov``),
  it is used directly — same engine, canonical numbers;
* otherwise a stdlib ``sys.settrace`` line tracer records executed lines
  and the denominator is derived from the AST (statement lines, docstrings
  excluded).  The two methods agree closely but not exactly; the committed
  baseline records which tool produced it and ``check_coverage.py``'s
  two-point tolerance absorbs the gap (docs/testing.md#coverage).

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py coverage.json [pytest args...]

Extra arguments are passed to pytest verbatim (default: ``-q`` over the
repo's configured tier-1 selection).  Exit status is pytest's.
"""

from __future__ import annotations

import ast
import json
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def executable_lines(path: Path) -> set[int]:
    """Statement lines of a module, minus docstrings — the denominator."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            continue  # docstring / bare string literal
        lines.add(node.lineno)
    return lines


def _run_pytest(pytest_args: list[str]) -> int:
    import pytest

    return pytest.main(pytest_args or ["-q"])


def measure_with_coverage(out: Path, pytest_args: list[str]) -> int:
    import coverage

    cov = coverage.Coverage(source=["repro"])
    cov.start()
    try:
        status = _run_pytest(pytest_args)
    finally:
        cov.stop()
    cov.json_report(outfile=str(out))
    return status


def measure_with_settrace(out: Path, pytest_args: list[str]) -> int:
    prefix = str(SRC_ROOT) + "/"
    hits: dict[str, set[int]] = {}

    def local_trace(frame, event, arg):
        if event == "line":
            hits[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        # Prune at call time: frames outside src/repro are never traced,
        # which keeps the overhead on test code itself tolerable.
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        hits.setdefault(filename, set())
        return local_trace

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        status = _run_pytest(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    files: dict[str, dict[str, object]] = {}
    total_statements = total_covered = 0
    for path in sorted(SRC_ROOT.rglob("*.py")):
        statements = executable_lines(path)
        covered = hits.get(str(path), set()) & statements
        total_statements += len(statements)
        total_covered += len(covered)
        percent = 100.0 * len(covered) / len(statements) if statements else 100.0
        files[str(path.relative_to(REPO_ROOT))] = {
            "summary": {
                "num_statements": len(statements),
                "covered_lines": len(covered),
                "percent_covered": percent,
            }
        }
    percent = 100.0 * total_covered / total_statements if total_statements else 100.0
    report = {
        "meta": {"tool": "settrace", "source": "src/repro"},
        "files": files,
        "totals": {
            "num_statements": total_statements,
            "covered_lines": total_covered,
            "percent_covered": percent,
        },
    }
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return status


def main(argv: list[str]) -> int:
    if not argv or argv[0].startswith("-"):
        print("usage: measure_coverage.py OUTPUT.json [pytest args...]", file=sys.stderr)
        return 2
    out, pytest_args = Path(argv[0]), argv[1:]
    try:
        import coverage  # noqa: F401

        status = measure_with_coverage(out, pytest_args)
        tool = "coverage"
    except ImportError:
        status = measure_with_settrace(out, pytest_args)
        tool = "settrace"
    totals = json.loads(out.read_text(encoding="utf-8"))["totals"]
    print(f"coverage ({tool}): {totals['percent_covered']:.2f}% -> {out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
