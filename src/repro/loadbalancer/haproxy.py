"""Weighted round-robin load balancing, vanilla and deflation-aware.

The paper modifies HAProxy's Weighted Round Robin "by dynamically changing
the weights assigned to the different servers based on the current deflation
level, which adjusts the number of requests sent to each server based on the
'true' resource availability" (Section 6).

We implement the *smooth* WRR algorithm (the one nginx/HAProxy use): it
spreads picks of the same backend apart instead of bursting them, and it
honours weight changes immediately — exactly what the deflation-aware
variant needs when a deflation notification arrives mid-stream.
"""

from __future__ import annotations

from repro.core.controller import DeflationEvent
from repro.errors import SimulationError


class WeightedRoundRobin:
    """Smooth WRR over a fixed set of backends with mutable weights."""

    def __init__(self, weights: dict[str, float]) -> None:
        if not weights:
            raise SimulationError("need at least one backend")
        for name, w in weights.items():
            if w < 0:
                raise SimulationError(f"negative weight for {name}")
        if all(w == 0 for w in weights.values()):
            raise SimulationError("at least one backend must have weight > 0")
        self._weights = dict(weights)
        self._current = {name: 0.0 for name in weights}

    @property
    def weights(self) -> dict[str, float]:
        return dict(self._weights)

    def set_weight(self, backend: str, weight: float) -> None:
        if backend not in self._weights:
            raise SimulationError(f"unknown backend {backend!r}")
        if weight < 0:
            raise SimulationError("weight must be >= 0")
        self._weights[backend] = weight

    def pick(self) -> str:
        """Select the next backend (smooth WRR step)."""
        total = sum(self._weights.values())
        if total <= 0:
            raise SimulationError("all backend weights are zero")
        best: str | None = None
        for name, w in self._weights.items():
            self._current[name] += w
            if best is None or self._current[name] > self._current[best]:
                best = name
        assert best is not None
        self._current[best] -= total
        return best

    def pick_many(self, n: int) -> list[str]:
        return [self.pick() for _ in range(n)]


class DeflationAwareBalancer(WeightedRoundRobin):
    """WRR whose weights track each backend's effective CPU allocation.

    Wire :meth:`on_deflation` to a
    :class:`~repro.core.controller.LocalDeflationController` subscription
    (the paper's hypervisor->load-balancer notification channel, Figure 1)
    and the weights follow deflation automatically.
    """

    def __init__(self, backend_cpus: dict[str, float]) -> None:
        super().__init__(dict(backend_cpus))
        self._vm_to_backend: dict[str, str] = {name: name for name in backend_cpus}

    def map_vm(self, vm_id: str, backend: str) -> None:
        """Associate a VM id (as seen in deflation events) with a backend."""
        if backend not in self.weights:
            raise SimulationError(f"unknown backend {backend!r}")
        self._vm_to_backend[vm_id] = backend

    def on_deflation(self, event: DeflationEvent) -> None:
        backend = self._vm_to_backend.get(event.vm_id)
        if backend is None:
            return  # not one of ours
        self.set_weight(backend, max(event.new_allocation.cpu, 0.0))


def vanilla_weights(backends: list[str]) -> dict[str, float]:
    """Deflation-oblivious HAProxy default: equal static weights."""
    return {name: 1.0 for name in backends}


def deflation_aware_weights(effective_cpus: dict[str, float]) -> dict[str, float]:
    """Weights proportional to each backend's current (deflated) vCPUs."""
    return dict(effective_cpus)
