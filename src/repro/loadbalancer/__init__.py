"""Load balancing: vanilla and deflation-aware weighted round robin."""

from repro.loadbalancer.cluster import (
    FIG19_DEFLATION_PCT,
    LBPoint,
    WebClusterConfig,
    run_lb_sweep,
    run_web_cluster,
)
from repro.loadbalancer.haproxy import (
    DeflationAwareBalancer,
    WeightedRoundRobin,
    deflation_aware_weights,
    vanilla_weights,
)

__all__ = [
    "FIG19_DEFLATION_PCT",
    "LBPoint",
    "WebClusterConfig",
    "run_lb_sweep",
    "run_web_cluster",
    "DeflationAwareBalancer",
    "WeightedRoundRobin",
    "deflation_aware_weights",
    "vanilla_weights",
]
