"""Three-replica web cluster behind a load balancer (Figure 19).

The paper's setup: three Wikipedia replicas (10 vCPUs, 10 GB each) behind
HAProxy at 200 req/s; two replicas run on deflatable VMs and are deflated
equally, the third is on-demand.  Vanilla WRR keeps sending each replica a
third of the traffic; the deflation-aware balancer re-weights by effective
vCPUs, shifting load to the undeflated replica and cutting tail latency by
15–40% at 40–80% deflation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.feasibility.stats import percentile_summary
from repro.loadbalancer.haproxy import WeightedRoundRobin
from repro.queueing.network import PSNetwork, Visit

#: The paper's Figure 19 x-axis (deflation % of the two deflatable replicas).
FIG19_DEFLATION_PCT: tuple[int, ...] = (0, 10, 20, 30, 40, 50, 60, 70, 80)


@dataclass(frozen=True)
class WebClusterConfig:
    replica_cores: float = 10.0
    n_replicas: int = 3
    n_deflatable: int = 2
    request_rate: float = 200.0
    duration_s: float = 40.0
    timeout_s: float = 15.0
    #: Mean per-request CPU demand.  Calibrated so a replica at 80% deflation
    #: saturates under vanilla equal weighting (the paper's regime).
    mean_cpu_demand_s: float = 0.045
    cpu_demand_cv: float = 1.0
    #: Non-CPU base latency (page transfer etc.), lognormal.
    base_median_s: float = 0.12
    base_sigma: float = 0.5

    def __post_init__(self) -> None:
        if not (0 < self.n_deflatable < self.n_replicas + 1):
            raise SimulationError("need 0 < n_deflatable <= n_replicas")


@dataclass(frozen=True)
class LBPoint:
    deflation_pct: float
    policy: str
    mean_rt: float
    p90_rt: float
    served_fraction: float


def _replica_names(cfg: WebClusterConfig) -> list[str]:
    return [f"replica-{i}" for i in range(cfg.n_replicas)]


def run_web_cluster(
    cfg: WebClusterConfig,
    deflation_pct: float,
    deflation_aware: bool,
    seed: int = 0,
) -> LBPoint:
    """Simulate the 3-replica cluster at one deflation level."""
    if not (0 <= deflation_pct < 100):
        raise SimulationError("deflation percent must be in [0, 100)")
    d = deflation_pct / 100.0
    names = _replica_names(cfg)
    cores = {
        name: (
            max(cfg.replica_cores * (1.0 - d), 0.05)
            if i < cfg.n_deflatable
            else cfg.replica_cores
        )
        for i, name in enumerate(names)
    }

    if deflation_aware:
        weights = dict(cores)  # weights track effective vCPUs
    else:
        weights = {name: 1.0 for name in names}
    balancer = WeightedRoundRobin(weights)

    rng = np.random.default_rng(seed)
    capacities: dict[str, float] = dict(cores)
    capacities["delay"] = 1e9  # uncontended base-latency station
    net = PSNetwork(capacities)

    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / cfg.request_rate))
        if t >= cfg.duration_s:
            break
        backend = balancer.pick()
        demand = float(
            rng.lognormal(
                np.log(cfg.mean_cpu_demand_s) - 0.5 * np.log(1 + cfg.cpu_demand_cv**2),
                np.sqrt(np.log(1 + cfg.cpu_demand_cv**2)),
            )
        )
        base = float(rng.lognormal(np.log(cfg.base_median_s), cfg.base_sigma))
        plan = (Visit("delay", base), Visit(backend, demand))
        net.offer(t, plan, deadline=cfg.timeout_s)

    result = net.run()
    if result.response_times.size:
        pct = percentile_summary(result.response_times, (90,))
        p90 = pct[90]
        mean = result.mean_response
    else:
        p90 = float("nan")
        mean = float("nan")
    return LBPoint(
        deflation_pct=deflation_pct,
        policy="deflation-aware" if deflation_aware else "vanilla",
        mean_rt=mean,
        p90_rt=p90,
        served_fraction=result.served_fraction,
    )


def run_lb_sweep(
    cfg: WebClusterConfig | None = None,
    levels_pct: tuple[int, ...] = FIG19_DEFLATION_PCT,
    seed: int = 0,
) -> dict[str, list[LBPoint]]:
    """Figure 19: mean and p90 response times for both balancer policies."""
    cfg = cfg if cfg is not None else WebClusterConfig()
    return {
        policy: [
            run_web_cluster(cfg, pct, deflation_aware=(policy == "deflation-aware"), seed=seed)
            for pct in levels_pct
        ]
        for policy in ("vanilla", "deflation-aware")
    }
