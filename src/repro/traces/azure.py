"""Azure-style VM trace synthesizer.

The real dataset (Cortez et al., SOSP'17) is not redistributable here, so we
generate statistically matched traces: per-VM CPU-utilization series at
5-minute granularity with workload-class-conditioned behaviour.

Calibration targets, taken from the paper's Section 3.2.1:

* interactive VMs "tend to have lower overall utilization and hence more
  slack"; their underallocation impact grows from ~1% to ~15% as deflation
  goes 10% -> 50%;
* delay-insensitive (batch) VMs see ~1% to ~30% over the same range;
* the *median* VM spends <=20% of its time above a 50%-deflated allocation
  (Figure 5);
* VM size has no direct correlation with deflatability (Figure 7) — the
  generators therefore never condition utilization on size;
* VMs with higher 95th-percentile utilization are hit harder (Figure 8) —
  emerges automatically from per-VM heterogeneity.

Class-conditioned generators:

* **interactive** — a low baseline plus a diurnal sinusoid (web traffic) and
  Gaussian noise, with rare short bursts;
* **delay-insensitive** — an on/off Markov phase process: busy phases of high
  utilization (batch jobs running) alternating with idle phases;
* **unknown** — a mixture of the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.vm import VMClass
from repro.errors import TraceError
from repro.registry import register
from repro.traces.schema import INTERVALS_PER_DAY, VMTraceRecord, VMTraceSet

#: Azure-like size menu: (cores, memory_mb).  Mixes burstable-sized small VMs
#: with the larger D/E-series shapes so Figure 7's three buckets are populated.
SIZE_MENU: tuple[tuple[int, float], ...] = (
    (1, 1024.0),
    (1, 2048.0),
    (2, 4096.0),
    (2, 8192.0),
    (4, 8192.0),
    (4, 16384.0),
    (8, 32768.0),
    (16, 65536.0),
    (24, 65536.0),
)

#: Sampling weights for the size menu (small sizes dominate real clouds).
SIZE_WEIGHTS: tuple[float, ...] = (0.18, 0.16, 0.16, 0.12, 0.12, 0.10, 0.08, 0.05, 0.03)


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs for the synthesizer.

    ``class_mix`` follows the paper's observation that interactive VMs are
    roughly half the population ("this translates to roughly 50% of the VMs
    being deflatable").
    """

    n_vms: int = 1000
    horizon_intervals: int = 2 * INTERVALS_PER_DAY
    seed: int = 42
    class_mix: dict = field(
        default_factory=lambda: {
            VMClass.INTERACTIVE: 0.50,
            VMClass.DELAY_INSENSITIVE: 0.30,
            VMClass.UNKNOWN: 0.20,
        }
    )
    #: Mean VM lifetime in intervals (lognormal); Azure VMs are long-lived
    #: relative to the trace window.
    mean_lifetime_intervals: float = 0.35 * INTERVALS_PER_DAY
    #: Cluster arrivals are diurnal: more VMs start during business hours.
    #: Sinusoidal arrival intensity with this peak-to-trough ratio.  The
    #: peaky concurrency this produces matches the paper's observation that
    #: "the average VM deflation is not equal to the cluster overcommitment
    #: but is significantly lower" (clusters are provisioned for peak).
    diurnal_arrival_ratio: float = 5.0

    def __post_init__(self) -> None:
        if self.n_vms < 1:
            raise TraceError("n_vms must be >= 1")
        if self.horizon_intervals < 2:
            raise TraceError("horizon must be >= 2 intervals")
        total = sum(self.class_mix.values())
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise TraceError(f"class_mix must sum to 1, got {total}")


def _interactive_series(rng: np.ndarray, n: int, start: int) -> np.ndarray:
    """Diurnal interactive utilization (fraction of allocated CPU)."""
    baseline = rng.uniform(0.04, 0.28)
    amplitude = rng.uniform(0.18, 0.55)
    phase = rng.uniform(0, INTERVALS_PER_DAY)
    sharpness = rng.uniform(1.0, 3.0)
    t = np.arange(start, start + n)
    diurnal = 0.5 * (1.0 + np.sin(2 * np.pi * (t - phase) / INTERVALS_PER_DAY))
    series = baseline + amplitude * diurnal**sharpness
    series += rng.normal(0.0, 0.04, size=n)
    # Rare traffic bursts: a few short windows of elevated load.
    n_bursts = rng.poisson(n / (2.5 * INTERVALS_PER_DAY) + 0.2)
    for _ in range(n_bursts):
        pos = rng.integers(0, n)
        width = int(rng.integers(1, 8))
        series[pos : pos + width] += rng.uniform(0.2, 0.55)
    return np.clip(series, 0.0, 1.0)


def _batch_series(rng: np.ndarray, n: int, start: int) -> np.ndarray:
    """On/off batch utilization: busy phases of sustained high usage."""
    busy_level = rng.uniform(0.55, 0.92)
    idle_level = rng.uniform(0.02, 0.15)
    duty = rng.uniform(0.20, 0.60)  # fraction of time busy
    mean_busy_len = rng.uniform(6, 4 * 12)  # 30 min .. 4 h
    mean_idle_len = mean_busy_len * (1.0 - duty) / max(duty, 1e-3)
    series = np.empty(n)
    pos = 0
    busy = bool(rng.random() < duty)
    while pos < n:
        length = max(1, int(rng.exponential(mean_busy_len if busy else mean_idle_len)))
        level = busy_level if busy else idle_level
        end = min(n, pos + length)
        series[pos:end] = level + rng.normal(0.0, 0.05, size=end - pos)
        pos = end
        busy = not busy
    return np.clip(series, 0.0, 1.0)


def _unknown_series(rng: np.ndarray, n: int, start: int) -> np.ndarray:
    if rng.random() < 0.5:
        return _interactive_series(rng, n, start)
    return _batch_series(rng, n, start)


_GENERATORS = {
    VMClass.INTERACTIVE: _interactive_series,
    VMClass.DELAY_INSENSITIVE: _batch_series,
    VMClass.UNKNOWN: _unknown_series,
}


def _diurnal_start(rng: np.random.Generator, cfg: AzureTraceConfig) -> int:
    """Sample a start interval under sinusoidal (diurnal) arrival intensity.

    Rejection sampling against ``1 + (ratio-1) * (0.5 + 0.5 sin)``; a ratio
    of 1 degenerates to uniform starts.
    """
    hi = max(cfg.diurnal_arrival_ratio, 1.0)
    limit = max(1, cfg.horizon_intervals - 2)
    while True:
        t = int(rng.integers(0, limit))
        intensity = 1.0 + (hi - 1.0) * 0.5 * (
            1.0 + math.sin(2 * math.pi * t / INTERVALS_PER_DAY)
        )
        if rng.random() < intensity / hi:
            return t


def synthesize_azure_trace(config: AzureTraceConfig | None = None) -> VMTraceSet:
    """Generate an Azure-style VM trace set (deterministic per seed)."""
    cfg = config if config is not None else AzureTraceConfig()
    rng = np.random.default_rng(cfg.seed)

    classes = list(cfg.class_mix.keys())
    probs = np.array([cfg.class_mix[c] for c in classes], dtype=np.float64)
    probs = probs / probs.sum()
    size_probs = np.array(SIZE_WEIGHTS) / np.sum(SIZE_WEIGHTS)

    records: list[VMTraceRecord] = []
    for i in range(cfg.n_vms):
        vm_class = classes[int(rng.choice(len(classes), p=probs))]
        cores, memory_mb = SIZE_MENU[int(rng.choice(len(SIZE_MENU), p=size_probs))]

        # Lifetime: lognormal with the configured mean, at least 2 intervals,
        # clipped to what remains of the horizon after the start.
        mu = math.log(cfg.mean_lifetime_intervals) - 0.5
        lifetime = max(2, int(rng.lognormal(mean=mu, sigma=1.0)))
        start = _diurnal_start(rng, cfg)
        lifetime = min(lifetime, cfg.horizon_intervals - start)

        series = _GENERATORS[vm_class](rng, lifetime, start)
        records.append(
            VMTraceRecord(
                vm_id=f"azure-vm-{i}",
                vm_class=vm_class,
                cores=cores,
                memory_mb=memory_mb,
                start_interval=start,
                cpu_util=series,
            )
        )
    return VMTraceSet(records)


@register("workload", "azure")
def azure_workload(**params) -> VMTraceSet:
    """Registry adapter: build an Azure-style trace from plain kwargs.

    Accepts the :class:`AzureTraceConfig` fields as keyword arguments, so a
    declarative scenario can say ``{"source": "azure", "n_vms": 500,
    "seed": 31}`` without constructing config objects.
    """
    return synthesize_azure_trace(AzureTraceConfig(**params))
