"""Persistence for trace sets (compressed .npz).

Synthetic traces are cheap to regenerate, but the cluster benchmarks reuse
one trace across many policy runs; saving it keeps experiments exactly
comparable and makes runs reproducible from an artifact.  "Exactly
comparable" is meant literally: a save → load round-trip is **bit-stable**
— every numeric field (including the float64 ``cpu_util`` series) comes
back identical, so a reloaded trace replays to the same results and hashes
to the same sweep-cache keys as the original.

Two historical wrinkles this module now handles explicitly:

* ``allow_pickle=True`` used to be passed to :func:`numpy.savez_compressed`,
  which does not take that keyword — it silently stored a bogus scalar
  array named ``allow_pickle`` *inside* the archive.  New archives no
  longer contain it; loading tolerates (and ignores) the stray key in
  legacy archives.  ``allow_pickle`` belongs on the :func:`numpy.load`
  side only, where the object-dtype id/class arrays genuinely need it.
* utilization series used to be written as float32 and widened back on
  load, making round-trips lossy.  They are now persisted as float64;
  legacy float32 archives still load (at their stored precision).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.vm import VMClass
from repro.errors import TraceError
from repro.traces.schema import (
    ContainerTraceRecord,
    ContainerTraceSet,
    VMTraceRecord,
    VMTraceSet,
)

def _open_archive(path: str | Path) -> np.lib.npyio.NpzFile:
    """Open a trace archive, translating open-time failures into TraceError.

    Member data is decompressed lazily on access, so readers must also
    guard the member reads (:func:`_read_members`) — a truncated or
    bit-rotted member only surfaces there.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    try:
        return np.load(path, allow_pickle=True)
    except Exception as exc:  # truncated download, not a zip at all
        raise TraceError(f"trace file {path} is not a readable .npz archive: {exc}") from exc


def _read_members(path: str | Path, build):
    """Run ``build(archive)`` with every archive failure as TraceError."""
    with _open_archive(path) as data:
        try:
            return build(data)
        except KeyError as missing:
            raise TraceError(
                f"trace file {Path(path)} is missing archive member {missing}"
            ) from None
        except TraceError:
            raise
        except Exception as exc:  # corrupt member: zlib.error, BadZipFile, ...
            raise TraceError(
                f"trace file {Path(path)} has a corrupt archive member: {exc}"
            ) from exc


def save_vm_traces(traces: VMTraceSet, path: str | Path) -> None:
    """Write a VM trace set to a compressed .npz archive."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "vm_ids": np.array([r.vm_id for r in traces], dtype=object),
        "classes": np.array([r.vm_class.value for r in traces], dtype=object),
        "cores": np.array([r.cores for r in traces], dtype=np.int64),
        "memory_mb": np.array([r.memory_mb for r in traces], dtype=np.float64),
        "starts": np.array([r.start_interval for r in traces], dtype=np.int64),
    }
    for i, rec in enumerate(traces):
        payload[f"util_{i}"] = np.asarray(rec.cpu_util, dtype=np.float64)
    np.savez_compressed(path, **payload)


def load_vm_traces(path: str | Path) -> VMTraceSet:
    """Read a VM trace set produced by :func:`save_vm_traces`."""

    def build(data):
        return [
            VMTraceRecord(
                vm_id=str(data["vm_ids"][i]),
                vm_class=VMClass(str(data["classes"][i])),
                cores=int(data["cores"][i]),
                memory_mb=float(data["memory_mb"][i]),
                start_interval=int(data["starts"][i]),
                cpu_util=np.asarray(data[f"util_{i}"], dtype=np.float64),
            )
            for i in range(data["cores"].size)
        ]

    return VMTraceSet(_read_members(path, build))


def save_container_traces(traces: ContainerTraceSet, path: str | Path) -> None:
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "container_ids": np.array([r.container_id for r in traces], dtype=object),
    }
    for i, rec in enumerate(traces):
        payload[f"mem_{i}"] = np.asarray(rec.mem_util, dtype=np.float64)
        payload[f"membw_{i}"] = np.asarray(rec.mem_bw_util, dtype=np.float64)
        payload[f"disk_{i}"] = np.asarray(rec.disk_util, dtype=np.float64)
        payload[f"net_{i}"] = np.asarray(rec.net_util, dtype=np.float64)
    np.savez_compressed(path, **payload)


def load_container_traces(path: str | Path) -> ContainerTraceSet:
    def build(data):
        ids = data["container_ids"]
        return [
            ContainerTraceRecord(
                container_id=str(ids[i]),
                mem_util=np.asarray(data[f"mem_{i}"], dtype=np.float64),
                mem_bw_util=np.asarray(data[f"membw_{i}"], dtype=np.float64),
                disk_util=np.asarray(data[f"disk_{i}"], dtype=np.float64),
                net_util=np.asarray(data[f"net_{i}"], dtype=np.float64),
            )
            for i in range(ids.size)
        ]

    return ContainerTraceSet(_read_members(path, build))
