"""Persistence for trace sets (compressed .npz).

Synthetic traces are cheap to regenerate, but the cluster benchmarks reuse
one trace across many policy runs; saving it keeps experiments exactly
comparable and makes runs reproducible from an artifact.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.vm import VMClass
from repro.errors import TraceError
from repro.traces.schema import (
    ContainerTraceRecord,
    ContainerTraceSet,
    VMTraceRecord,
    VMTraceSet,
)


def save_vm_traces(traces: VMTraceSet, path: str | Path) -> None:
    """Write a VM trace set to a compressed .npz archive."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "vm_ids": np.array([r.vm_id for r in traces], dtype=object),
        "classes": np.array([r.vm_class.value for r in traces], dtype=object),
        "cores": np.array([r.cores for r in traces], dtype=np.int64),
        "memory_mb": np.array([r.memory_mb for r in traces], dtype=np.float64),
        "starts": np.array([r.start_interval for r in traces], dtype=np.int64),
    }
    for i, rec in enumerate(traces):
        payload[f"util_{i}"] = rec.cpu_util.astype(np.float32)
    np.savez_compressed(path, **payload, allow_pickle=True)


def load_vm_traces(path: str | Path) -> VMTraceSet:
    """Read a VM trace set produced by :func:`save_vm_traces`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    with np.load(path, allow_pickle=True) as data:
        n = data["cores"].size
        records = [
            VMTraceRecord(
                vm_id=str(data["vm_ids"][i]),
                vm_class=VMClass(str(data["classes"][i])),
                cores=int(data["cores"][i]),
                memory_mb=float(data["memory_mb"][i]),
                start_interval=int(data["starts"][i]),
                cpu_util=data[f"util_{i}"].astype(np.float64),
            )
            for i in range(n)
        ]
    return VMTraceSet(records)


def save_container_traces(traces: ContainerTraceSet, path: str | Path) -> None:
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "container_ids": np.array([r.container_id for r in traces], dtype=object),
    }
    for i, rec in enumerate(traces):
        payload[f"mem_{i}"] = rec.mem_util.astype(np.float32)
        payload[f"membw_{i}"] = rec.mem_bw_util.astype(np.float32)
        payload[f"disk_{i}"] = rec.disk_util.astype(np.float32)
        payload[f"net_{i}"] = rec.net_util.astype(np.float32)
    np.savez_compressed(path, **payload, allow_pickle=True)


def load_container_traces(path: str | Path) -> ContainerTraceSet:
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    with np.load(path, allow_pickle=True) as data:
        ids = data["container_ids"]
        records = [
            ContainerTraceRecord(
                container_id=str(ids[i]),
                mem_util=data[f"mem_{i}"].astype(np.float64),
                mem_bw_util=data[f"membw_{i}"].astype(np.float64),
                disk_util=data[f"disk_{i}"].astype(np.float64),
                net_util=data[f"net_{i}"].astype(np.float64),
            )
            for i in range(ids.size)
        ]
    return ContainerTraceSet(records)
