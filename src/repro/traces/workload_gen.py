"""Request-workload generators for the application-level experiments.

The testbed experiments in Section 7 drive web applications with open-loop
request generators (a custom Wikipedia generator and wrk2).  These helpers
produce arrival times and request service demands for the queueing and
microservice simulators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class RequestTrace:
    """Open-loop request workload: arrival times and CPU demands.

    ``arrivals`` are absolute times in seconds (sorted); ``service_demands``
    are CPU-seconds of work per request on one core.
    """

    arrivals: np.ndarray
    service_demands: np.ndarray

    def __post_init__(self) -> None:
        if self.arrivals.shape != self.service_demands.shape:
            raise TraceError("arrivals and service demands must align")
        if self.arrivals.size and np.any(np.diff(self.arrivals) < -1e-12):
            raise TraceError("arrivals must be sorted")

    @property
    def n_requests(self) -> int:
        return int(self.arrivals.size)

    @property
    def duration(self) -> float:
        return float(self.arrivals[-1]) if self.arrivals.size else 0.0

    @property
    def offered_load_cpu_seconds(self) -> float:
        return float(self.service_demands.sum())


def poisson_arrivals(rate_per_s: float, duration_s: float, rng: np.random.Generator) -> np.ndarray:
    """Homogeneous Poisson arrival times over [0, duration)."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise TraceError("rate and duration must be > 0")
    n_expected = rate_per_s * duration_s
    # Draw a few sigma extra gaps, then trim — avoids a Python loop.
    n_draw = int(n_expected + 6 * np.sqrt(n_expected) + 16)
    gaps = rng.exponential(1.0 / rate_per_s, size=n_draw)
    times = np.cumsum(gaps)
    return times[times < duration_s]


def lognormal_service_demands(
    n: int, mean_s: float, cv: float, rng: np.random.Generator
) -> np.ndarray:
    """Lognormal CPU demands with a target mean and coefficient of variation.

    Web-request costs are heavy-tailed (the Wikipedia generator samples the
    500 *largest* pages, 0.5–2.2 MB); a lognormal with cv ~1–2 captures that.
    """
    if mean_s <= 0 or cv <= 0:
        raise TraceError("mean and cv must be > 0")
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean_s) - sigma2 / 2.0
    return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=n)


def make_request_trace(
    rate_per_s: float,
    duration_s: float,
    mean_service_s: float,
    cv: float = 1.0,
    seed: int = 0,
) -> RequestTrace:
    """Poisson arrivals + lognormal demands, the default workload shape."""
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(rate_per_s, duration_s, rng)
    demands = lognormal_service_demands(arrivals.size, mean_service_s, cv, rng)
    return RequestTrace(arrivals=arrivals, service_demands=demands)


def diurnal_rate(
    t_seconds: np.ndarray, base_rate: float, peak_rate: float, period_s: float = 86_400.0
) -> np.ndarray:
    """Sinusoidal diurnal rate profile used by long-horizon examples."""
    if peak_rate < base_rate:
        raise TraceError("peak_rate must be >= base_rate")
    phase = 0.5 * (1 + np.sin(2 * np.pi * np.asarray(t_seconds) / period_s))
    return base_rate + (peak_rate - base_rate) * phase
