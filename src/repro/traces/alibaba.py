"""Alibaba-style container trace synthesizer.

The paper uses Alibaba's 2018 cluster trace for the memory/disk/network
feasibility analysis (Figures 9–12).  Calibration targets, straight from
Section 3.2.2:

* **memory occupancy** is *high*: "even at 10% memory deflation, the
  applications would spend more than 70% time underallocated" — over 90% of
  the services are JVM-based and over-allocate heap;
* **memory bandwidth** is *tiny*: "the mean memory bandwidth utilization
  across all containers being less than one-tenth of one percent, while the
  maximum is only 1%";
* **disk bandwidth**: "even at a high deflation level of 50%, containers are
  underallocated less than 1% of the time";
* **network bandwidth**: "only suffering underallocation 1% of their
  lifetime" at 70% deflation, and "below 50% deflation, the impact is
  near-zero".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.registry import register
from repro.traces.schema import (
    INTERVALS_PER_DAY,
    ContainerTraceRecord,
    ContainerTraceSet,
)


@dataclass(frozen=True)
class AlibabaTraceConfig:
    n_containers: int = 500
    horizon_intervals: int = 1 * INTERVALS_PER_DAY
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_containers < 1:
            raise TraceError("n_containers must be >= 1")
        if self.horizon_intervals < 2:
            raise TraceError("horizon must be >= 2 intervals")


def _memory_series(rng: np.random.Generator, n: int) -> np.ndarray:
    """JVM-style occupancy: very high (over-allocated heap), small drift.

    Calibrated so that at a 10% deflation threshold most containers are
    underallocated >70% of the time (Figure 9) — the paper stresses this is
    heap occupancy, *not* a true measure of need (see Figure 10).
    """
    level = rng.uniform(0.88, 0.985)
    drift = np.cumsum(rng.normal(0.0, 0.0015, size=n))
    series = level + drift - drift.mean()
    # Occasional GC / restart dips.
    n_dips = rng.poisson(0.5 * n / INTERVALS_PER_DAY + 0.1)
    for _ in range(n_dips):
        pos = int(rng.integers(0, n))
        width = int(rng.integers(1, 5))
        series[pos : pos + width] -= rng.uniform(0.08, 0.25)
    series += rng.normal(0.0, 0.008, size=n)
    return np.clip(series, 0.0, 1.0)


def _membw_series(rng: np.random.Generator, n: int) -> np.ndarray:
    """Memory-bus bandwidth: mean ~0.1%, max ~1% (Figure 10)."""
    base = rng.uniform(0.0002, 0.0015)
    series = rng.gamma(shape=2.0, scale=base / 2.0, size=n)
    # Rare activity spikes, still capped near 1%.
    spikes = rng.random(n) < 0.002
    series[spikes] += rng.uniform(0.002, 0.008, size=int(spikes.sum()))
    return np.clip(series, 0.0, 0.01)


def _disk_series(rng: np.random.Generator, n: int) -> np.ndarray:
    """Disk bandwidth: low baseline, rare heavy bursts (<1% above 50%)."""
    base = rng.uniform(0.01, 0.08)
    series = rng.gamma(shape=1.5, scale=base / 1.5, size=n)
    spikes = rng.random(n) < 0.004
    series[spikes] += rng.uniform(0.3, 0.6, size=int(spikes.sum()))
    return np.clip(series, 0.0, 1.0)


def _net_series(rng: np.random.Generator, n: int) -> np.ndarray:
    """Network (in+out, normalized): ~1% of time above a 70%-deflated
    allocation (threshold 0.3), near-zero above 0.5."""
    base = rng.uniform(0.03, 0.13)
    diurnal = 0.5 * (1 + np.sin(2 * np.pi * np.arange(n) / INTERVALS_PER_DAY))
    series = base * (0.6 + 0.8 * diurnal) + rng.normal(0.0, 0.01, size=n)
    spikes = rng.random(n) < 0.008
    series[spikes] += rng.uniform(0.1, 0.25, size=int(spikes.sum()))
    return np.clip(series, 0.0, 1.0)


def synthesize_alibaba_trace(config: AlibabaTraceConfig | None = None) -> ContainerTraceSet:
    """Generate an Alibaba-style container trace set (deterministic per seed)."""
    cfg = config if config is not None else AlibabaTraceConfig()
    rng = np.random.default_rng(cfg.seed)
    n = cfg.horizon_intervals
    records = [
        ContainerTraceRecord(
            container_id=f"alibaba-ct-{i}",
            mem_util=_memory_series(rng, n),
            mem_bw_util=_membw_series(rng, n),
            disk_util=_disk_series(rng, n),
            net_util=_net_series(rng, n),
        )
        for i in range(cfg.n_containers)
    ]
    return ContainerTraceSet(records)


@register("workload", "alibaba")
def alibaba_workload(**params) -> ContainerTraceSet:
    """Registry adapter: build an Alibaba-style container trace from kwargs."""
    return synthesize_alibaba_trace(AlibabaTraceConfig(**params))
