"""Trace substrate: Azure/Alibaba synthesizers, schemas, workload generators."""

from repro.traces.alibaba import AlibabaTraceConfig, synthesize_alibaba_trace
from repro.traces.azure import (
    SIZE_MENU,
    AzureTraceConfig,
    synthesize_azure_trace,
)
from repro.traces.io import (
    load_container_traces,
    load_vm_traces,
    save_container_traces,
    save_vm_traces,
)
from repro.traces.schema import (
    INTERVAL_SECONDS,
    INTERVALS_PER_DAY,
    ContainerTraceRecord,
    ContainerTraceSet,
    VMTraceRecord,
    VMTraceSet,
)
from repro.traces.workload_gen import (
    RequestTrace,
    diurnal_rate,
    lognormal_service_demands,
    make_request_trace,
    poisson_arrivals,
)

__all__ = [
    "AlibabaTraceConfig",
    "synthesize_alibaba_trace",
    "SIZE_MENU",
    "AzureTraceConfig",
    "synthesize_azure_trace",
    "load_container_traces",
    "load_vm_traces",
    "save_container_traces",
    "save_vm_traces",
    "INTERVAL_SECONDS",
    "INTERVALS_PER_DAY",
    "ContainerTraceRecord",
    "ContainerTraceSet",
    "VMTraceRecord",
    "VMTraceSet",
    "RequestTrace",
    "diurnal_rate",
    "lognormal_service_demands",
    "make_request_trace",
    "poisson_arrivals",
]
