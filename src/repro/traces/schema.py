"""Trace schemas shared by the feasibility analysis and the cluster simulator.

Two shapes of data, mirroring the paper's two datasets:

* :class:`VMTraceRecord` / :class:`VMTraceSet` — Azure-style VM traces: per-VM
  CPU-utilization time series at 5-minute granularity plus metadata (size,
  workload class, lifetime).
* :class:`ContainerTraceRecord` / :class:`ContainerTraceSet` — Alibaba-style
  container traces: memory occupancy, memory-bandwidth, disk and network
  utilization series.

Utilizations are fractions of the *allocated* resource in ``[0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.vm import VMClass
from repro.errors import TraceError

#: Trace interval length in seconds (the Azure dataset reports 5-minute
#: maxima; all our series use the same granularity).
INTERVAL_SECONDS = 300

#: Intervals per day at 5-minute granularity.
INTERVALS_PER_DAY = 24 * 60 * 60 // INTERVAL_SECONDS


def _check_utilization(series: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise TraceError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise TraceError(f"{name} must be non-empty")
    if np.any(arr < -1e-9) or np.any(arr > 1 + 1e-9):
        raise TraceError(f"{name} must lie in [0, 1]")
    return np.clip(arr, 0.0, 1.0)


@dataclass
class VMTraceRecord:
    """One VM's lifetime in an Azure-style trace."""

    vm_id: str
    vm_class: VMClass
    cores: int
    memory_mb: float
    start_interval: int
    cpu_util: np.ndarray  # fraction of allocated CPU, one entry per interval

    def __post_init__(self) -> None:
        self.cpu_util = _check_utilization(self.cpu_util, "cpu_util")
        if self.cores < 1 or self.memory_mb <= 0:
            raise TraceError("VM must have >= 1 core and > 0 memory")
        if self.start_interval < 0:
            raise TraceError("start_interval must be >= 0")

    @property
    def lifetime_intervals(self) -> int:
        return int(self.cpu_util.size)

    @property
    def end_interval(self) -> int:
        """Exclusive end interval."""
        return self.start_interval + self.lifetime_intervals

    @property
    def p95_cpu(self) -> float:
        """95th-percentile CPU utilization — the paper's deflatability proxy.

        Cached after the first access: sweeps replay one trace set against
        many cluster configurations, and recomputing the percentile per
        simulator construction dominated setup time at 20k VMs.
        """
        cached = self.__dict__.get("_p95_cpu")
        if cached is None:
            cached = float(np.percentile(self.cpu_util, 95))
            self.__dict__["_p95_cpu"] = cached
        return cached

    @property
    def mean_cpu(self) -> float:
        return float(self.cpu_util.mean())

    def size_class(self) -> str:
        """Figure 7's memory-size buckets."""
        if self.memory_mb <= 2 * 1024:
            return "small(<=2GB)"
        if self.memory_mb <= 8 * 1024:
            return "medium(<=8GB)"
        return "large(>8GB)"

    def peak_class(self) -> str:
        """Figure 8's 95th-percentile CPU buckets."""
        p = self.p95_cpu
        if p < 0.33:
            return "p95<33%"
        if p < 0.66:
            return "33%<=p95<66%"
        if p < 0.80:
            return "66%<=p95<80%"
        return "p95>=80%"


@dataclass
class VMTraceSet:
    """A collection of VM traces with bulk accessors."""

    records: list[VMTraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx: int) -> VMTraceRecord:
        return self.records[idx]

    def by_class(self, vm_class: VMClass) -> "VMTraceSet":
        return VMTraceSet([r for r in self.records if r.vm_class == vm_class])

    def by_size_class(self, label: str) -> "VMTraceSet":
        return VMTraceSet([r for r in self.records if r.size_class() == label])

    def by_peak_class(self, label: str) -> "VMTraceSet":
        return VMTraceSet([r for r in self.records if r.peak_class() == label])

    def horizon(self) -> int:
        """Last (exclusive) interval across all records."""
        return max((r.end_interval for r in self.records), default=0)

    def total_core_intervals(self) -> float:
        return float(sum(r.cores * r.lifetime_intervals for r in self.records))


@dataclass
class ContainerTraceRecord:
    """One container's lifetime in an Alibaba-style trace.

    All series share one length.  ``mem_bw_util`` is the memory-bus bandwidth
    utilization — the paper's proxy showing that high occupancy does not mean
    high memory activity (Figure 10).
    """

    container_id: str
    mem_util: np.ndarray
    mem_bw_util: np.ndarray
    disk_util: np.ndarray
    net_util: np.ndarray

    def __post_init__(self) -> None:
        self.mem_util = _check_utilization(self.mem_util, "mem_util")
        self.mem_bw_util = _check_utilization(self.mem_bw_util, "mem_bw_util")
        self.disk_util = _check_utilization(self.disk_util, "disk_util")
        self.net_util = _check_utilization(self.net_util, "net_util")
        n = self.mem_util.size
        for name in ("mem_bw_util", "disk_util", "net_util"):
            if getattr(self, name).size != n:
                raise TraceError("all container series must share one length")

    @property
    def lifetime_intervals(self) -> int:
        return int(self.mem_util.size)


@dataclass
class ContainerTraceSet:
    records: list[ContainerTraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx: int) -> ContainerTraceRecord:
        return self.records[idx]

    def series_matrix(self, name: str) -> np.ndarray:
        """Stack one series across containers (requires equal lengths)."""
        if not self.records:
            raise TraceError("empty trace set")
        arrays = [getattr(r, name) for r in self.records]
        lengths = {a.size for a in arrays}
        if len(lengths) != 1:
            raise TraceError("series lengths differ; cannot stack")
        return np.vstack(arrays)
