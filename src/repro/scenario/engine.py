"""Engines: how a declarative :class:`Scenario` actually executes.

An engine is a registered component (kind ``engine``) that turns a scenario
into a :class:`ScenarioResult`.  The stock :class:`ClusterSimEngine` drives
the array-backed trace replay (:mod:`repro.simulator.cluster_sim`); new
backends — an OO :class:`repro.cluster.ClusterManager` replay, a distributed
runner — plug in by registering another engine and naming it in the
scenario, with no changes to callers.

``build`` and ``run`` are separate so studies that must touch simulator
internals before the replay (e.g. the priority-level ablation re-quantizes
``vm_prio``) can still construct everything through the Scenario API.
"""

from __future__ import annotations

import abc
from functools import lru_cache

from repro.errors import SimulationError
from repro.failures import FailureInjector
from repro.registry import create, register
from repro.scenario.results import ScenarioResult
from repro.scenario.scenario import Scenario
from repro.simulator.cluster_sim import ClusterSimulator, servers_for_overcommitment
from repro.traces.schema import VMTraceSet


@lru_cache(maxsize=32)
def _cached_workload(key: tuple) -> VMTraceSet:
    params = dict(key)
    source = params.pop("source")
    return create("workload", source, **params)


def resolve_workload(scenario: Scenario) -> VMTraceSet:
    """Materialize the scenario's trace set.

    Declarative workload specs are cached per process (synthesis is
    deterministic per seed, so a grid of scenarios sharing one workload
    synthesizes it once — in every worker of a parallel sweep too).
    """
    if scenario.traces is not None:
        return scenario.traces
    if scenario.workload is None:
        raise SimulationError("scenario has no workload; use with_workload() or with_traces()")
    try:
        key = tuple(sorted(scenario.workload.items()))
        traces = _cached_workload(key)
    except TypeError:  # unhashable param (e.g. a dict-valued knob): skip cache
        params = dict(scenario.workload)
        traces = create("workload", params.pop("source"), **params)
    if not isinstance(traces, VMTraceSet):
        raise SimulationError(
            f"workload {scenario.workload.get('source')!r} produced "
            f"{type(traces).__name__}, not a VMTraceSet; the cluster engine "
            f"replays VM traces only"
        )
    return traces


def resolve_cluster(scenario: Scenario) -> tuple[VMTraceSet, int]:
    """Materialize ``(traces, n_servers)`` exactly as the engine would.

    The paper's sizing method: an explicit ``n_servers`` wins; otherwise
    the minimum cluster fitting the trace's peak committed load is shrunk
    to the target overcommitment.  Shared by :meth:`ClusterSimEngine.build`,
    the sharded planner, and :func:`~repro.scenario.sweep.fork_sweep`'s
    boundary validation — all three must agree on the resolved cluster.
    """
    traces = resolve_workload(scenario)
    if scenario.n_servers is not None:
        return traces, scenario.n_servers
    target = scenario.overcommitment if scenario.overcommitment is not None else 0.0
    return traces, servers_for_overcommitment(
        traces, target, cores_per_server=scenario.cores_per_server
    )


class Engine(abc.ABC):
    """Executes scenarios.  Subclasses register under kind ``engine``."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(self, scenario: Scenario) -> ScenarioResult:
        """Run one scenario to completion."""


@register("engine", "cluster-sim")
class ClusterSimEngine(Engine):
    """Replays the scenario on the array-backed trace-driven simulator."""

    name = "cluster-sim"

    def build(self, scenario: Scenario) -> ClusterSimulator:
        """Construct the fully-configured simulator without running it.

        A scenario carrying a ``failures`` spec gets a freshly-built
        :class:`~repro.failures.injector.FailureInjector` attached, so the
        pre-run surgery flow (``engine.build(s)`` then mutate then
        ``sim.run()``) works for failure-injected studies too.
        """
        traces, n_servers = resolve_cluster(scenario)
        sim = ClusterSimulator(traces, scenario.sim_config(n_servers))
        if scenario.failures is not None:
            sim.attach_failures(
                FailureInjector.from_spec(scenario.failures, topology=scenario.topology)
            )
        if scenario.checkpoint is not None:
            # Restore after the injector attaches: the snapshot decides
            # between a verbatim resume and a what-if fork by comparing
            # its stored spec against the attached injector's.
            sim.restore(scenario.checkpoint)
        return sim

    def run(self, scenario: Scenario) -> ScenarioResult:
        sim = self.build(scenario)
        return ScenarioResult(scenario=scenario, sim=sim.run())


# The second backend — the sharded scale-out engine — lives beside the
# simulator machinery it reuses; importing it registers ("engine",
# "sharded").  Imported last so its `from repro.scenario.engine import
# Engine` sees this module fully defined.
import repro.simulator.sharded  # noqa: E402,F401
