"""Step a live scenario: bounded-memory streaming over long traces.

:class:`ScenarioStream` is the interactive/service-mode face of the
checkpoint machinery: build a scenario once, then :meth:`advance` the
replay boundary step by step — snapshotting (:meth:`snapshot`), forking
what-if branches mid-flight, or finishing (:meth:`result`) at any point.
With ``compact=True`` each advance also finalizes the metric terms of VMs
that ended behind the boundary and drops their allocation-history rows, so
a month-long trace streams through in memory proportional to the *live*
population instead of the whole trace — with the final result still
bit-identical to a one-shot ``scenario.run()``
(``tests/scenario/test_stream.py`` pins this).

Only the ``cluster-sim`` engine streams: the sharded engine's per-pool
workers have no single event boundary to stop at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.scenario.results import ScenarioResult
from repro.scenario.scenario import Scenario

__all__ = ["ScenarioStream", "StreamTick"]


@dataclass(frozen=True)
class StreamTick:
    """One :meth:`ScenarioStream.advance` step's progress report."""

    #: The stream boundary after the step: every event strictly before it
    #: has been processed.
    t: float
    #: Committed CPU cores across the cluster at the boundary.
    committed_cores: float
    #: VMs whose metric terms have been finalized by compaction so far
    #: (0 when the stream does not compact).
    finalized_vms: int
    #: Live allocation-history rows after the step (the bounded-memory
    #: quantity: without compaction it only ever grows).
    history_rows: int


class ScenarioStream:
    """A scenario advancing through its trace under caller control.

    >>> stream = ScenarioStream(scenario, compact=True)
    >>> for boundary in range(0, horizon, 1000):
    ...     tick = stream.advance(boundary)
    >>> result = stream.result()   # == scenario.run(), bit for bit

    ``compact=True`` bounds memory by finalizing ended VMs' metric terms
    and dropping their history rows at each advance (``compact_lag``
    intervals behind the boundary, leaving requeue/restart races a grace
    window).  :meth:`snapshot` freezes the current boundary for
    :meth:`Scenario.with_checkpoint` /
    :func:`~repro.scenario.sweep.fork_sweep`.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        compact: bool = False,
        compact_lag: float = 0.0,
    ) -> None:
        if scenario.engine != "cluster-sim":
            raise SimulationError(
                f"only the 'cluster-sim' engine streams; scenario uses {scenario.engine!r}"
            )
        if compact_lag < 0.0:
            raise SimulationError("compact_lag must be >= 0")
        from repro.scenario.engine import ClusterSimEngine

        self.scenario = scenario
        self._sim = ClusterSimEngine().build(scenario)
        self._compact = bool(compact)
        self._lag = float(compact_lag)
        self._result: ScenarioResult | None = None

    @property
    def at(self) -> float:
        """The current stream boundary (0.0 before the first advance)."""
        stream = self._sim._stream
        return 0.0 if stream is None else float(stream["at"])

    def advance(self, until: float) -> StreamTick:
        """Process every event strictly before ``until``; returns a tick."""
        if self._result is not None:
            raise SimulationError("stream already finished; build a new one")
        sim = self._sim
        sim.run_until(until)
        if self._compact:
            sim.compact_history(max(0.0, float(until) - self._lag))
        final = sim._final_terms
        return StreamTick(
            t=self.at,
            committed_cores=float(sim._committed_cores),
            finalized_vms=0 if final is None else int(final["mask"].sum()),
            history_rows=int(sim._hist_n),
        )

    def snapshot(self):
        """Freeze the current boundary as a ``SimSnapshot``."""
        if self._result is not None:
            raise SimulationError("stream already finished; nothing left to snapshot")
        self._sim._ensure_stream()
        return self._sim.snapshot()

    def result(self) -> ScenarioResult:
        """Finish the remainder and collect (idempotent once finished)."""
        if self._result is None:
            self._result = ScenarioResult(scenario=self.scenario, sim=self._sim.run())
        return self._result
