"""Memoized sweeps: a result cache keyed on canonical scenario hashes.

The figure harnesses replay the *same* (policy x overcommitment) grids over
and over — across figures 20-22 (which share one sweep), across benchmark
rounds, and across interactive sessions.  Every simulator run is
deterministic in its :class:`~repro.scenario.scenario.Scenario`, so a sweep
result can be memoized on a canonical hash of ``Scenario.to_dict()``:

* the dict elides defaults, so two scenarios spelled differently but
  meaning the same thing share a key;
* *any* field change — policy, workload params, cluster shape, admission
  rule, collectors — changes the canonical JSON and therefore the key;
* scenarios carrying explicit in-memory traces do not serialize and are
  never cached (they fall through to a normal run).

Two backends behind one class: in-memory (default — process-lifetime
memoization, used by the experiment harnesses) and on-disk JSON (one file
per key under a directory, surviving across processes; results round-trip
through a tagged encoding so tuples and numpy scalars come back exactly as
the simulator produced them).  Opt in via ``run_sweep(..., cache=...)``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import SimulationError
from repro.scenario.results import ScenarioResult
from repro.scenario.scenario import Scenario
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimResult

#: Bump when the stored payload layout changes; part of every cache key, so
#: stale on-disk entries from older layouts are simply never hit.
CACHE_FORMAT_VERSION = 1


def scenario_key(scenario: Scenario) -> str:
    """Canonical cache key: sha256 over the scenario's sorted-key JSON.

    Checkpoint-carrying scenarios key on the declarative fields *plus* the
    snapshot's own fingerprint — the same scenario forked from a different
    warm prefix is a different run and must not collide.  Raises
    :class:`SimulationError` for scenarios that cannot serialize (explicit
    traces); use :func:`cacheable` to probe first.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "scenario": scenario.without_checkpoint().to_dict(),
    }
    if scenario.checkpoint is not None:
        payload["checkpoint"] = scenario.checkpoint.fingerprint()
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def cacheable(scenario: Scenario) -> bool:
    """True when the scenario serializes (and can therefore be memoized)."""
    return scenario.traces is None


# -- tagged JSON encoding -----------------------------------------------------------
#
# Results must round-trip *exactly*: a warm cache hit has to compare equal to
# the cold run, including tuples inside collector payloads and float bit
# patterns (repr round-trips IEEE doubles losslessly).


def _encode(obj):
    if isinstance(obj, tuple):
        return {"__tuple__": [_encode(x) for x in obj]}
    if isinstance(obj, list):
        return [_encode(x) for x in obj]
    if isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            raise TypeError("only string dict keys are cacheable")
        return {k: _encode(v) for k, v in obj.items()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "__dtype__": str(obj.dtype)}
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot cache object of type {type(obj).__name__}")


def _decode(obj):
    if isinstance(obj, dict):
        if "__tuple__" in obj and len(obj) == 1:
            return tuple(_decode(x) for x in obj["__tuple__"])
        if "__ndarray__" in obj and "__dtype__" in obj and len(obj) == 2:
            return np.asarray(obj["__ndarray__"], dtype=obj["__dtype__"])
        return {k: _decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_decode(x) for x in obj]
    return obj


# Derived from the dataclasses so a future field cannot silently drop out
# of the payload (which would break the warm==cold guarantee): new fields
# are stored and restored automatically, and reconstruction fails loudly if
# a stored payload no longer matches the dataclass shape.
_SIM_FIELDS = tuple(
    f.name for f in dataclasses.fields(ClusterSimResult) if f.name != "config"
)
_CONFIG_FIELDS = tuple(f.name for f in dataclasses.fields(ClusterSimConfig))


def _result_to_payload(result: ScenarioResult) -> dict:
    sim = result.sim
    scenario = result.scenario
    payload = {
        "version": CACHE_FORMAT_VERSION,
        # A snapshot is live state and does not serialize to JSON; the
        # checkpoint already shaped the key via its fingerprint, so the
        # stored scenario is the declarative remainder.  Disk hits for
        # checkpointed runs therefore come back with ``scenario.checkpoint
        # is None`` (the *result* values are still bit-identical); the
        # in-memory backend stores the live object and keeps it.
        "scenario": scenario.without_checkpoint().to_dict(),
        "config": _encode({f: getattr(sim.config, f) for f in _CONFIG_FIELDS}),
        "sim": _encode({f: getattr(sim, f) for f in _SIM_FIELDS}),
    }
    if scenario.checkpoint is not None:
        payload["checkpoint"] = scenario.checkpoint.fingerprint()
    return payload


def _payload_to_result(payload: dict) -> ScenarioResult:
    config_kwargs = _decode(payload["config"])
    config_kwargs["collectors"] = tuple(config_kwargs.get("collectors", ()))
    sim = ClusterSimResult(
        config=ClusterSimConfig(**config_kwargs), **_decode(payload["sim"])
    )
    return ScenarioResult(scenario=Scenario.from_dict(payload["scenario"]), sim=sim)


class SweepCache:
    """Scenario-keyed result cache with in-memory and on-disk backends.

    ``SweepCache()`` memoizes within the process (results are stored as-is,
    no serialization cost on hits).  ``SweepCache(path)`` persists each
    result as ``<key>.json`` under ``path``, surviving across processes and
    sessions; hits are reconstructed from the tagged JSON and compare equal
    to a cold run.

    Keys are a sha256 over the canonical ``Scenario.to_dict()`` (see
    ``docs/scenario-schema.md``): any field change — including failure
    model, parameters, seed, or response — is a different entry, while
    execution knobs like ``run_sweep(workers=...)`` are deliberately not
    part of the key.  The experiment harnesses share one module-level
    cache (``repro.experiments.cluster_sweep.SWEEP_CACHE``), placed on
    disk when ``REPRO_SWEEP_CACHE_DIR`` is set.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        # The directory is created lazily on first write: a bad or
        # unwritable path (env-var driven callers) must degrade to cache
        # misses, not break construction — or module imports — outright.
        self.path = Path(path).expanduser() if path is not None else None
        self._memory: dict[str, ScenarioResult] = {}
        self.hits = 0
        self.misses = 0
        self.skipped = 0  # uncacheable scenarios/results seen
        self.corrupt = 0  # on-disk entries quarantined as <key>.corrupt

    # -- core API ----------------------------------------------------------------

    def get(self, scenario: Scenario) -> ScenarioResult | None:
        """The cached result for this scenario, or None (miss/uncacheable)."""
        if not cacheable(scenario):
            self.skipped += 1
            return None
        try:
            key = scenario_key(scenario)
        except TypeError:
            # e.g. numpy-scalar workload params: the scenario runs fine, it
            # just cannot be canonically hashed — bypass transparently.
            self.skipped += 1
            return None
        if self.path is None:
            result = self._memory.get(key)
        else:
            result = self._read_file(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, result: ScenarioResult) -> bool:
        """Store one result; returns False when it cannot be cached."""
        if not cacheable(result.scenario):
            self.skipped += 1
            return False
        if result.error is not None or not isinstance(result.sim, ClusterSimResult):
            # Failed results are never memoized: a retry/resume must re-run
            # the scenario, not replay the failure.
            self.skipped += 1
            return False
        try:
            key = scenario_key(result.scenario)
        except TypeError:
            self.skipped += 1
            return False
        if self.path is None:
            self._memory[key] = result
            return True
        try:
            payload = _result_to_payload(result)
            text = json.dumps(payload)
        except TypeError:
            # e.g. a collector payload holding a non-serializable object.
            self.skipped += 1
            return False
        if not self._write_file(key, text):
            # Unwritable directory / disk full: the caller (and stats())
            # must see that nothing was persisted.
            self.skipped += 1
            return False
        return True

    def clear(self) -> None:
        """Drop every entry (memory and, for disk caches, the files)."""
        self._memory.clear()
        if self.path is not None:
            for f in self._entries():
                try:
                    f.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        if self.path is None:
            return len(self._memory)
        return sum(1 for _ in self._entries())

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "skipped": self.skipped,
            "corrupt": self.corrupt,
            "entries": len(self),
            "backend": "disk" if self.path is not None else "memory",
        }

    # -- disk backend ------------------------------------------------------------

    def _entries(self):
        """Only files this cache wrote: ``<64-hex-sha256>.json``.

        The cache directory may be shared with unrelated files (users point
        ``REPRO_SWEEP_CACHE_DIR`` at existing locations); ``clear()`` and
        ``len()`` must never touch anything that is not a cache entry.
        A directory that does not exist yet (lazy creation) yields nothing.
        """
        assert self.path is not None
        if not self.path.is_dir():
            return
        for f in self.path.glob("*.json"):
            stem = f.stem
            if len(stem) == 64 and all(c in "0123456789abcdef" for c in stem):
                yield f

    def _file(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.json"

    def _read_file(self, key: str) -> ScenarioResult | None:
        try:
            text = self._file(key).read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if payload.get("version") != CACHE_FORMAT_VERSION:
                return None  # older layout: a clean miss, never re-parsed as corrupt
            return _payload_to_result(payload)
        except (ValueError, KeyError, TypeError, SimulationError):
            # Corrupt entry (torn write, hand-edited, shape drift): quarantine
            # it as <key>.corrupt so it is not re-parsed on every lookup and
            # stays available for post-mortem; the lookup is a miss and the
            # scenario re-runs, overwriting the slot with a fresh entry.
            self._quarantine(key)
            return None

    def _quarantine(self, key: str) -> None:
        self.corrupt += 1
        try:
            os.replace(self._file(key), self.path / f"{key}.corrupt")
        except OSError:
            pass  # e.g. unlinked concurrently; the miss already re-runs it

    def _write_file(self, key: str, text: str) -> bool:
        assert self.path is not None
        tmp = None
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so concurrent readers never see partial JSON.
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, self._file(key))
            return True
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return False
