"""Declarative simulation scenarios.

A :class:`Scenario` is plain, picklable data describing one simulation run:
which workload to replay, which policy / admission / scorer components to
assemble, and how large the cluster is (either an explicit server count or
a target overcommitment level that the engine resolves against the
workload's peak demand).  Scenarios are immutable; the fluent ``with_*``
methods return modified copies, so a base scenario fans out into a sweep
grid naturally::

    base = Scenario().with_workload("azure", n_vms=500).with_policy("priority")
    grid = [base.with_overcommitment(oc) for oc in (0.0, 0.2, 0.4)]

Because a scenario is data, it round-trips through ``to_dict`` /
``from_dict`` (for configs checked into files) and crosses process
boundaries untouched (for :func:`repro.scenario.sweep.run_sweep`).
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.failures import FailureInjector, check_topology  # registers `failure` kind
from repro.registry import validate
from repro.simulator.cluster_sim import ClusterSimConfig
from repro.traces.schema import VMTraceSet


@dataclass(frozen=True)
class Scenario:
    """One simulation run, declaratively.

    Exactly one of ``n_servers`` / ``overcommitment`` sizes the cluster, and
    exactly one of ``workload`` / ``traces`` supplies the VMs.  ``workload``
    is the declarative form — ``{"source": <registered workload name>,
    **params}`` — and is preferred; ``traces`` carries a pre-built
    :class:`VMTraceSet` for tests and ad-hoc studies.  ``failures``
    optionally names a registered failure model plus its parameters
    (:meth:`with_failures`); None replays on reliable servers.

    Every field's declarative form, its defaults, and the ``to_dict``
    schema (including how cache keys are derived from it) are documented
    in ``docs/scenario-schema.md``.
    """

    name: str = ""
    workload: dict | None = None
    traces: VMTraceSet | None = None
    #: Declarative failure spec — ``{"model": <registered failure name>,
    #: **model_params, "seed": ..., "response": ..., "restart_delay": ...,
    #: "warning_intervals": ..., "evacuation_budget": ...}`` — or None for
    #: a failure-free replay (the default; None elides from ``to_dict``,
    #: so failure-free cache keys are unchanged).
    failures: dict | None = None
    #: Cluster topology — ``{"racks": R}`` (contiguous near-equal split)
    #: or ``{"groups": [[0, 1], ...]}`` (explicit blast-radius groups) —
    #: consumed by topology-aware failure models (``correlated-spot``);
    #: None (the default, elided from ``to_dict``) means no declared
    #: topology, so pre-existing cache keys are unchanged.
    topology: dict | None = None
    policy: str = "proportional"
    n_servers: int | None = None
    overcommitment: float | None = None
    cores_per_server: float = 48.0
    memory_per_server_mb: float = 128 * 1024
    partitioned: bool = False
    n_partitions: int = 4
    min_fraction: float = 0.05
    admission: str = "deflation-aware"
    scorer: str = "cosine"
    collectors: tuple[str, ...] = ()
    engine: str = "cluster-sim"
    #: Optional warm starting point: a
    #: :class:`~repro.simulator.snapshot.SimSnapshot` restored into the
    #: built simulator before the replay, so the run resumes (or forks) at
    #: the snapshot's boundary instead of re-simulating the prefix.  Like
    #: ``traces``, a snapshot is live state, not declarative data — it
    #: pickles across sweep workers but never serializes to a dict.
    checkpoint: object | None = None

    def __post_init__(self) -> None:
        if self.workload is not None and self.traces is not None:
            raise SimulationError("give either a workload spec or explicit traces, not both")
        if self.workload is not None and "source" not in self.workload:
            raise SimulationError('workload spec needs a "source" key naming a registered workload')
        if self.n_servers is not None and self.overcommitment is not None:
            raise SimulationError("size the cluster by n_servers or overcommitment, not both")
        if self.overcommitment is not None and self.overcommitment < 0:
            raise SimulationError("overcommitment must be >= 0")
        object.__setattr__(self, "collectors", tuple(self.collectors))
        # Defensive deep copies: a caller-held spec must not mutate a frozen
        # scenario, including through nested payloads (e.g. a
        # trace-schedule's events list) — an aliased mutation would change
        # the scenario's cache key after its result was stored.
        if self.workload is not None:
            object.__setattr__(self, "workload", copy.deepcopy(dict(self.workload)))
        if self.failures is not None:
            if "model" not in self.failures:
                raise SimulationError(
                    'failure spec needs a "model" key naming a registered failure model'
                )
            object.__setattr__(self, "failures", copy.deepcopy(dict(self.failures)))
        if self.topology is not None:
            check_topology(self.topology)
            object.__setattr__(self, "topology", copy.deepcopy(dict(self.topology)))

    # -- fluent builder ----------------------------------------------------------

    def _replace(self, **changes) -> "Scenario":
        return dataclasses.replace(self, **changes)

    def named(self, name: str) -> "Scenario":
        """Relabel the scenario (labels appear in tables and cache keys)."""
        return self._replace(name=name)

    def with_workload(self, source: str, **params) -> "Scenario":
        """Replay a registered workload source (e.g. ``"azure"``, seeded).

        ``params`` are forwarded to the workload factory — for ``azure``
        that means the :class:`~repro.traces.azure.AzureTraceConfig`
        fields (``n_vms``, ``seed``, ``horizon_intervals``, ...).  The
        spec is stored as plain data; synthesis happens at run time and
        is memoized per process.  Clears any explicit ``traces``.
        """
        validate("workload", source)
        return self._replace(workload={"source": source, **params}, traces=None)

    def with_traces(self, traces: VMTraceSet) -> "Scenario":
        """Replay a pre-built trace set (escape hatch for tests/studies).

        Explicit traces do not serialize: the scenario cannot ``to_dict``
        and transparently bypasses any :class:`SweepCache`.  Clears any
        declarative ``workload`` spec.
        """
        return self._replace(traces=traces, workload=None)

    def with_policy(self, policy: str) -> "Scenario":
        """Deflation policy by registered name, or ``"preemption"``.

        ``policy`` is any name registered under kind ``policy``
        (``proportional``, ``priority``, ``priority-eq3``,
        ``deterministic``, ...) or the literal ``"preemption"`` for the
        paper's kill-instead-of-deflate baseline.
        """
        if policy != "preemption":
            validate("policy", policy)
        return self._replace(policy=policy)

    def with_failures(self, model: str, **params) -> "Scenario":
        """Inject transient-server failures from a registered model.

        ``model`` names a ``failure``-kind component (``spot``,
        ``exponential-lifetimes``, ``weibull-lifetimes``,
        ``preemption-windows``, ``capacity-dips``, ``trace-schedule``).
        ``params`` mixes model knobs with injector knobs:

        * ``seed`` (int, default 0) — RNG seed for the schedule; part of
          the spec, so sweeps over seeds get distinct cache keys;
        * ``response`` — ``"evacuate"`` (deflation-first migration off the
          revoked server) or ``"kill"`` (kill-and-requeue);
        * ``restart_delay`` — intervals between a kill and the requeued
          restart (``response="kill"``); ``None`` disables requeueing;
        * ``warning_intervals`` — revocation warning window
          (``response="evacuate"``): revocations become timed drains with
          one budgeted evacuation tick per interval and a
          straggler-killing deadline; omit for instant evacuation;
        * ``evacuation_budget`` — per-tick migration ration during a
          drain: an int ``k`` (VMs per interval) or ``{"cores": c}``;
        * everything else is passed to the model constructor (e.g.
          ``rate=0.002`` for ``spot``, ``racks=4`` for
          ``correlated-spot``, ``arrival_rate=0.01`` for
          ``elastic-pool``).

        The spec is plain data: it serializes through :meth:`to_dict`,
        crosses process boundaries in parallel sweeps, and changes the
        :func:`~repro.scenario.cache.scenario_key`, so failure-injected
        results never collide with failure-free ones in a
        :class:`~repro.scenario.cache.SweepCache`.

        The whole spec is validated eagerly (model name, model parameters,
        and injector knobs), so a bad rate or response fails at declaration
        time, not mid-sweep.
        """
        spec = {"model": model, **params}
        FailureInjector.from_spec(spec)  # eager validation; instance discarded
        return self._replace(failures=spec)

    def without_failures(self) -> "Scenario":
        """Drop the failure spec (back to a failure-free replay)."""
        return self._replace(failures=None)

    def with_topology(
        self,
        racks: int | None = None,
        groups: "list[list[int]] | None" = None,
    ) -> "Scenario":
        """Declare the cluster's blast-radius topology.

        Exactly one of ``racks`` / ``groups``: ``racks=R`` splits the
        resolved cluster contiguously into ``R`` near-equal groups;
        ``groups=[[0, 1], [4]]`` lists explicit server groups (servers not
        listed form singleton groups).  Topology-aware failure models
        (``correlated-spot``) revoke whole groups at once; models without
        topology awareness ignore it.  The spec is plain data — it rides
        through ``to_dict`` and changes the sweep-cache key — and is
        resolved against the actual server count at run time.
        """
        if (racks is None) == (groups is None):
            raise SimulationError("give exactly one of racks or groups")
        if racks is not None:
            spec: dict = {"racks": int(racks)}
        else:
            spec = {"groups": [[int(s) for s in group] for group in groups]}
        check_topology(spec)
        return self._replace(topology=spec)

    def without_topology(self) -> "Scenario":
        """Drop the topology declaration."""
        return self._replace(topology=None)

    def with_servers(self, n_servers: int) -> "Scenario":
        """Fix the cluster size explicitly (clears any OC target)."""
        return self._replace(n_servers=int(n_servers), overcommitment=None)

    def with_overcommitment(self, overcommitment: float) -> "Scenario":
        """Size the cluster for a target peak overcommitment (paper method).

        The engine finds the minimum cluster fitting the trace's peak
        committed load, then shrinks it by ``1 + overcommitment``; 0.0
        means "just fits the peak".  Clears any explicit ``n_servers``.
        """
        return self._replace(overcommitment=float(overcommitment), n_servers=None)

    def with_server_shape(self, cores: float, memory_mb: float) -> "Scenario":
        """Set the homogeneous per-server capacity (default 48 cores, 128 GB)."""
        return self._replace(cores_per_server=float(cores), memory_per_server_mb=float(memory_mb))

    def with_partitions(self, n_partitions: int = 4) -> "Scenario":
        """Enable priority-pool partitioning (Section 5.2.1).

        Servers are split into ``n_partitions`` deflatable pools (one per
        priority level) plus an on-demand pool, sized by each class's
        committed-capacity share of the trace.
        """
        return self._replace(partitioned=True, n_partitions=int(n_partitions))

    def with_min_fraction(self, min_fraction: float) -> "Scenario":
        """Set the QoS floor (Eq. 2): no VM deflates below this fraction."""
        return self._replace(min_fraction=float(min_fraction))

    def with_admission(self, admission: str) -> "Scenario":
        """Admission controller by registered name (kind ``admission``)."""
        validate("admission", admission)
        return self._replace(admission=admission)

    def with_scorer(self, scorer: str) -> "Scenario":
        """Placement scorer by registered name (kind ``scorer``)."""
        validate("scorer", scorer)
        return self._replace(scorer=scorer)

    def with_collectors(self, *collectors: str) -> "Scenario":
        """Attach metrics collectors by registered name (kind ``metrics``).

        Each collector's ``finalize`` payload lands in the result's
        ``collected`` dict under the collector's name.  Replaces (does not
        extend) the current collector tuple.
        """
        for name in collectors:
            validate("metrics", name)
        return self._replace(collectors=tuple(collectors))

    def with_engine(self, engine: str) -> "Scenario":
        """Execution backend by registered name (kind ``engine``)."""
        validate("engine", engine)
        return self._replace(engine=engine)

    def with_checkpoint(self, snapshot) -> "Scenario":
        """Resume (or fork) the replay from a simulator snapshot.

        ``snapshot`` is a :class:`~repro.simulator.snapshot.SimSnapshot`
        taken by :meth:`ClusterSimulator.snapshot` on a simulator built
        from a compatible scenario: same workload, sizing, policy, and
        component fields.  Only the what-if axes may differ — ``name``,
        ``failures``, ``topology`` — and then only when the snapshot's
        prefix is failure-pristine (:func:`~repro.scenario.sweep.fork_sweep`
        validates the boundary up front; the restore itself re-checks).
        The engine restores the snapshot into the built simulator before
        replaying, so the prefix is never re-simulated and the result is
        bit-identical to a cold run of the same scenario.
        """
        from repro.simulator.snapshot import SimSnapshot

        if not isinstance(snapshot, SimSnapshot):
            raise SimulationError(
                f"with_checkpoint needs a SimSnapshot, got {type(snapshot).__name__}"
            )
        return self._replace(checkpoint=snapshot)

    def without_checkpoint(self) -> "Scenario":
        """Drop the checkpoint (back to a cold replay from t=0)."""
        return self._replace(checkpoint=None)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (defaults elided; ``traces`` cannot be serialized)."""
        if self.traces is not None:
            raise SimulationError("scenarios with explicit traces do not serialize to dicts")
        if self.checkpoint is not None:
            raise SimulationError(
                "scenarios with a checkpoint do not serialize to dicts; "
                "drop it with without_checkpoint() first"
            )
        out: dict = {}
        for f in dataclasses.fields(self):
            if f.name == "traces":
                continue
            value = getattr(self, f.name)
            default = f.default if f.default is not dataclasses.MISSING else None
            if value != default:
                if f.name == "collectors":
                    value = list(value)
                elif f.name in ("workload", "failures", "topology"):
                    # Never alias internal state out, nested payloads included.
                    value = copy.deepcopy(dict(value))
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, spec: dict) -> "Scenario":
        """Build a scenario from a plain dict, rejecting unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)} - {"traces", "checkpoint"}
        unknown = sorted(set(spec) - known)
        if unknown:
            raise SimulationError(f"unknown scenario keys {unknown}; valid keys: {sorted(known)}")
        kwargs = dict(spec)
        if "collectors" in kwargs:
            kwargs["collectors"] = tuple(kwargs["collectors"])
        for key in ("workload", "failures", "topology"):
            if kwargs.get(key) is not None:
                kwargs[key] = dict(kwargs[key])
        return cls(**kwargs)

    # -- execution glue ----------------------------------------------------------

    def sim_config(self, n_servers: int) -> ClusterSimConfig:
        """The cluster-simulator config for a resolved server count."""
        return ClusterSimConfig(
            n_servers=n_servers,
            cores_per_server=self.cores_per_server,
            memory_per_server_mb=self.memory_per_server_mb,
            policy=self.policy,
            partitioned=self.partitioned,
            n_partitions=self.n_partitions,
            min_fraction=self.min_fraction,
            admission=self.admission,
            scorer=self.scorer,
            collectors=self.collectors,
        )

    def run(self, engine: str | None = None):
        """Run this scenario; returns a :class:`ScenarioResult`."""
        from repro.scenario.sweep import run_scenario

        target = self if engine is None else self.with_engine(engine)
        return run_scenario(target)

    def describe(self) -> str:
        size = (
            f"{self.n_servers} servers"
            if self.n_servers is not None
            else f"OC target {self.overcommitment:.0%}"
            if self.overcommitment is not None
            else "unsized"
        )
        source = (
            self.workload.get("source") if self.workload else
            "explicit traces" if self.traces is not None else "no workload"
        )
        label = f"{self.name}: " if self.name else ""
        fail = f" | failures={self.failures['model']}" if self.failures else ""
        warm = f" | checkpoint@t={self.checkpoint.at:g}" if self.checkpoint is not None else ""
        return f"{label}{source} | policy={self.policy} | {size}{fail}{warm}"
