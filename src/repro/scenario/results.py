"""Result containers for the Scenario pipeline.

A :class:`ScenarioResult` pairs the declarative :class:`Scenario` with the
simulator's aggregate metrics, so downstream code can slice a sweep by the
knobs that produced each point (policy, overcommitment target, partitioning)
without re-deriving them.  A :class:`ResultSet` is an ordered collection of
results with the filtering/series helpers the figure harnesses need.

Both containers are plain picklable data: parallel sweeps ship them back
across process boundaries unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.scenario.scenario import Scenario
from repro.simulator.cluster_sim import ClusterSimResult


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of running one scenario."""

    scenario: Scenario
    sim: ClusterSimResult

    @property
    def n_servers(self) -> int:
        """The resolved cluster size (explicit or derived from OC target)."""
        return self.sim.config.n_servers

    @property
    def failure_probability(self) -> float:
        return self.sim.failure_probability

    @property
    def throughput_loss(self) -> float:
        return self.sim.throughput_loss

    @property
    def mean_deflation(self) -> float:
        return self.sim.mean_deflation

    @property
    def revenue(self) -> dict[str, float]:
        return self.sim.revenue

    @property
    def revenue_per_server(self) -> dict[str, float]:
        return self.sim.revenue_per_server

    @property
    def achieved_overcommitment(self) -> float:
        return self.sim.overcommitment

    @property
    def collected(self) -> dict[str, object]:
        """Payloads of the scenario's metrics collectors, by name."""
        return self.sim.collected

    def describe(self) -> str:
        return (
            f"{self.scenario.describe()} -> "
            f"fail={self.failure_probability:.3f} "
            f"loss={self.throughput_loss:.3f} "
            f"defl={self.mean_deflation:.3f}"
        )


@dataclass(frozen=True)
class ResultSet:
    """Ordered results of a sweep, sliceable by scenario attributes."""

    results: tuple[ScenarioResult, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx):
        picked = self.results[idx]
        return ResultSet(picked) if isinstance(idx, slice) else picked

    def filter(self, **attrs) -> "ResultSet":
        """Results whose scenario matches every given attribute.

        ``rs.filter(policy="priority", partitioned=False)`` — unknown
        attribute names raise, so typos fail loudly.
        """
        for name in attrs:
            if name not in Scenario.__dataclass_fields__:
                raise SimulationError(
                    f"unknown scenario attribute {name!r}; "
                    f"valid: {sorted(Scenario.__dataclass_fields__)}"
                )
        return ResultSet(
            tuple(
                r
                for r in self.results
                if all(getattr(r.scenario, k) == v for k, v in attrs.items())
            )
        )

    def series(self, x: str, y: str) -> list[tuple]:
        """Extract ``(x, y)`` pairs; names resolve on the scenario first,
        then on the result (so ``("overcommitment", "failure_probability")``
        works out of the box)."""

        def pick(r: ScenarioResult, attr: str):
            if attr in Scenario.__dataclass_fields__:
                return getattr(r.scenario, attr)
            return getattr(r, attr)

        return [(pick(r, x), pick(r, y)) for r in self.results]

    def scenarios(self) -> list[Scenario]:
        return [r.scenario for r in self.results]
