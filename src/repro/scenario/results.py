"""Result containers for the Scenario pipeline.

A :class:`ScenarioResult` pairs the declarative :class:`Scenario` with the
simulator's aggregate metrics, so downstream code can slice a sweep by the
knobs that produced each point (policy, overcommitment target, partitioning)
without re-deriving them.  A :class:`ResultSet` is an ordered collection of
results with the filtering/series helpers the figure harnesses need.

Under the supervised runtime a sweep degrades gracefully instead of
aborting: a scenario whose worker crashed, hung past its timeout, or
raised (after exhausting retries) yields a *failed* result — ``sim`` is
None and ``error`` carries the structured :class:`ScenarioFailure` — and
the surrounding :class:`ResultSet` reports partial completion
(:meth:`ResultSet.ok`, :meth:`ResultSet.failed`, ``complete``).  Metric
accessors on a failed result raise :class:`SimulationError` naming the
captured failure, so partial data cannot silently flow into figures.

Both containers are plain picklable data: parallel sweeps ship them back
across process boundaries unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.scenario.scenario import Scenario
from repro.simulator.cluster_sim import ClusterSimResult


@dataclass(frozen=True)
class ScenarioFailure:
    """Structured capture of why one scenario produced no result.

    ``kind`` is ``"raise"`` (the engine raised), ``"crash"`` (the worker
    process died — OOM kill, segfault, ``os._exit``), or ``"timeout"``
    (the scenario exceeded the sweep's per-scenario wall-clock budget).
    ``attempts`` counts every try, retries included.
    """

    kind: str
    error_type: str
    message: str
    attempts: int = 1
    traceback: str = ""

    def describe(self) -> str:
        return f"{self.kind} after {self.attempts} attempt(s): {self.error_type}: {self.message}"


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of running one scenario: metrics, or a captured failure."""

    scenario: Scenario
    sim: ClusterSimResult | None
    #: None for a successful run; on a failed run ``sim`` is None and this
    #: carries the structured failure (``run_sweep(on_error="collect")``).
    error: ScenarioFailure | None = None

    def __post_init__(self) -> None:
        if (self.sim is None) == (self.error is None):
            raise SimulationError(
                "a ScenarioResult carries exactly one of sim (success) or error (failure)"
            )

    @classmethod
    def from_failure(cls, scenario: Scenario, error: ScenarioFailure) -> "ScenarioResult":
        return cls(scenario=scenario, sim=None, error=error)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def status(self) -> str:
        return "ok" if self.error is None else "failed"

    @property
    def _metrics(self) -> ClusterSimResult:
        if self.sim is None:
            assert self.error is not None
            raise SimulationError(
                f"scenario {self.scenario.describe()!r} failed "
                f"({self.error.describe()}); it has no metrics — filter with "
                "ResultSet.ok() or check result.ok before reading them"
            )
        return self.sim

    @property
    def n_servers(self) -> int:
        """The resolved cluster size (explicit or derived from OC target)."""
        return self._metrics.config.n_servers

    @property
    def failure_probability(self) -> float:
        return self._metrics.failure_probability

    @property
    def throughput_loss(self) -> float:
        return self._metrics.throughput_loss

    @property
    def mean_deflation(self) -> float:
        return self._metrics.mean_deflation

    @property
    def revenue(self) -> dict[str, float]:
        return self._metrics.revenue

    @property
    def revenue_per_server(self) -> dict[str, float]:
        return self._metrics.revenue_per_server

    @property
    def achieved_overcommitment(self) -> float:
        return self._metrics.overcommitment

    @property
    def collected(self) -> dict[str, object]:
        """Payloads of the scenario's metrics collectors, by name."""
        return self._metrics.collected

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.scenario.describe()} -> FAILED ({self.error.describe()})"
        return (
            f"{self.scenario.describe()} -> "
            f"fail={self.failure_probability:.3f} "
            f"loss={self.throughput_loss:.3f} "
            f"defl={self.mean_deflation:.3f}"
        )


@dataclass(frozen=True)
class ResultSet:
    """Ordered results of a sweep, sliceable by scenario attributes."""

    results: tuple[ScenarioResult, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx):
        picked = self.results[idx]
        return ResultSet(picked) if isinstance(idx, slice) else picked

    # -- partial completion ------------------------------------------------------

    @property
    def complete(self) -> bool:
        """True when every scenario produced metrics (no captured failures)."""
        return all(r.ok for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def ok(self) -> "ResultSet":
        """Only the successful results (what the figure harnesses plot)."""
        return ResultSet(tuple(r for r in self.results if r.ok))

    def failed(self) -> "ResultSet":
        """Only the failed results (each carrying its ``error`` facet)."""
        return ResultSet(tuple(r for r in self.results if not r.ok))

    # -- slicing -----------------------------------------------------------------

    def filter(self, **attrs) -> "ResultSet":
        """Results whose scenario matches every given attribute.

        ``rs.filter(policy="priority", partitioned=False)`` — unknown
        attribute names raise, so typos fail loudly.
        """
        for name in attrs:
            if name not in Scenario.__dataclass_fields__:
                raise SimulationError(
                    f"unknown scenario attribute {name!r}; "
                    f"valid: {sorted(Scenario.__dataclass_fields__)}"
                )
        return ResultSet(
            tuple(
                r
                for r in self.results
                if all(getattr(r.scenario, k) == v for k, v in attrs.items())
            )
        )

    def series(self, x: str, y: str) -> list[tuple]:
        """Extract ``(x, y)`` pairs; names resolve on the scenario first,
        then on the result (so ``("overcommitment", "failure_probability")``
        works out of the box)."""

        def pick(r: ScenarioResult, attr: str):
            if attr in Scenario.__dataclass_fields__:
                return getattr(r.scenario, attr)
            return getattr(r, attr)

        return [(pick(r, x), pick(r, y)) for r in self.results]

    def scenarios(self) -> list[Scenario]:
        return [r.scenario for r in self.results]
