"""Unified Scenario API: ``Scenario -> Engine -> ResultSet``.

One composable front door for every simulation in the repo.  A
:class:`Scenario` declares *what* to simulate — workload source, deflation
policy, cluster shape, admission/scoring components, metrics collectors —
as plain data (fluent builder or ``Scenario.from_dict``).  An
:class:`Engine` (resolved by name from the unified registry, kind
``engine``) knows *how* to run it.  :func:`run_sweep` executes many
scenarios, optionally in parallel across processes, and returns a
:class:`ResultSet` for slicing into figure series.

Quickstart::

    from repro.scenario import Scenario, run_sweep

    base = (
        Scenario(name="fig20")
        .with_workload("azure", n_vms=500, seed=31)
        .with_policy("proportional")
    )
    scenarios = [base.with_overcommitment(oc) for oc in (0.0, 0.4, 0.7)]
    results = run_sweep(scenarios, workers=4)
    for r in results:
        print(r.scenario.overcommitment, r.failure_probability)

Every component a scenario names is a registry entry, so plugging in a new
policy, scorer, pricing model, workload source, or failure model makes it
addressable here with no changes to the pipeline.  Transient-server
failures are declared the same way (``with_failures("spot", rate=...,
seed=...)``); see ``docs/failures.md``.
"""

from repro.runtime import RetryPolicy, SweepJournal
from repro.scenario.cache import SweepCache, cacheable, scenario_key
from repro.scenario.engine import ClusterSimEngine, Engine, resolve_cluster, resolve_workload
from repro.scenario.results import ResultSet, ScenarioFailure, ScenarioResult
from repro.scenario.scenario import Scenario
from repro.scenario.stream import ScenarioStream, StreamTick
from repro.scenario.sweep import fork_sweep, run_scenario, run_sweep
from repro.simulator.snapshot import SimSnapshot

__all__ = [
    "ClusterSimEngine",
    "Engine",
    "ResultSet",
    "RetryPolicy",
    "Scenario",
    "ScenarioFailure",
    "ScenarioResult",
    "ScenarioStream",
    "SimSnapshot",
    "StreamTick",
    "SweepCache",
    "SweepJournal",
    "cacheable",
    "fork_sweep",
    "resolve_cluster",
    "resolve_workload",
    "run_scenario",
    "run_sweep",
    "scenario_key",
]
