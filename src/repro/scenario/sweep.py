"""Parallel parameter sweeps over scenarios.

The paper's evaluation is a grid — policies x overcommitment levels x
pricing models replayed against one trace.  :func:`run_sweep` executes any
iterable of scenarios and returns an ordered :class:`ResultSet`; with
``workers > 1`` the scenarios fan out over a ``multiprocessing`` pool.

Scenarios are plain data and every simulator run is deterministic, so the
parallel path is **bit-identical** to the serial one: the same scenario
produces the same floats regardless of which process ran it, and results
come back in input order (``pool.map`` preserves ordering).  The test suite
asserts this equivalence on Figure 20's grid.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterable

from repro.registry import create
from repro.scenario import engine as _engine_module  # noqa: F401  (registers engines)
from repro.scenario.results import ResultSet, ScenarioResult
from repro.scenario.scenario import Scenario

__all__ = ["run_scenario", "run_sweep"]


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Run one scenario on its configured engine (a fresh engine instance)."""
    return create("engine", scenario.engine).run(scenario)


def _pool_context():
    # fork shares the already-imported interpreter with workers, which keeps
    # startup cheap and registries populated; fall back to the platform
    # default (spawn) elsewhere — workers then re-import via pickled refs.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_sweep(
    scenarios: Iterable[Scenario],
    workers: int | None = None,
    chunksize: int | None = None,
    cache=None,
) -> ResultSet:
    """Run scenarios serially (``workers`` in {None, 0, 1}) or in parallel.

    Results are returned in scenario order either way, and the parallel
    path is bit-identical to the serial one — simulator runs are
    deterministic in their scenario, including failure-injected ones
    (schedules are generated from the spec's seed, never shared state).

    ``chunksize`` defaults to ``Pool.map``'s heuristic (~4 chunks per
    worker): scenarios in one chunk are pickled together, so a grid sharing
    one explicit ``traces`` object serializes it once per chunk (pickle
    memoizes within a call), not once per scenario, while chunks stay small
    enough to load-balance uneven scenario runtimes.

    ``cache`` is an optional :class:`~repro.scenario.cache.SweepCache`:
    cached scenarios are served without running, only the misses execute
    (still fanning out when ``workers`` > 1), and fresh results are stored
    back.  A warm cache returns contents identical to a cold run; scenarios
    that cannot serialize (explicit traces) bypass the cache transparently.
    """
    todo = list(scenarios)
    if cache is None:
        return ResultSet(tuple(_execute(todo, workers, chunksize)))

    results: list = [cache.get(s) for s in todo]
    miss_idx = [i for i, r in enumerate(results) if r is None]
    computed = _execute([todo[i] for i in miss_idx], workers, chunksize)
    for i, result in zip(miss_idx, computed):
        cache.put(result)
        results[i] = result
    return ResultSet(tuple(results))


def _execute(
    todo: list[Scenario], workers: int | None, chunksize: int | None
) -> list[ScenarioResult]:
    """Run scenarios in input order, serially or over a process pool."""
    if workers is None or workers <= 1 or len(todo) <= 1:
        return [run_scenario(s) for s in todo]
    n = min(int(workers), len(todo))
    with _pool_context().Pool(processes=n) as pool:
        return pool.map(run_scenario, todo, chunksize=chunksize)
