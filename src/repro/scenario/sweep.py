"""Parallel parameter sweeps over scenarios, on the supervised runtime.

The paper's evaluation is a grid — policies x overcommitment levels x
pricing models replayed against one trace.  :func:`run_sweep` executes any
iterable of scenarios and returns an ordered :class:`ResultSet`; with
``workers > 1`` the scenarios fan out over supervised worker processes
(:mod:`repro.runtime`): a crashed or SIGKILLed worker loses only its
in-flight scenario (retried with bounded backoff in a fresh worker), a
hung scenario is killed at its wall-clock ``timeout``, and a raising
engine is captured as structured failure data — one bad point degrades
the grid instead of discarding every completed result.

Scenarios are plain data and every simulator run is deterministic, so the
parallel path is **bit-identical** to the serial one: the same scenario
produces the same floats regardless of which process ran it — or how many
times supervision had to retry it — and results come back in input order.
The test suite asserts this equivalence on Figure 20's grid and across
fork/spawn start methods.

Completed results persist incrementally: through the ``cache``
(:class:`~repro.scenario.cache.SweepCache`) as each scenario finishes,
and through an optional ``journal`` (:class:`~repro.runtime.SweepJournal`)
that also covers uncacheable scenarios, so an interrupted sweep resumes
from where it died — warm resume bit-identical to a cold run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from collections.abc import Iterable

from repro.errors import SimulationError, SweepError
from repro.registry import create
from repro.runtime import RetryPolicy, SweepJournal, supervised_map
from repro.scenario import engine as _engine_module  # noqa: F401  (registers engines)
from repro.scenario.cache import scenario_key
from repro.scenario.results import ResultSet, ScenarioFailure, ScenarioResult
from repro.scenario.scenario import Scenario

__all__ = ["fork_sweep", "run_scenario", "run_sweep"]


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Run one scenario on its configured engine (a fresh engine instance)."""
    return create("engine", scenario.engine).run(scenario)


def _sweep_fingerprint(scenarios: list[Scenario]) -> str:
    """Order-sensitive identity of a sweep, for journal binding.

    Cacheable scenarios contribute their canonical
    :func:`~repro.scenario.cache.scenario_key`; scenarios that cannot be
    canonically hashed (explicit traces, numpy-scalar params) fall back to
    a pickle digest — stable within one environment, and a false mismatch
    merely resets the journal (the sweep re-runs, results unchanged).
    """
    digest = hashlib.sha256()
    for scenario in scenarios:
        try:
            token = scenario_key(scenario)
        except (SimulationError, TypeError):
            token = hashlib.sha256(pickle.dumps(scenario)).hexdigest()
        digest.update(token.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def run_sweep(
    scenarios: Iterable[Scenario],
    workers: int | None = None,
    chunksize: int | None = None,
    cache=None,
    *,
    on_error: str = "raise",
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    start_method: str | None = None,
    journal=None,
) -> ResultSet:
    """Run scenarios serially (``workers`` in {None, 0, 1}) or in parallel.

    Results are returned in scenario order either way, and the parallel
    path is bit-identical to the serial one — simulator runs are
    deterministic in their scenario, including failure-injected ones
    (schedules are generated from the spec's seed, never shared state),
    so neither worker count nor supervision retries ever change floats.

    Fault tolerance (``docs/robustness.md``):

    * ``retry`` — a :class:`~repro.runtime.RetryPolicy`; the default
      retries crashed/timed-out scenarios twice with exponential backoff
      and fails fast on raising engines.
    * ``timeout`` — shorthand for ``retry``'s per-scenario wall-clock
      budget in seconds (workers past it are killed and replaced).
    * ``on_error`` — ``"raise"`` (default, preserving the historical
      behavior: any scenario still failed after retries aborts the sweep
      with :class:`~repro.errors.SweepError`) or ``"collect"`` (failed
      scenarios come back as failed results inside the
      :class:`ResultSet`, which then reports partial completion).
    * ``start_method`` — multiprocessing start method override; defaults
      to ``REPRO_START_METHOD`` / platform resolution
      (:func:`~repro.runtime.resolve_start_method`).  Fork and spawn
      sweeps are bit-identical.

    ``cache`` is an optional :class:`~repro.scenario.cache.SweepCache`:
    cached scenarios are served without running, only the misses execute
    (still fanning out when ``workers`` > 1), and fresh results are
    stored back *as each scenario completes*, so an aborted sweep keeps
    what it finished.  A warm cache returns contents identical to a cold
    run; scenarios that cannot serialize (explicit traces) bypass the
    cache transparently.

    ``journal`` is an optional :class:`~repro.runtime.SweepJournal` (or a
    directory path for one): completed results are additionally written
    to disk incrementally — uncacheable scenarios included — and a rerun
    of the *same* sweep resumes from the journal, bit-identical to an
    uninterrupted cold run.  Failed scenarios are never journaled; a
    resume retries them.

    ``chunksize`` is accepted for backward compatibility and ignored: the
    supervised runtime dispatches scenarios one at a time (per-task
    crash attribution and timeouts require it), and with the default fork
    start method workers inherit the scenario list instead of unpickling
    chunks, so the old chunk-level pickling economy is moot.
    """
    del chunksize  # legacy knob of the unsupervised pool path
    if on_error not in ("raise", "collect"):
        raise SimulationError(
            f'on_error must be "raise" or "collect", got {on_error!r}'
        )
    policy = retry if retry is not None else RetryPolicy()
    if timeout is not None:
        policy = dataclasses.replace(policy, timeout=timeout)

    todo = list(scenarios)
    results: list[ScenarioResult | None] = [None] * len(todo)

    if journal is not None and not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)
    if journal is not None:
        for index, value in journal.bind(_sweep_fingerprint(todo), len(todo)).items():
            if isinstance(value, ScenarioResult) and value.ok:
                results[index] = value
    if cache is not None:
        for i, scenario in enumerate(todo):
            if results[i] is None:
                results[i] = cache.get(scenario)

    miss_idx = [i for i, r in enumerate(results) if r is None]

    def _persist(outcome) -> None:
        # Runs in the supervising process as each scenario completes (in
        # completion order), so an interrupted sweep keeps its finished work.
        if not outcome.ok:
            return
        original = miss_idx[outcome.index]
        if cache is not None:
            cache.put(outcome.value)
        if journal is not None:
            journal.record(original, outcome.value)

    outcomes = supervised_map(
        run_scenario,
        [todo[i] for i in miss_idx],
        workers=workers,
        policy=policy,
        start_method=start_method,
        on_complete=_persist,
    )

    failed = []
    for outcome in outcomes:
        original = miss_idx[outcome.index]
        if outcome.ok:
            results[original] = outcome.value
        else:
            failed.append((original, outcome))
            results[original] = ScenarioResult.from_failure(
                todo[original],
                ScenarioFailure(
                    kind=outcome.failure.kind,
                    error_type=outcome.failure.error_type,
                    message=outcome.failure.message,
                    attempts=outcome.attempts,
                    traceback=outcome.failure.traceback,
                ),
            )

    if failed and on_error == "raise":
        index, first = failed[0]
        raise SweepError(
            f"{len(failed)} of {len(todo)} scenario(s) failed; first failure "
            f"({todo[index].describe()}): {first.failure.describe()}",
            failures=tuple(outcome for _, outcome in failed),
        )
    return ResultSet(tuple(results))


#: The only fields a fork variant may change relative to its base: the
#: label and the what-if failure axes.  Everything else (workload, sizing,
#: policy, components) shapes the warm prefix itself, so changing it would
#: make the shared checkpoint a lie.
_FORK_AXES = ("name", "failures", "topology")


def fork_sweep(
    base: Scenario,
    variants: Iterable[Scenario],
    at: float,
    workers: int | None = None,
    cache=None,
    *,
    on_error: str = "raise",
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    start_method: str | None = None,
    journal=None,
) -> ResultSet:
    """Fork one warm prefix into many what-if branches, then sweep them.

    Simulates ``base`` once up to the event boundary ``at``, snapshots it,
    and runs every variant resumed from that snapshot via
    :func:`run_sweep` — sharing the prefix instead of re-simulating it per
    branch, a multiplier on top of :class:`~repro.scenario.cache.SweepCache`
    for sweeps whose grid only varies the failure axes.  Results are
    **bit-identical** to a cold ``run_sweep`` of the same variants
    (``tests/scenario/test_fork_sweep.py`` pins this).

    Variants may differ from ``base`` only in ``name`` / ``failures`` /
    ``topology``.  The fork boundary is validated up front: every failure
    schedule involved — the base's and each differing variant's — must be
    silent before ``at`` (a variant keeping the base's exact
    failures+topology is a pure resume and is always legal).  Schedules
    that fire earlier would make the shared prefix diverge from a cold
    run; pick an earlier boundary instead.

    ``workers`` / ``cache`` / ``on_error`` / ``retry`` / ``timeout`` /
    ``start_method`` / ``journal`` pass through to :func:`run_sweep`
    unchanged — checkpointed scenarios cache under their snapshot's
    fingerprint and journal like any other scenario.
    """
    from repro.failures import FailureInjector
    from repro.scenario.engine import ClusterSimEngine, resolve_cluster

    at = float(at)
    if at <= 0.0:
        raise SimulationError(f"fork boundary must be > 0, got {at}")
    if base.engine != "cluster-sim":
        raise SimulationError(
            f"fork_sweep snapshots the 'cluster-sim' engine; base uses {base.engine!r}"
        )
    if base.checkpoint is not None:
        raise SimulationError("fork_sweep base already carries a checkpoint; fork from a cold base")

    branches = list(variants)
    if not branches:
        raise SimulationError("fork_sweep needs at least one variant")
    fixed = [
        f.name
        for f in dataclasses.fields(Scenario)
        if f.name not in _FORK_AXES and f.name != "checkpoint"
    ]
    for variant in branches:
        if variant.checkpoint is not None:
            raise SimulationError(
                f"variant {variant.name!r} already carries a checkpoint; "
                "fork_sweep attaches the shared one itself"
            )
        for name in fixed:
            if getattr(variant, name) != getattr(base, name):
                raise SimulationError(
                    f"variant {variant.name!r} changes {name!r}; fork variants may "
                    f"only change {list(_FORK_AXES)} (anything else reshapes the "
                    "shared prefix)"
                )

    # Boundary validation.  A variant keeping the base's exact
    # failures+topology resumes the stored stream verbatim — always legal.
    # Once any variant *diverges*, the shared prefix must be pristine: the
    # base's schedule and every diverging schedule must be silent before
    # the boundary.  Each distinct schedule expands once; the restore
    # re-checks per variant (defense in depth), but failing here names the
    # culprit before any simulation time is spent.
    diverging = [
        v for v in branches if (v.failures, v.topology) != (base.failures, base.topology)
    ]
    if diverging:
        traces, n_servers = resolve_cluster(base)
        horizon = float(traces.horizon())
        checked: set[str] = set()
        for scenario in [base, *diverging]:
            if scenario.failures is None:
                continue
            token = repr((sorted(scenario.failures.items()), scenario.topology))
            if token in checked:
                continue
            checked.add(token)
            injector = FailureInjector.from_spec(
                scenario.failures, topology=scenario.topology
            )
            early = sum(1 for ev in injector.schedule(n_servers, horizon) if ev.time < at)
            if early:
                label = scenario.name or scenario.failures["model"]
                raise SimulationError(
                    f"cannot fork at t={at}: the failure schedule of {label!r} has "
                    f"{early} event(s) before the boundary; fork earlier or adjust "
                    "the schedule"
                )

    warm = ClusterSimEngine().build(base)
    warm.run_until(at)
    snapshot = warm.snapshot()
    return run_sweep(
        [variant.with_checkpoint(snapshot) for variant in branches],
        workers=workers,
        cache=cache,
        on_error=on_error,
        retry=retry,
        timeout=timeout,
        start_method=start_method,
        journal=journal,
    )
