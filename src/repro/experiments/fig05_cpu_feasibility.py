"""Figure 5: fraction of time VM CPU usage exceeds the deflated allocation.

Boxplot over the whole VM population at each deflation level.  The paper's
headline: even at 50% deflation the median VM spends >=80% of its time below
the deflated allocation.
"""

from __future__ import annotations

from repro.experiments.azure_feasibility import feasibility_trace, grouped_experiment
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig05")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = feasibility_trace(scale)
    return grouped_experiment(
        figure_id="fig05",
        title="P(CPU usage > deflated allocation), all VMs",
        groups={"all": [r.cpu_util for r in traces]},
        notes="paper: median VM <=20% of time underallocated at 50% deflation",
    )
