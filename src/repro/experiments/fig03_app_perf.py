"""Figure 3: application performance under uniform all-resource deflation.

Three applications (SpecJBB, Kcompile, Memcached) deflated 0-100%, showing
normalized performance; SpecJBB has no slack, Memcached the most.
"""

from __future__ import annotations

import numpy as np

from repro.core.perf_model import FIG3_PROFILES
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig03")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    levels = np.arange(0, 100, 5 if scale == "small" else 2) / 100.0
    result = ExperimentResult(
        figure_id="fig03",
        title="Normalized performance vs. deflation (all resources)",
        columns=["deflation_pct"] + [p.name for p in FIG3_PROFILES],
        notes="slack/linear/knee profiles calibrated to the paper's curves",
    )
    curves = {p.name: p.performance(levels) for p in FIG3_PROFILES}
    for i, d in enumerate(levels):
        result.add_row(
            deflation_pct=float(100 * d),
            **{name: float(curve[i]) for name, curve in curves.items()},
        )
    return result
