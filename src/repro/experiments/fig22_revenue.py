"""Figure 22: cloud revenue increase from deflatable VMs vs. overcommitment.

Static pricing (0.2x on-demand) gains revenue as overcommitment packs more
deflatable VMs per server; priority-based differentiated pricing roughly
doubles that (higher-priority VMs pay more); allocation-based pricing stays
nearly flat — deflated VMs pay proportionally less, cancelling the density
gain.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, check_scale
from repro.experiments.cluster_sweep import cluster_sweep
from repro.registry import register_value

_PRICINGS = ("static", "priority", "allocation")


@register_value("experiment", "fig22")
def run(scale: str = "small", engine: str | None = None) -> ExperimentResult:
    """Regenerate the figure; ``engine="sharded"`` runs the partitioned
    variant of the grid on the scale-out engine (see docs/engines.md)."""
    check_scale(scale)
    sweep = cluster_sweep(scale, partitioned=engine == "sharded", engine=engine)
    result = ExperimentResult(
        figure_id="fig22",
        title="Revenue-per-server increase vs overcommitment (priority deflation)",
        columns=["overcommit_pct"] + [f"{p}_increase_pct" for p in _PRICINGS],
        notes="paper: priority pricing ~2x static; allocation-based ~flat",
    )
    series = {
        p: dict(sweep.revenue_increase("priority", p, baseline_pricing="static"))
        for p in _PRICINGS
    }
    levels = sorted(next(iter(series.values())).keys())
    for oc in levels:
        result.add_row(
            overcommit_pct=oc,
            **{f"{p}_increase_pct": series[p][oc] for p in _PRICINGS},
        )
    return result
