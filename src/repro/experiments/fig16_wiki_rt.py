"""Figure 16: Wikipedia response-time distribution under CPU deflation.

30-core VM, 800 req/s, 15 s timeout; deflation from 0% (30 cores) to 97%
(1 core).  The paper: mean 0.3 s undeflated, 0.45 s at 50%, 0.6 s at 80%
(2x); p99 6.8 s -> 9.7 s at 80%; no significant increase until ~70%.
"""

from __future__ import annotations

from repro.apps.wikipedia import (
    FIG16_DEFLATION_PCT,
    WikipediaConfig,
    run_deflation_sweep,
)
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value

_SMALL_LEVELS = (0, 30, 50, 70, 80, 90, 97)


@register_value("experiment", "fig16")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    cfg = WikipediaConfig(duration_s=10.0 if scale == "small" else 30.0)
    levels = _SMALL_LEVELS if scale == "small" else FIG16_DEFLATION_PCT
    points = run_deflation_sweep(cfg, levels_pct=levels, seed=5)
    result = ExperimentResult(
        figure_id="fig16",
        title="Wikipedia response times vs CPU deflation",
        columns=["deflation_pct", "cores", "mean_rt_s", "p50_s", "p90_s", "p99_s", "cpu_util"],
        notes="paper: flat to ~70%; mean 2x at 80%; p99 +43% at 80%",
    )
    for p in points:
        result.add_row(
            deflation_pct=p.deflation_pct,
            cores=p.cores,
            mean_rt_s=p.mean_rt,
            p50_s=p.percentiles[50],
            p90_s=p.percentiles[90],
            p99_s=p.percentiles[99],
            cpu_util=p.cpu_utilization,
        )
    return result
