"""Figure 20: failure probability vs. cluster overcommitment.

Deflation nearly eliminates reclamation failures: <1% at 70% overcommitment
for proportional deflation vs. ~35% preemption probability for traditional
preemptible VMs.  Priority-based and deterministic deflation fall in
between (their priority floors cap how much can be reclaimed).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, check_scale
from repro.experiments.cluster_sweep import cluster_sweep
from repro.simulator.metrics import DEFAULT_POLICIES
from repro.registry import register_value


@register_value("experiment", "fig20")
def run(scale: str = "small", engine: str | None = None) -> ExperimentResult:
    """Regenerate the figure; ``engine="sharded"`` runs the partitioned
    variant of the grid on the scale-out engine (see docs/engines.md)."""
    check_scale(scale)
    sweep = cluster_sweep(scale, partitioned=engine == "sharded", engine=engine)
    result = ExperimentResult(
        figure_id="fig20",
        title="Failure probability vs cluster overcommitment",
        columns=["overcommit_pct"] + [f"{p}_failure" for p in DEFAULT_POLICIES],
        notes="paper: <1% at 70% OC for proportional vs ~35% for preemptible",
    )
    series = {p: dict(sweep.failure_probabilities(p)) for p in DEFAULT_POLICIES}
    levels = sorted(next(iter(series.values())).keys())
    for oc in levels:
        result.add_row(
            overcommit_pct=oc,
            **{f"{p}_failure": series[p][oc] for p in DEFAULT_POLICIES},
        )
    return result
