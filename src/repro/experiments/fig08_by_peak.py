"""Figure 8: CPU-deflation feasibility split by 95th-percentile CPU usage.

Higher peak loads mean greater impact when deflated; below-80%-peak VMs
have enough slack for up to ~20% deflation with minimal impact.
"""

from __future__ import annotations

from repro.experiments.azure_feasibility import feasibility_trace, grouped_experiment
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value

PEAK_LABELS = ("p95<33%", "33%<=p95<66%", "66%<=p95<80%", "p95>=80%")


@register_value("experiment", "fig08")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = feasibility_trace(scale)
    groups = {
        label: [r.cpu_util for r in traces.by_peak_class(label)] for label in PEAK_LABELS
    }
    return grouped_experiment(
        figure_id="fig08",
        title="P(CPU usage > deflated allocation) by p95 CPU usage",
        groups=groups,
        notes="paper: peak load is a coarse indicator of deflatability",
    )
