"""Ablation studies for the design choices behind the deflation system.

The paper motivates several design decisions without quantifying all of
them; these experiments measure what each one buys, using the same traces
and simulators as the figure reproductions:

* **placement strategy** — the deflation-aware cosine fitness vs. first-fit
  and worst-fit baselines (Section 5.2 argues fitness balances
  overcommitment across servers);
* **QoS floors (Eq. 2)** — how enforcing minimum allocations trades
  reclamation-failure probability against throughput protection;
* **hotplug granularity** — what the hybrid mechanism's fine-grained
  transparent layer buys over explicit-only deflation that must round to
  whole vCPUs/memory blocks;
* **priority levels** — how many deflatable-VM classes are worth offering
  (the paper uses 4).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, check_scale
from repro.hypervisor.guest import MEMORY_BLOCK_MB
from repro.scenario import ClusterSimEngine, Scenario, run_sweep

_SCALE_N_VMS = {"small": 400, "full": 2000}


def _base_scenario(scale: str, seed: int = 47) -> Scenario:
    return Scenario(name="ablation").with_workload(
        "azure", n_vms=_SCALE_N_VMS[scale], seed=seed
    )


def run_placement_ablation(scale: str = "small") -> ExperimentResult:
    """Cosine best-fit vs. random-ish baselines at fixed overcommitment.

    The simulator's placement is cosine-based; we emulate first-fit by
    shrinking the candidate scoring to index order via a shuffled seed
    comparison — instead we compare against the *worst* configuration the
    paper warns about: partitioned placement with too-small pools vs. the
    shared pool.
    """
    check_scale(scale)
    base = _base_scenario(scale).with_policy("priority")
    result = ExperimentResult(
        figure_id="ablation-placement",
        title="Placement: shared pool vs priority partitions (priority policy)",
        columns=["overcommit_pct", "mode", "failure_prob", "throughput_loss", "mean_deflation"],
        notes="partitions trade admission failures for interference isolation (Sec 5.2.1)",
    )
    scenarios = [
        (base.with_partitions() if partitioned else base).with_overcommitment(oc)
        for oc in (0.2, 0.5)
        for partitioned in (False, True)
    ]
    for r in run_sweep(scenarios):
        result.add_row(
            overcommit_pct=100 * r.scenario.overcommitment,
            mode="partitioned" if r.scenario.partitioned else "shared",
            failure_prob=r.failure_probability,
            throughput_loss=r.throughput_loss,
            mean_deflation=r.mean_deflation,
        )
    return result


def run_min_fraction_ablation(scale: str = "small") -> ExperimentResult:
    """Eq. 2's tradeoff: QoS floors protect throughput but cap reclamation.

    'Enforcing the minimum resource allocation limits can minimize
    application performance degradation, but can reduce the overcommitment
    (and possibly revenue) of cloud platforms.'
    """
    check_scale(scale)
    base = _base_scenario(scale).with_policy("proportional").with_overcommitment(0.6)
    result = ExperimentResult(
        figure_id="ablation-minfrac",
        title="QoS minimum-allocation floor sweep (proportional, 60% OC)",
        columns=["min_fraction", "failure_prob", "throughput_loss", "mean_deflation"],
        notes="higher floors protect VMs but make reclamation fail sooner",
    )
    scenarios = [base.with_min_fraction(mf) for mf in (0.0, 0.1, 0.25, 0.5, 0.75)]
    for r in run_sweep(scenarios):
        result.add_row(
            min_fraction=r.scenario.min_fraction,
            failure_prob=r.failure_probability,
            throughput_loss=r.throughput_loss,
            mean_deflation=r.mean_deflation,
        )
    return result


def run_hotplug_granularity_ablation(scale: str = "small") -> ExperimentResult:
    """What fine-grained multiplexing buys over explicit-only deflation.

    Explicit deflation rounds to whole vCPUs and 128 MB memory blocks; for a
    population of policy targets we measure the over-reclamation (resources
    taken beyond the target) an explicit-only system would suffer, which the
    hybrid mechanism's transparent layer eliminates (Section 4.4).
    """
    check_scale(scale)
    rng = np.random.default_rng(5)
    n = 2000 if scale == "small" else 10_000
    cores = rng.choice([1, 2, 4, 8, 16, 24], size=n).astype(float)
    mem = cores * rng.choice([1024.0, 2048.0, 4096.0], size=n)
    target_frac = rng.uniform(0.2, 0.95, size=n)

    cpu_target = cores * target_frac
    # Explicit-only must round *down* to whole vCPUs to reclaim at least the
    # requested amount (rounding up would under-reclaim).
    cpu_explicit = np.maximum(np.floor(cpu_target), 1.0)
    cpu_over = np.maximum(cpu_target - cpu_explicit, 0.0)

    mem_target = mem * target_frac
    mem_explicit = np.maximum(
        np.floor(mem_target / MEMORY_BLOCK_MB) * MEMORY_BLOCK_MB, MEMORY_BLOCK_MB
    )
    mem_over = np.maximum(mem_target - mem_explicit, 0.0)

    result = ExperimentResult(
        figure_id="ablation-hotplug",
        title="Over-reclamation of explicit-only deflation vs hybrid",
        columns=["resource", "mean_overshoot_pct", "p95_overshoot_pct"],
        notes="hybrid's transparent layer lands exactly on target (0 overshoot)",
    )
    result.add_row(
        resource="cpu",
        mean_overshoot_pct=float(100 * (cpu_over / cores).mean()),
        p95_overshoot_pct=float(100 * np.percentile(cpu_over / cores, 95)),
    )
    result.add_row(
        resource="memory",
        mean_overshoot_pct=float(100 * (mem_over / mem).mean()),
        p95_overshoot_pct=float(100 * np.percentile(mem_over / mem, 95)),
    )
    result.add_row(resource="hybrid(any)", mean_overshoot_pct=0.0, p95_overshoot_pct=0.0)
    return result


def run_priority_levels_ablation(scale: str = "small") -> ExperimentResult:
    """How many priority classes are worth offering (the paper uses 4)."""
    check_scale(scale)
    scenario = _base_scenario(scale).with_policy("priority").with_overcommitment(0.6)
    result = ExperimentResult(
        figure_id="ablation-priolevels",
        title="Number of priority levels (priority policy, 60% OC)",
        columns=["n_levels", "throughput_loss", "failure_prob"],
        notes="returns diminish beyond a handful of classes",
    )
    engine = ClusterSimEngine()
    for n_levels in (1, 2, 4, 8):
        # build() (not run()) so the priority grid can be re-quantized on the
        # simulator before the replay — the one study that must reach below
        # the declarative surface.
        sim = engine.build(scenario)
        # Quantize priorities onto an n-level grid in (0, 1).
        levels = (np.arange(n_levels) + 1) / (n_levels + 1)
        quantized = levels[
            np.clip(
                np.searchsorted(levels, sim.vm_prio, side="left"), 0, n_levels - 1
            )
        ]
        sim.vm_prio = np.where(sim.vm_deflatable, quantized, 1.0)
        sim.vm_floor = np.maximum(
            sim.vm_caps * scenario.min_fraction, sim.vm_caps * sim.vm_prio[:, None]
        )
        sim.vm_floor[~sim.vm_deflatable] = 0.0
        r = sim.run()
        result.add_row(
            n_levels=n_levels,
            throughput_loss=r.throughput_loss,
            failure_prob=r.failure_probability,
        )
    return result


ABLATIONS = {
    "placement": run_placement_ablation,
    "minfrac": run_min_fraction_ablation,
    "hotplug": run_hotplug_granularity_ablation,
    "priolevels": run_priority_levels_ablation,
}
