"""Shared machinery for the Alibaba-trace feasibility figures (9-12)."""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.base import check_scale
from repro.traces.alibaba import AlibabaTraceConfig, synthesize_alibaba_trace
from repro.traces.schema import ContainerTraceSet

_SCALE_N = {"small": 300, "full": 1500}


@lru_cache(maxsize=4)
def container_trace(scale: str, seed: int = 23) -> ContainerTraceSet:
    check_scale(scale)
    return synthesize_alibaba_trace(
        AlibabaTraceConfig(n_containers=_SCALE_N[scale], seed=seed)
    )
