"""Figure 19: deflation-aware vs. vanilla load balancing.

Three Wikipedia replicas at 200 req/s; two deflated equally from 0 to 80%.
The deflation-aware balancer re-weights toward the undeflated replica,
yielding 15-40% lower tail latency at 40-80% deflation.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, check_scale
from repro.loadbalancer.cluster import (
    FIG19_DEFLATION_PCT,
    WebClusterConfig,
    run_lb_sweep,
)
from repro.registry import register_value

_SMALL_LEVELS = (0, 20, 40, 60, 80)


@register_value("experiment", "fig19")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    cfg = WebClusterConfig(duration_s=20.0 if scale == "small" else 60.0)
    levels = _SMALL_LEVELS if scale == "small" else FIG19_DEFLATION_PCT
    sweep = run_lb_sweep(cfg, levels_pct=levels, seed=9)
    result = ExperimentResult(
        figure_id="fig19",
        title="Web-cluster RT: vanilla vs deflation-aware load balancing",
        columns=[
            "deflation_pct",
            "vanilla_mean_s",
            "aware_mean_s",
            "vanilla_p90_s",
            "aware_p90_s",
            "tail_improvement_pct",
        ],
        notes="paper: 15-40% lower tail latency at 40-80% deflation",
    )
    vanilla = {p.deflation_pct: p for p in sweep["vanilla"]}
    aware = {p.deflation_pct: p for p in sweep["deflation-aware"]}
    for pct in sorted(vanilla):
        v, a = vanilla[pct], aware[pct]
        improvement = (
            100 * (v.p90_rt - a.p90_rt) / v.p90_rt if v.p90_rt > 0 else float("nan")
        )
        result.add_row(
            deflation_pct=pct,
            vanilla_mean_s=v.mean_rt,
            aware_mean_s=a.mean_rt,
            vanilla_p90_s=v.p90_rt,
            aware_p90_s=a.p90_rt,
            tail_improvement_pct=improvement,
        )
    return result
