"""Shared overcommitment sweep for Figures 20-22.

One trace, one (policy x overcommitment) grid, memoized through the
scenario-level :class:`~repro.scenario.cache.SweepCache` so the three
figures (failure probability, throughput, revenue) and their benchmarks
reuse identical runs — as in the paper, which evaluates all three metrics
from the same simulations.

The grid is declared with workload specs (``{"source": "azure", ...}``)
rather than pre-built traces, so every scenario serializes and the cache
keys capture the full provenance (trace size, seed, policy, OC target,
partitioning).  By default the cache lives in memory for the process; set
``REPRO_SWEEP_CACHE_DIR`` to persist sweep results on disk across runs —
``python -m repro.experiments fig20 fig21 fig22`` then simulates the grid
once, ever.
"""

from __future__ import annotations

import os

from repro.errors import SimulationError
from repro.experiments.base import check_scale
from repro.scenario import Scenario, SweepCache, run_sweep
from repro.simulator.metrics import DEFAULT_POLICIES, OvercommitSweep, SweepPoint

OC_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
OC_LEVELS_SMALL = (0.0, 0.2, 0.4, 0.6, 0.7)

_SCALE_N_VMS = {"small": 500, "full": 2500}

#: Process-wide sweep memo; on-disk when REPRO_SWEEP_CACHE_DIR is set.
SWEEP_CACHE = SweepCache(path=os.environ.get("REPRO_SWEEP_CACHE_DIR") or None)


def cluster_sweep(
    scale: str,
    partitioned: bool = False,
    seed: int = 31,
    workers: int | None = None,
    engine: str | None = None,
) -> OvercommitSweep:
    """The (policy x OC) grid, built through the Scenario pipeline.

    Results come from :data:`SWEEP_CACHE`; only cache misses simulate.
    ``workers`` > 1 fans misses out over supervised worker processes
    (``docs/robustness.md``): a crashed or hung worker costs one retried
    scenario, not the grid, and each finished miss is stored back to the
    cache *as it completes*, so with ``REPRO_SWEEP_CACHE_DIR`` set an
    interrupted long sweep resumes from what it already simulated.
    Results are bit-identical for any worker count and for warm-vs-cold
    caches, so ``workers`` is deliberately *not* part of the cache key —
    it only controls how a miss is computed.

    ``engine`` selects the execution backend by registered name (``None``
    keeps the scenario default, ``cluster-sim``).  The ``sharded`` engine
    shards along priority-pool boundaries, so it requires
    ``partitioned=True`` — on which it is bit-identical to ``cluster-sim``
    (see ``docs/engines.md``).  Note that a non-default engine is part of
    each scenario's cache key.
    """
    check_scale(scale)
    if engine == "sharded" and not partitioned:
        raise SimulationError(
            "the sharded engine requires partitioned placement; pass "
            "partitioned=True (the grid then matches cluster-sim's "
            "partitioned grid, not the flat default)"
        )
    levels = OC_LEVELS_SMALL if scale == "small" else OC_LEVELS
    base = Scenario(name="cluster-sweep").with_workload(
        "azure", n_vms=_SCALE_N_VMS[scale], seed=seed
    )
    if partitioned:
        base = base.with_partitions()
    if engine is not None:
        base = base.with_engine(engine)
    scenarios = [
        base.with_policy(policy).with_overcommitment(oc)
        for policy in DEFAULT_POLICIES
        for oc in levels
    ]
    results = run_sweep(scenarios, workers=workers, cache=SWEEP_CACHE)
    points: dict[str, list[SweepPoint]] = {policy: [] for policy in DEFAULT_POLICIES}
    for res in results:
        points[res.scenario.policy].append(
            SweepPoint(
                overcommitment_target=res.scenario.overcommitment,
                n_servers=res.n_servers,
                result=res.sim,
            )
        )
    return OvercommitSweep(trace_size=_SCALE_N_VMS[scale], points=points)


def _reset_sweep_cache() -> None:
    """Give the next sweep an empty cache without touching persistent state.

    In-memory caches are simply cleared.  Disk-backed caches (the user set
    ``REPRO_SWEEP_CACHE_DIR`` precisely to keep results across runs) are
    *detached* instead — a fresh in-memory cache takes their place for the
    rest of the process — so benchmark cold-runs never destroy the
    persistent store they were asked to preserve.
    """
    global SWEEP_CACHE
    if SWEEP_CACHE.path is None:
        SWEEP_CACHE.clear()
    else:
        SWEEP_CACHE = SweepCache()


#: Kept API-compatible with the old ``lru_cache`` wrapper (benchmarks call it).
cluster_sweep.cache_clear = _reset_sweep_cache
