"""Shared overcommitment sweep for Figures 20-22.

One trace, one (policy x overcommitment) grid, cached per scale so the three
figures (failure probability, throughput, revenue) and their benchmarks
reuse identical runs — as in the paper, which evaluates all three metrics
from the same simulations.
"""

from __future__ import annotations

from repro.experiments.base import check_scale
from repro.simulator.metrics import OvercommitSweep, overcommitment_sweep
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

OC_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
OC_LEVELS_SMALL = (0.0, 0.2, 0.4, 0.6, 0.7)

_SCALE_N_VMS = {"small": 500, "full": 2500}


_SWEEP_CACHE: dict[tuple, OvercommitSweep] = {}


def cluster_sweep(
    scale: str, partitioned: bool = False, seed: int = 31, workers: int | None = None
) -> OvercommitSweep:
    """Cached (policy x OC) grid, now built through the Scenario pipeline.

    ``workers`` > 1 fans the grid out over processes; results are
    bit-identical for any worker count, so it is deliberately *not* part of
    the cache key — it only controls how a cache miss is computed.
    """
    check_scale(scale)
    key = (scale, partitioned, seed)
    if key not in _SWEEP_CACHE:
        traces = synthesize_azure_trace(
            AzureTraceConfig(n_vms=_SCALE_N_VMS[scale], seed=seed)
        )
        levels = OC_LEVELS_SMALL if scale == "small" else OC_LEVELS
        _SWEEP_CACHE[key] = overcommitment_sweep(
            traces, levels=levels, partitioned=partitioned, workers=workers
        )
    return _SWEEP_CACHE[key]


#: Kept API-compatible with the old ``lru_cache`` wrapper (benchmarks call it).
cluster_sweep.cache_clear = _SWEEP_CACHE.clear
