"""Shared overcommitment sweep for Figures 20-22.

One trace, one (policy x overcommitment) grid, cached per scale so the three
figures (failure probability, throughput, revenue) and their benchmarks
reuse identical runs — as in the paper, which evaluates all three metrics
from the same simulations.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.base import check_scale
from repro.simulator.metrics import OvercommitSweep, overcommitment_sweep
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace

OC_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)
OC_LEVELS_SMALL = (0.0, 0.2, 0.4, 0.6, 0.7)

_SCALE_N_VMS = {"small": 500, "full": 2500}


@lru_cache(maxsize=4)
def cluster_sweep(scale: str, partitioned: bool = False, seed: int = 31) -> OvercommitSweep:
    check_scale(scale)
    traces = synthesize_azure_trace(
        AzureTraceConfig(n_vms=_SCALE_N_VMS[scale], seed=seed)
    )
    levels = OC_LEVELS_SMALL if scale == "small" else OC_LEVELS
    return overcommitment_sweep(traces, levels=levels, partitioned=partitioned)
