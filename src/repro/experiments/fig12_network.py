"""Figure 12: network-bandwidth deflation feasibility (Alibaba containers).

Network usage (in+out, normalized) is low: ~1% underallocation at 70%
deflation, near-zero below 50%.
"""

from __future__ import annotations

from repro.experiments.alibaba_feasibility import container_trace
from repro.experiments.azure_feasibility import grouped_experiment
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig12")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = container_trace(scale)
    return grouped_experiment(
        figure_id="fig12",
        title="P(network bandwidth > deflated allocation), containers",
        groups={"network": [r.net_util for r in traces]},
        notes="paper: ~1% underallocation at 70% deflation, ~0 below 50%",
    )
