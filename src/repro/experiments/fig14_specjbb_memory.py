"""Figure 14: SpecJBB response time under transparent vs. hybrid memory
deflation.

Both mechanisms stay flat to ~40% deflation; hybrid improves performance by
~10% (guest-cooperative reclamation) and degrades far more gracefully past
the point where the limit cuts into the resident set.
"""

from __future__ import annotations

from repro.apps.specjbb import FIG14_DEFLATION_PCT, SpecJBBConfig, run_specjbb_sweep
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig14")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    levels = FIG14_DEFLATION_PCT if scale == "full" else FIG14_DEFLATION_PCT[::2] + (45,)
    sweep = run_specjbb_sweep(SpecJBBConfig(), levels_pct=tuple(sorted(set(levels))))
    result = ExperimentResult(
        figure_id="fig14",
        title="SpecJBB normalized mean RT: transparent vs hybrid memory deflation",
        columns=["deflation_pct", "transparent_rt", "hybrid_rt", "hybrid_advantage_pct"],
        notes="paper: flat to 40%, hybrid ~10% better",
    )
    trans = {p.deflation_pct: p for p in sweep["transparent"]}
    hyb = {p.deflation_pct: p for p in sweep["hybrid"]}
    for pct in sorted(trans):
        t, h = trans[pct].normalized_rt, hyb[pct].normalized_rt
        result.add_row(
            deflation_pct=float(pct),
            transparent_rt=t,
            hybrid_rt=h,
            hybrid_advantage_pct=100 * (t - h) / t,
        )
    return result
