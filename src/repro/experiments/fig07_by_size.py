"""Figure 7: CPU-deflation feasibility split by VM memory size.

The paper finds VM size has *no* direct correlation with deflatability —
all three size buckets behave alike.
"""

from __future__ import annotations

from repro.experiments.azure_feasibility import feasibility_trace, grouped_experiment
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value

SIZE_LABELS = ("small(<=2GB)", "medium(<=8GB)", "large(>8GB)")


@register_value("experiment", "fig07")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = feasibility_trace(scale)
    groups = {
        label: [r.cpu_util for r in traces.by_size_class(label)] for label in SIZE_LABELS
    }
    return grouped_experiment(
        figure_id="fig07",
        title="P(CPU usage > deflated allocation) by VM memory size",
        groups=groups,
        notes="paper: no correlation between VM size and deflatability",
    )
