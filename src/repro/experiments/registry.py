"""Experiment registry: figure id -> runner."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ReproError
from repro.experiments import (
    fig03_app_perf,
    fig05_cpu_feasibility,
    fig06_by_class,
    fig07_by_size,
    fig08_by_peak,
    fig09_memory,
    fig10_membw,
    fig11_disk,
    fig12_network,
    fig14_specjbb_memory,
    fig16_wiki_rt,
    fig17_wiki_served,
    fig18_socialnet,
    fig19_lb,
    fig20_failure,
    fig21_throughput,
    fig22_revenue,
)
from repro.experiments.base import ExperimentResult

EXPERIMENTS: dict[str, Callable[[str], ExperimentResult]] = {
    "fig03": fig03_app_perf.run,
    "fig05": fig05_cpu_feasibility.run,
    "fig06": fig06_by_class.run,
    "fig07": fig07_by_size.run,
    "fig08": fig08_by_peak.run,
    "fig09": fig09_memory.run,
    "fig10": fig10_membw.run,
    "fig11": fig11_disk.run,
    "fig12": fig12_network.run,
    "fig14": fig14_specjbb_memory.run,
    "fig16": fig16_wiki_rt.run,
    "fig17": fig17_wiki_served.run,
    "fig18": fig18_socialnet.run,
    "fig19": fig19_lb.run,
    "fig20": fig20_failure.run,
    "fig21": fig21_throughput.run,
    "fig22": fig22_revenue.run,
}


def get_experiment(figure_id: str) -> Callable[[str], ExperimentResult]:
    try:
        return EXPERIMENTS[figure_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {figure_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
