"""Experiment registry: figure id -> runner.

Each figure module registers its ``run`` function on the unified component
registry (``@register_value("experiment", "figXX")``); importing this module
pulls them all in, and :data:`EXPERIMENTS` is the live view legacy callers
(benchmarks, the CLI) keep using.  New experiments become runnable by
``python -m repro.experiments`` just by registering under kind
``experiment``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ReproError, UnknownComponentError
from repro.experiments import (  # noqa: F401  (imports trigger registration)
    churn,
    fig03_app_perf,
    fig05_cpu_feasibility,
    fig06_by_class,
    fig07_by_size,
    fig08_by_peak,
    fig09_memory,
    fig10_membw,
    fig11_disk,
    fig12_network,
    fig14_specjbb_memory,
    fig16_wiki_rt,
    fig17_wiki_served,
    fig18_socialnet,
    fig19_lb,
    fig20_failure,
    fig21_throughput,
    fig22_revenue,
    portfolio,
)
from repro.experiments.base import ExperimentResult
from repro.registry import RegistryView, resolve

#: Live view over the unified registry (kind ``experiment``).
EXPERIMENTS: RegistryView = RegistryView("experiment")


def get_experiment(figure_id: str) -> Callable[[str], ExperimentResult]:
    try:
        return resolve("experiment", figure_id)
    except UnknownComponentError as exc:
        raise ReproError(str(exc)) from None
