"""Common infrastructure for the per-figure experiment harnesses.

Every experiment module exposes ``run(scale) -> ExperimentResult``.  Results
are printable tables whose rows mirror the series in the paper's figure, so
``python -m repro.experiments fig20`` regenerates Figure 20's data.

Two scales are supported: ``small`` keeps runtimes suitable for CI and the
pytest-benchmark harness; ``full`` uses populations closer to the paper's
(within laptop reach — the real Azure dataset has 2M VMs, which neither we
nor the paper's simulations replay in full).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

SCALES = ("small", "full")


@dataclass
class ExperimentResult:
    """A reproduced figure: metadata plus printable rows."""

    figure_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def format_table(self) -> str:
        """Plain-text table of the figure's series."""
        widths = {c: max(len(c), 12) for c in self.columns}
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [f"== {self.figure_id}: {self.title} ==", header, "-" * len(header)]
        for row in self.rows:
            cells = []
            for c in self.columns:
                v = row.get(c, "")
                if isinstance(v, float):
                    cells.append(f"{v:.4g}".ljust(widths[c]))
                else:
                    cells.append(str(v).ljust(widths[c]))
            lines.append("  ".join(cells))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def print_table(self) -> None:
        print(self.format_table())

    def series(self, x: str, y: str) -> list[tuple]:
        """Extract one (x, y) series from the rows."""
        return [(r[x], r[y]) for r in self.rows if x in r and y in r]

    def to_csv(self, path) -> None:
        """Write the rows to a CSV file (one column per configured column).

        Downstream plotting scripts consume these; the CSV mirrors the
        printed table exactly.
        """
        import csv
        from pathlib import Path

        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self.columns, extrasaction="ignore")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)


def check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ReproError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale
