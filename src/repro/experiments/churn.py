"""Churn study: the availability frontier under correlated revocations.

The portfolio experiment (:mod:`repro.experiments.portfolio`) revokes
servers independently and instantaneously — but real spot/harvest
reclamations arrive in rack/zone-correlated bursts with bounded warning
windows, and elastic pools backfill revoked capacity with fresh servers.
This experiment replays one trace under equal *expected revoked-server
volume* across four churn regimes and reports how each one bends the
availability frontier:

* ``independent`` — the ``spot`` baseline: per-server hazard, instant
  deflation-first evacuation (PR 3's model);
* ``correlated`` — ``correlated-spot`` on a racked topology: the same
  hazard volume, but whole blast-radius groups leave at once, so the
  survivors must absorb a burst instead of a trickle;
* ``correlated+warning`` — the same correlated bursts, but revocations
  carry a warning window and evacuation is rationed by a per-interval
  budget (stragglers die at the deadline);
* ``elastic`` — the independent hazard on a pool where fresh transient
  servers also *arrive*, refilling capacity mid-run (``elastic-pool`` is
  not topology-aware, so it is deliberately compared against the
  ``independent`` row, isolating what arrivals alone buy).

Each cell reports availability (``1 - failure_probability``), the share
of at-risk work deflation absorbed, and the churn tallies (revocations,
arrivals, stragglers killed at deadlines).  The grid runs through
:func:`repro.scenario.run_sweep` and the shared
:data:`~repro.experiments.cluster_sweep.SWEEP_CACHE`.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, check_scale
from repro.experiments.cluster_sweep import SWEEP_CACHE
from repro.registry import register_value
from repro.scenario import Scenario, run_sweep

#: Per-server revocation hazard (per interval), shared by every regime so
#: the frontiers differ only in *how* the hazard volume lands.
REVOCATION_RATE = 0.004

#: Overcommitment targets spanning the paper's Figure 20 range.
OC_LEVELS: tuple[float, ...] = (0.0, 0.3)

#: Rack count for the correlated regimes (blast radius = cluster / racks).
RACKS = 4

#: Warning window (intervals) and per-tick VM budget for the warned regime.
WARNING_INTERVALS = 3.0
EVACUATION_BUDGET = 2

#: Arrival rate (servers per interval) for the elastic regime.
ARRIVAL_RATE = 0.02

_SCALE_N_VMS = {"small": 400, "full": 2000}

#: Schedule seed: fixed so the frontier is reproducible run-to-run.
FAILURE_SEED = 17


def scenarios(scale: str = "small", seed: int = FAILURE_SEED) -> list[Scenario]:
    """The declarative grid (regime-major, then OC)."""
    check_scale(scale)
    base = (
        Scenario(name="churn")
        .with_workload("azure", n_vms=_SCALE_N_VMS[scale], seed=31)
        .with_policy("proportional")
    )
    racked = base.with_topology(racks=RACKS)
    regimes = {
        "independent": base.with_failures(
            "spot", rate=REVOCATION_RATE, seed=seed, response="evacuate"
        ),
        "correlated": racked.with_failures(
            "correlated-spot", rate=REVOCATION_RATE, seed=seed, response="evacuate"
        ),
        "correlated+warning": racked.with_failures(
            "correlated-spot",
            rate=REVOCATION_RATE,
            seed=seed,
            response="evacuate",
            warning_intervals=WARNING_INTERVALS,
            evacuation_budget=EVACUATION_BUDGET,
        ),
        # Deliberately NOT racked: elastic-pool revokes independently, so
        # pairing it with the independent row isolates the arrival effect.
        "elastic": base.with_failures(
            "elastic-pool",
            rate=REVOCATION_RATE,
            arrival_rate=ARRIVAL_RATE,
            seed=seed,
            response="evacuate",
        ),
    }
    return [
        s.named(f"churn-{regime}").with_overcommitment(oc)
        for regime, s in regimes.items()
        for oc in OC_LEVELS
    ]


def _regime_of(scenario: Scenario) -> str:
    return scenario.name.removeprefix("churn-")


@register_value("experiment", "churn")
def run(scale: str = "small", workers: int | None = None) -> ExperimentResult:
    check_scale(scale)
    grid = scenarios(scale)
    results = run_sweep(grid, workers=workers, cache=SWEEP_CACHE)

    result = ExperimentResult(
        figure_id="churn",
        title="Availability frontier under correlated vs independent revocations",
        columns=[
            "regime",
            "overcommit_pct",
            "n_servers",
            "availability",
            "absorbed_share",
            "revocations",
            "server_arrivals",
            "deadline_killed",
        ],
        notes=(
            "equal expected hazard volume per regime; correlated bursts "
            "stress the survivors harder than an independent trickle, "
            "warning-time budgets trade stragglers for bounded migration "
            "rates, and elastic arrivals refill the pool"
        ),
    )
    for r in results:
        fi = r.collected.get("failure-injection", {})
        at_risk = fi.get("absorbed_core_intervals", 0.0) + fi.get(
            "lost_core_intervals", 0.0
        )
        result.add_row(
            regime=_regime_of(r.scenario),
            overcommit_pct=100 * r.scenario.overcommitment,
            n_servers=r.n_servers,
            availability=1.0 - r.failure_probability,
            absorbed_share=(
                fi.get("absorbed_core_intervals", 0.0) / at_risk if at_risk > 0 else 1.0
            ),
            revocations=fi.get("revocations", 0),
            server_arrivals=fi.get("server_arrivals", 0),
            deadline_killed=fi.get("deadline_killed", 0),
        )
    return result
