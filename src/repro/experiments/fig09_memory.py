"""Figure 9: memory-usage deflation feasibility (Alibaba containers).

Memory *occupancy* is high (JVM heap over-allocation): at a mere 10%
deflation most containers are nominally underallocated >70% of the time —
which Figure 10 then shows is not a true measure of memory need.
"""

from __future__ import annotations

from repro.experiments.alibaba_feasibility import container_trace
from repro.experiments.azure_feasibility import grouped_experiment
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig09")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = container_trace(scale)
    return grouped_experiment(
        figure_id="fig09",
        title="P(memory usage > deflated allocation), containers",
        groups={"memory": [r.mem_util for r in traces]},
        notes="paper: >70% of time underallocated even at 10% memory deflation",
    )
