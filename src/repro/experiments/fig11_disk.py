"""Figure 11: disk-bandwidth deflation feasibility (Alibaba containers).

Disk usage is low; even at 50% deflation containers are underallocated
less than 1% of the time.
"""

from __future__ import annotations

from repro.experiments.alibaba_feasibility import container_trace
from repro.experiments.azure_feasibility import grouped_experiment
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig11")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = container_trace(scale)
    return grouped_experiment(
        figure_id="fig11",
        title="P(disk bandwidth > deflated allocation), containers",
        groups={"disk": [r.disk_util for r in traces]},
        notes="paper: <1% of time underallocated at 50% deflation",
    )
