"""Portfolio study: the cost/availability frontier on transient servers.

Portfolio-driven resource management (Sharma et al.) frames transient
capacity as an investment problem: cheaper, revocable servers buy cost
savings at the price of availability, and the operator picks a point on the
resulting frontier.  This experiment reproduces that analysis for
VM-deflation: a (revocation rate x overcommitment x policy) grid replays
one trace under spot-style revocations with deflation-first evacuation, and
each cell reports

* **relative cost** — cluster size relative to the zero-overcommitment
  sizing (fewer servers = cheaper), the knob the paper turns in Figures
  20-22;
* **availability** — ``1 - failure_probability`` for deflatable VMs, now
  *including* revocation losses, not just admission/reclaim failures;
* **absorbed share** — of the VM work put at risk by revocations, the
  fraction deflation-first evacuation saved (the injector's
  ``absorbed / (absorbed + lost)`` core-intervals).

Deflation policies should dominate the preemption baseline on the whole
frontier: evacuation squeezes displaced VMs into surviving servers'
deflatable headroom, so availability degrades gracefully as either knob
(revocation rate, overcommitment) is turned.  The grid runs through
:func:`repro.scenario.run_sweep` and the shared
:data:`~repro.experiments.cluster_sweep.SWEEP_CACHE`, so repeated
invocations (and the docs example) simulate each cell once.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, check_scale
from repro.experiments.cluster_sweep import SWEEP_CACHE
from repro.registry import register_value
from repro.scenario import Scenario, run_sweep

#: Spot-style per-server revocation hazards (per interval); 0 is the
#: reliable-server baseline (no failure spec at all).
REVOCATION_RATES: tuple[float, ...] = (0.0, 0.002, 0.01)

#: Overcommitment targets spanning the paper's Figure 20 range.
OC_LEVELS: tuple[float, ...] = (0.0, 0.3, 0.6)

POLICIES: tuple[str, ...] = ("proportional", "preemption")

_SCALE_N_VMS = {"small": 400, "full": 2000}

#: Schedule seed: fixed so the frontier is reproducible run-to-run (vary it
#: through ``scenarios()`` for confidence intervals).
FAILURE_SEED = 17


def scenarios(
    scale: str = "small",
    rates: tuple[float, ...] = REVOCATION_RATES,
    oc_levels: tuple[float, ...] = OC_LEVELS,
    policies: tuple[str, ...] = POLICIES,
    seed: int = FAILURE_SEED,
) -> list[Scenario]:
    """The declarative grid (policy-major, then rate, then OC)."""
    check_scale(scale)
    base = Scenario(name="portfolio").with_workload(
        "azure", n_vms=_SCALE_N_VMS[scale], seed=31
    )
    grid = []
    for policy in policies:
        for rate in rates:
            for oc in oc_levels:
                s = base.with_policy(policy).with_overcommitment(oc)
                if rate > 0:
                    s = s.with_failures(
                        "spot", rate=rate, seed=seed, response="evacuate"
                    )
                grid.append(s)
    return grid


@register_value("experiment", "portfolio")
def run(scale: str = "small", workers: int | None = None) -> ExperimentResult:
    check_scale(scale)
    grid = scenarios(scale)
    results = run_sweep(grid, workers=workers, cache=SWEEP_CACHE)

    # Cost baseline per policy: the zero-OC cluster size (rate-independent,
    # since sizing only depends on the trace).
    base_servers = {
        r.scenario.policy: r.n_servers
        for r in results
        if r.scenario.overcommitment == OC_LEVELS[0] and r.scenario.failures is None
    }

    result = ExperimentResult(
        figure_id="portfolio",
        title="Cost/availability frontier under transient-server revocations",
        columns=[
            "policy",
            "revocation_rate",
            "overcommit_pct",
            "n_servers",
            "relative_cost",
            "availability",
            "absorbed_share",
        ],
        notes=(
            "deflation-first evacuation should dominate the preemption "
            "baseline across the frontier (availability degrades gracefully "
            "with both knobs)"
        ),
    )
    for r in results:
        spec = r.scenario.failures or {}
        fi = r.collected.get("failure-injection", {})
        at_risk = fi.get("absorbed_core_intervals", 0.0) + fi.get(
            "lost_core_intervals", 0.0
        )
        result.add_row(
            policy=r.scenario.policy,
            revocation_rate=spec.get("rate", 0.0),
            overcommit_pct=100 * r.scenario.overcommitment,
            n_servers=r.n_servers,
            relative_cost=r.n_servers / base_servers[r.scenario.policy],
            availability=1.0 - r.failure_probability,
            absorbed_share=(
                fi.get("absorbed_core_intervals", 0.0) / at_risk if at_risk > 0 else 1.0
            ),
        )
    return result
