"""CLI: regenerate the paper's figures.

Usage::

    python -m repro.experiments fig20           # one figure, small scale
    python -m repro.experiments all --scale full
    repro-experiments fig16 fig17
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments.base import SCALES
from repro.experiments.registry import EXPERIMENTS, get_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of the VM-deflation paper.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help=f"figure ids ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument(
        "--engine",
        default=None,
        help="execution backend for engine-aware experiments (fig20-22), "
        "by registered name — e.g. 'sharded' replays the grid on the "
        "scale-out engine (partitioned variant; see docs/engines.md). "
        "Experiments without an engine knob ignore this with a warning.",
    )
    args = parser.parse_args(argv)

    ids = sorted(EXPERIMENTS) if "all" in args.figures else args.figures
    for figure_id in ids:
        runner = get_experiment(figure_id)
        kwargs = {}
        if args.engine is not None:
            if "engine" in inspect.signature(runner).parameters:
                kwargs["engine"] = args.engine
            else:
                print(
                    f"warning: {figure_id} has no engine knob; "
                    f"ignoring --engine {args.engine}",
                    file=sys.stderr,
                )
        start = time.perf_counter()
        result = runner(args.scale, **kwargs)
        elapsed = time.perf_counter() - start
        result.print_table()
        print(f"[{figure_id} regenerated in {elapsed:.1f}s at scale={args.scale}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
