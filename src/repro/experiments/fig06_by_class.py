"""Figure 6: CPU-deflation feasibility split by workload class.

Interactive VMs have more slack than delay-insensitive (batch) VMs: the
paper reports 1-15% impact for interactive vs. 1-30% for batch as deflation
rises from 10% to 50%.
"""

from __future__ import annotations

from repro.core.vm import VMClass
from repro.experiments.azure_feasibility import feasibility_trace, grouped_experiment
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig06")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = feasibility_trace(scale)
    groups = {
        cls.value: [r.cpu_util for r in traces.by_class(cls)] for cls in VMClass
    }
    return grouped_experiment(
        figure_id="fig06",
        title="P(CPU usage > deflated allocation) by workload class",
        groups=groups,
        notes="paper: interactive 1-15%, batch 1-30% impact over 10-50% deflation",
    )
