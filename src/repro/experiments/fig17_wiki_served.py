"""Figure 17: percentage of Wikipedia requests served vs. CPU deflation.

Almost all requests are served until ~70% deflation; noticeable loss only
beyond that.
"""

from __future__ import annotations

from repro.apps.wikipedia import (
    FIG16_DEFLATION_PCT,
    WikipediaConfig,
    run_deflation_sweep,
)
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value

_SMALL_LEVELS = (0, 40, 70, 80, 90, 97)


@register_value("experiment", "fig17")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    cfg = WikipediaConfig(duration_s=10.0 if scale == "small" else 30.0)
    levels = _SMALL_LEVELS if scale == "small" else FIG16_DEFLATION_PCT
    points = run_deflation_sweep(cfg, levels_pct=levels, seed=6)
    result = ExperimentResult(
        figure_id="fig17",
        title="% Wikipedia requests served vs CPU deflation",
        columns=["deflation_pct", "cores", "served_pct"],
        notes="paper: noticeable request loss only after 70% deflation",
    )
    for p in points:
        result.add_row(
            deflation_pct=p.deflation_pct,
            cores=p.cores,
            served_pct=100 * p.served_fraction,
        )
    return result
