"""Entry point for ``python -m repro.experiments``."""

import sys

from repro.experiments.runner import main

sys.exit(main())
