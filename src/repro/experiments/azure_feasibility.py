"""Shared machinery for the Azure-trace feasibility figures (5, 6, 7, 8).

All four figures are deflation sweeps of the same CPU-utilization
population, differing only in how VMs are grouped.  The trace is synthesized
once per (scale, seed) and cached for the process lifetime so the four
experiments and their benchmarks stay consistent and fast.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.base import ExperimentResult, check_scale
from repro.feasibility.analysis import DeflationSweepResult, deflation_sweep
from repro.traces.azure import AzureTraceConfig, synthesize_azure_trace
from repro.traces.schema import VMTraceSet

SWEEP_LEVELS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

_SCALE_N_VMS = {"small": 600, "full": 4000}


@lru_cache(maxsize=4)
def feasibility_trace(scale: str, seed: int = 17) -> VMTraceSet:
    check_scale(scale)
    return synthesize_azure_trace(AzureTraceConfig(n_vms=_SCALE_N_VMS[scale], seed=seed))


def sweep_to_rows(
    result: ExperimentResult, label: str, sweep: DeflationSweepResult
) -> None:
    """Append one group's boxplot rows to an experiment result."""
    for row in sweep.as_table():
        result.add_row(group=label, **row)


def grouped_experiment(
    figure_id: str,
    title: str,
    groups: dict[str, list],
    notes: str = "",
) -> ExperimentResult:
    result = ExperimentResult(
        figure_id=figure_id,
        title=title,
        columns=[
            "group",
            "deflation_pct",
            "whisker_lo",
            "q1",
            "median",
            "q3",
            "whisker_hi",
            "mean",
        ],
        notes=notes,
    )
    for label, series in groups.items():
        if not series:
            continue
        sweep_to_rows(result, label, deflation_sweep(series, SWEEP_LEVELS))
    return result
