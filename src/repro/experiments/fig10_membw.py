"""Figure 10: memory-bandwidth utilization (Alibaba containers).

The paper's counterpoint to Figure 9: actual memory *activity* is tiny
(mean <0.1% of bus bandwidth, max ~1%), so the high occupancy numbers
vastly understate memory deflatability.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.alibaba_feasibility import container_trace
from repro.experiments.base import ExperimentResult, check_scale
from repro.feasibility.analysis import utilization_summary
from repro.registry import register_value


@register_value("experiment", "fig10")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    traces = container_trace(scale)
    series = [r.mem_bw_util for r in traces]
    pooled = utilization_summary(series)
    per_container_max = np.array([float(s.max()) for s in series])
    result = ExperimentResult(
        figure_id="fig10",
        title="Memory-bus bandwidth utilization of containers",
        columns=["statistic", "value_pct"],
        notes="paper: mean <0.1%, maximum ~1%",
    )
    result.add_row(statistic="mean", value_pct=100 * pooled.mean)
    result.add_row(statistic="median", value_pct=100 * pooled.median)
    result.add_row(statistic="q3", value_pct=100 * pooled.q3)
    result.add_row(statistic="max", value_pct=100 * float(per_container_max.max()))
    result.add_row(
        statistic="mean_of_per_container_max", value_pct=100 * float(per_container_max.mean())
    )
    return result
