"""Per-figure experiment harnesses and the CLI runner.

Import :data:`repro.experiments.registry.EXPERIMENTS` for programmatic
access, or run ``python -m repro.experiments <figure-id>``.
"""

from repro.experiments.base import SCALES, ExperimentResult, check_scale

__all__ = ["SCALES", "ExperimentResult", "check_scale"]
