"""Figure 18: social-network microservice response times under deflation.

500 req/s against the 30-microservice application with 22 services deflated
by 0/30/50/60/65%.  Flat to 50%, then abrupt degradation — the fan-out
structure amplifies queueing at the bottleneck services.
"""

from __future__ import annotations

from repro.apps.socialnet import run_socialnet_sweep
from repro.experiments.base import ExperimentResult, check_scale
from repro.registry import register_value


@register_value("experiment", "fig18")
def run(scale: str = "small") -> ExperimentResult:
    check_scale(scale)
    duration = 10.0 if scale == "small" else 30.0
    points = run_socialnet_sweep(duration_s=duration, seed=7)
    result = ExperimentResult(
        figure_id="fig18",
        title="Social-network app RT percentiles vs deflation (22/30 services)",
        columns=[
            "deflation_pct",
            "median_ms",
            "p90_ms",
            "p99_ms",
            "served_pct",
            "bottleneck_rho",
        ],
        notes="paper: no loss to 50%, abrupt degradation beyond",
    )
    for p in points:
        result.add_row(
            deflation_pct=p.deflation_pct,
            median_ms=p.median_ms,
            p90_ms=p.p90_ms,
            p99_ms=p.p99_ms,
            served_pct=100 * p.served_fraction,
            bottleneck_rho=p.bottleneck_rho,
        )
    return result
