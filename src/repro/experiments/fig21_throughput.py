"""Figure 21: throughput decrease of deflatable VMs vs. overcommitment.

Negligible below 40% overcommitment, ~1% at 50%, <5% at 80% — and adding
priorities cuts the loss by an order of magnitude (high-utilization VMs are
deflated less).  A partitioned variant shows cluster partitioning does not
significantly change the picture.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, check_scale
from repro.experiments.cluster_sweep import cluster_sweep
from repro.registry import register_value

_POLICIES = ("proportional", "priority", "deterministic")


@register_value("experiment", "fig21")
def run(scale: str = "small", engine: str | None = None) -> ExperimentResult:
    """Regenerate the figure; ``engine`` moves the *partitioned* comparison
    series onto another backend (e.g. ``"sharded"``, which only accepts
    partitioned scenarios — see docs/engines.md).  The flat main series
    always runs on the default engine, so the figure's flat-vs-partitioned
    contrast stays meaningful — and since backends are bit-identical, the
    printed table is the same for every engine choice.
    """
    check_scale(scale)
    sweep = cluster_sweep(scale)
    part = cluster_sweep(scale, partitioned=True, engine=engine)
    result = ExperimentResult(
        figure_id="fig21",
        title="Throughput decrease of deflatable VMs vs overcommitment",
        columns=["overcommit_pct"]
        + [f"{p}_loss" for p in _POLICIES]
        + ["priority_partitioned_loss"],
        notes="paper: ~0 below 40% OC, ~1% at 50%, <5% at 80%; priorities ~10x better",
    )
    series = {p: dict(sweep.throughput_losses(p)) for p in _POLICIES}
    part_series = dict(part.throughput_losses("priority"))
    levels = sorted(next(iter(series.values())).keys())
    for oc in levels:
        result.add_row(
            overcommit_pct=oc,
            **{f"{p}_loss": series[p][oc] for p in _POLICIES},
            priority_partitioned_loss=part_series.get(oc, float("nan")),
        )
    return result
