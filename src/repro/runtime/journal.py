"""Resumable sweeps: an incremental on-disk journal of completed results.

``run_sweep`` used to persist nothing until the whole grid returned: an
interrupted 10-hour sweep re-ran from scratch.  A :class:`SweepJournal`
writes each completed result to disk *as it finishes* (pickle, one file
per entry, write-then-rename so a crash mid-write never leaves a torn
entry), bound to a fingerprint of the exact scenario list.  Resuming the
same sweep loads the journaled entries and executes only the remainder;
binding a *different* sweep to the same directory resets it, so a stale
journal can never leak results into the wrong grid.

Pickle round-trips results exactly (float bit patterns included), and
every simulator run is deterministic in its scenario, so a resumed sweep
is **bit-identical** to an uninterrupted cold run — the same warm == cold
discipline :class:`~repro.scenario.cache.SweepCache` upholds, extended to
scenarios the cache cannot hold (explicit in-memory traces).  Failed
tasks are never journaled: a resume retries them from a clean slate.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import SimulationError

#: Bump when the on-disk layout changes; a journal written by another
#: version is reset on bind rather than misread.
JOURNAL_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"


class SweepJournal:
    """One directory journaling one sweep's completed results by index.

    Usage (``run_sweep`` drives this automatically via ``journal=...``)::

        journal = SweepJournal(path)
        done = journal.bind(fingerprint, n_items)   # {} on a fresh/reset run
        ...
        journal.record(index, result)               # as each task completes

    ``bind`` attaches the journal to a specific sweep: when the stored
    manifest matches ``(fingerprint, n_items, version)`` the journaled
    entries are returned for reuse; any mismatch (different sweep, older
    layout, torn manifest) resets the directory.  Unreadable or torn
    entry files are dropped individually — the scenarios simply re-run.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path).expanduser()
        self._bound = False

    # -- binding -----------------------------------------------------------------

    def bind(self, fingerprint: str, n_items: int) -> dict[int, Any]:
        """Attach to a sweep; returns ``{index: value}`` of reusable entries."""
        manifest = self._read_manifest()
        expected = {
            "version": JOURNAL_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "n_items": n_items,
        }
        if manifest != expected:
            self._reset(expected)
            self._bound = True
            return {}
        self._bound = True
        done: dict[int, Any] = {}
        for index, file in self._entries():
            if index >= n_items:
                continue
            try:
                with open(file, "rb") as fh:
                    done[index] = pickle.load(fh)
            except Exception:
                # Torn or stale bytes surface as almost anything from
                # pickle.load (UnpicklingError, ValueError, EOFError,
                # AttributeError, ImportError...): drop the one entry and
                # let its task re-run.
                try:
                    file.unlink()
                except OSError:
                    pass
        return done

    def record(self, index: int, value: Any) -> bool:
        """Persist one completed value; returns False when it cannot be."""
        if not self._bound:
            raise SimulationError("journal must be bound to a sweep before recording")
        try:
            payload = pickle.dumps(value)
        except Exception:
            return False  # unpicklable result: the sweep still returns it
        return self._write(self._entry_file(index), payload)

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> None:
        """Drop every entry and the manifest (the next bind starts fresh)."""
        self._bound = False
        if not self.path.is_dir():
            return
        for _, file in self._entries():
            try:
                file.unlink()
            except OSError:
                pass
        try:
            (self.path / _MANIFEST).unlink()
        except OSError:
            pass

    # -- disk layout -------------------------------------------------------------

    def _entry_file(self, index: int) -> Path:
        return self.path / f"entry-{index:06d}.pkl"

    def _entries(self):
        """Only files this journal wrote: ``entry-<digits>.pkl``."""
        if not self.path.is_dir():
            return
        for file in sorted(self.path.glob("entry-*.pkl")):
            digits = file.stem.partition("-")[2]
            if digits.isdigit():
                yield int(digits), file

    def _read_manifest(self) -> dict | None:
        try:
            return json.loads((self.path / _MANIFEST).read_text())
        except (OSError, ValueError):
            return None

    def _reset(self, manifest: dict) -> None:
        for _, file in self._entries():
            try:
                file.unlink()
            except OSError:
                pass
        self._write(self.path / _MANIFEST, json.dumps(manifest).encode())

    def _write(self, target: Path, payload: bytes) -> bool:
        tmp = None
        try:
            self.path.mkdir(parents=True, exist_ok=True)
            # Write-then-rename: an interrupt mid-write leaves a .tmp file,
            # never a torn entry a resume could half-read.
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, target)
            return True
        except OSError:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return False
