"""Supervised execution runtime: fault-tolerant fan-out for sweeps.

The simulation layers (``repro/scenario``, ``repro/simulator``) describe
*what* to run; this package owns *how* work fans out across processes —
and what happens when a worker dies doing it.  The transient-computing
systems this repo reproduces absorb revocations and keep serving; the
harness replaying them meets the same bar:

* :func:`supervised_map` — per-task dispatch over supervised worker
  processes.  A crashed or SIGKILLed worker loses only its in-flight
  task (retried in a fresh replacement worker, with bounded retries and
  exponential backoff); a task exceeding its wall-clock timeout gets its
  worker killed and replaced; a raising task is captured as structured
  failure data instead of aborting the whole map.
* :class:`RetryPolicy` — the retry/timeout/backoff knobs, as data.
* :class:`SweepJournal` — incremental on-disk journal of completed
  results, so an interrupted run resumes from where it died.
* :func:`resolve_start_method` — the one place the multiprocessing start
  method (fork vs spawn, ``REPRO_START_METHOD``) is decided.

Everything executed here is deterministic in its inputs, so retried,
resumed, and replayed results are bit-identical to a serial run — the
supervision machinery changes wall-clock behavior only, never floats.
This is also the only package allowed to construct multiprocessing
pools, contexts, or worker processes (enforced by the ``pool-discipline``
repro-lint rule): unsupervised fan-out cannot be reintroduced silently.

Wall-clock reads are legitimately part of supervision (deadlines,
backoff), which is why this lives outside the ``repro/scenario`` /
``repro/simulator`` paths where the ``no-wallclock`` lint rule bans
them: time here steers scheduling, never results.
"""

from repro.runtime.journal import SweepJournal
from repro.runtime.supervisor import (
    RetryPolicy,
    TaskFailure,
    TaskOutcome,
    raise_on_failures,
    resolve_start_method,
    supervised_map,
)

__all__ = [
    "RetryPolicy",
    "SweepJournal",
    "TaskFailure",
    "TaskOutcome",
    "raise_on_failures",
    "resolve_start_method",
    "supervised_map",
]
