"""Worker supervision: per-task dispatch with retry, timeout, and backoff.

:func:`supervised_map` is the fault-tolerant replacement for
``multiprocessing.Pool.map``.  The pool's failure mode is all-or-nothing:
one OOM-killed fork, segfault, or hung task aborts (or hangs) the whole
map and discards every completed result.  Here each worker process is
individually supervised over a dedicated duplex pipe:

* **crash** — a worker that dies (``os._exit``, SIGKILL, segfault) loses
  only its in-flight task; the supervisor reaps it, spawns a replacement,
  and retries the task with exponential backoff, up to the policy's
  bounded retry budget.  A retried task always lands in a *fresh* worker,
  so a poison task cannot take healthy work down with it.
* **timeout** — a task exceeding the policy's per-task wall-clock budget
  gets its worker SIGKILLed and replaced; the task is retried or reported
  as a ``timeout`` failure.
* **raise** — an exception inside the task function is captured (type,
  message, traceback) and shipped back as data; the worker stays alive.

Every task produces a :class:`TaskOutcome` — completed value or
structured :class:`TaskFailure` — in *input order*, so a map over a
sweep grid degrades gracefully instead of aborting.  Task functions are
deterministic in their inputs (the repo-wide discipline), so a retried
task returns bit-identical results: supervision changes wall-clock
behavior only, never values.

This module is the only place in the library that constructs
multiprocessing contexts or worker processes (the ``pool-discipline``
lint rule enforces it).  Wall-clock reads here are supervision plumbing
— deadlines and backoff — and can never leak into results.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import time
import traceback
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_ready
from typing import Any

from repro.errors import SimulationError, SweepError

__all__ = [
    "RetryPolicy",
    "TaskFailure",
    "TaskOutcome",
    "resolve_start_method",
    "supervised_map",
]

#: Failure kinds a task can suffer, in escalating order of violence.
FAILURE_KINDS = ("raise", "crash", "timeout")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout/backoff knobs for supervised execution, as plain data.

    A task is attempted up to ``1 + max_retries`` times; before the k-th
    retry the supervisor waits ``min(backoff_max, backoff_base *
    backoff_factor ** (k - 1))`` seconds (other tasks keep running — the
    backoff parks only the failed task).  ``timeout`` is the per-task
    wall-clock budget in seconds (None: unlimited).  ``retry_on`` picks
    which failure kinds are worth retrying: crashes and timeouts are
    environmental and retried by default, while a raising task is
    usually deterministic (same scenario, same exception) and fails fast
    unless ``"raise"`` is included.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    timeout: float | None = None
    retry_on: tuple[str, ...] = ("crash", "timeout")

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SimulationError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0 or self.backoff_factor < 0:
            raise SimulationError("backoff knobs must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise SimulationError("timeout must be positive (or None for unlimited)")
        unknown = sorted(set(self.retry_on) - set(FAILURE_KINDS))
        if unknown:
            raise SimulationError(
                f"unknown retry_on kinds {unknown}; valid kinds: {list(FAILURE_KINDS)}"
            )
        object.__setattr__(self, "retry_on", tuple(self.retry_on))

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_retries

    def backoff(self, failures: int) -> float:
        """Seconds to park a task after its ``failures``-th failure (1-based)."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_max, self.backoff_base * self.backoff_factor ** (failures - 1))


@dataclass(frozen=True)
class TaskFailure:
    """Structured capture of one task's final failure.

    ``kind`` is ``"raise"`` (exception in the task function), ``"crash"``
    (the worker process died), or ``"timeout"`` (wall-clock budget
    exceeded).  Plain picklable data: failures ride inside results across
    process boundaries and into journals.
    """

    kind: str
    error_type: str
    message: str
    attempts: int = 1
    traceback: str = ""

    def describe(self) -> str:
        return f"{self.kind} after {self.attempts} attempt(s): {self.error_type}: {self.message}"


@dataclass(frozen=True)
class TaskOutcome:
    """One task's supervised result: value or failure, plus attempt count."""

    index: int
    status: str  # "ok" | "failed"
    value: Any = None
    failure: TaskFailure | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def resolve_start_method(override: str | None = None) -> str:
    """The multiprocessing start method supervised execution will use.

    Resolution order: explicit ``override`` argument, then the
    ``REPRO_START_METHOD`` environment variable, then ``fork`` where the
    platform offers it (workers inherit the already-imported interpreter
    — cheap startup, populated registries, and large task payloads shared
    by inheritance instead of pickling), else the platform default.
    Results never depend on the choice: fork and spawn sweeps are
    bit-identical (asserted by the fault-tolerance suite).
    """
    method = override or os.environ.get("REPRO_START_METHOD") or None
    available = multiprocessing.get_all_start_methods()
    if method is not None:
        if method not in available:
            raise SimulationError(
                f"start method {method!r} is not available on this platform; "
                f"available: {available}"
            )
        return method
    return "fork" if "fork" in available else multiprocessing.get_start_method()


def raise_on_failures(outcomes: Sequence[TaskOutcome], what: str = "sweep") -> None:
    """Raise :class:`SweepError` summarizing any failed outcomes."""
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return
    first = failed[0].failure
    assert first is not None
    raise SweepError(
        f"{len(failed)} of {len(outcomes)} {what} task(s) failed; "
        f"first failure (task {failed[0].index}): {first.describe()}",
        failures=tuple(failed),
    )


# -- worker side ---------------------------------------------------------------------

#: Fork-shared task state: ``(fn, items)`` published while a fork-method
#: map is executing.  Forked workers (including mid-run replacements)
#: inherit it, so only task *indices* cross the pipe — a grid sharing one
#: large in-memory trace set is never pickled into the workers at all.
_FORK_STATE: tuple[Callable, Sequence] | None = None


def _worker_main(conn, fn, initializer) -> None:
    """Worker loop: receive ``(index, item?)``, send ``(index, status, payload)``.

    ``fn`` is None in fork mode (task function and items are inherited
    via :data:`_FORK_STATE`).  A ``None`` message is the shutdown signal.
    Exceptions — including ``SystemExit`` from ``sys.exit`` — are shipped
    back as data; only a hard process death (``os._exit``, signals) ends
    the loop without a reply, which the supervisor treats as a crash.
    """
    if initializer is not None:
        initializer()
    items: Sequence | None = None
    if fn is None:
        assert _FORK_STATE is not None
        fn, items = _FORK_STATE
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        if len(msg) == 1:
            index, item = msg[0], items[msg[0]]  # type: ignore[index]
        else:
            index, item = msg
        try:
            reply = (index, "ok", fn(item))
        except BaseException as exc:  # noqa: BLE001 — shipped back as data
            reply = (index, "error", _describe_exception(exc))
        try:
            conn.send(reply)
        except Exception as exc:  # unpicklable result: report, don't die
            conn.send((index, "error", ("UnpicklableResultError", str(exc), "")))


def _describe_exception(exc: BaseException) -> tuple[str, str, str]:
    return (type(exc).__name__, str(exc), traceback.format_exc())


# -- supervisor side -----------------------------------------------------------------


@dataclass
class _Task:
    index: int
    item: Any
    failures: int = 0
    last_failure: TaskFailure | None = None


@dataclass
class _Worker:
    process: Any
    conn: Any
    task: _Task | None = None
    deadline: float | None = None


class _Supervisor:
    """One supervised map execution (parallel path)."""

    def __init__(
        self,
        fn: Callable,
        items: Sequence,
        workers: int,
        policy: RetryPolicy,
        method: str,
        initializer: Callable[[], None] | None,
        on_complete: Callable[[TaskOutcome], None] | None,
    ) -> None:
        self.fn = fn
        self.items = items
        self.max_workers = workers
        self.policy = policy
        self.method = method
        self.initializer = initializer
        self.on_complete = on_complete
        self.ctx = multiprocessing.get_context(method)
        self.pending: deque[_Task] = deque(_Task(i, item) for i, item in enumerate(items))
        self.parked: list[tuple[float, int, _Task]] = []  # (ready_time, seq, task)
        self.seq = itertools.count()
        self.workers: list[_Worker] = []
        self.outcomes: list[TaskOutcome | None] = [None] * len(items)
        self.done = 0

    # -- lifecycle ---------------------------------------------------------------

    def run(self) -> list[TaskOutcome]:
        global _FORK_STATE
        fork_mode = self.method == "fork"
        if fork_mode:
            _FORK_STATE = (self.fn, self.items)
        try:
            self._loop(fork_mode)
        finally:
            if fork_mode:
                _FORK_STATE = None
            self._shutdown()
        assert all(o is not None for o in self.outcomes)
        return list(self.outcomes)  # type: ignore[arg-type]

    def _loop(self, fork_mode: bool) -> None:
        while self.done < len(self.outcomes):
            now = time.monotonic()
            self._unpark(now)
            self._dispatch(now, fork_mode)
            timeout = self._wait_budget(now)
            ready = set(self._wait(timeout))
            now = time.monotonic()
            for worker in list(self.workers):
                if worker.conn in ready:
                    self._drain(worker)
                elif worker.process.sentinel in ready:
                    self._on_crash(worker)
            self._check_timeouts(now)

    def _shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers.clear()

    # -- dispatch ----------------------------------------------------------------

    def _unpark(self, now: float) -> None:
        while self.parked and self.parked[0][0] <= now:
            self.pending.append(heapq.heappop(self.parked)[2])

    def _dispatch(self, now: float, fork_mode: bool) -> None:
        while self.pending:
            worker = self._idle_worker()
            if worker is None:
                return
            task = self.pending.popleft()
            msg = (task.index,) if fork_mode else (task.index, task.item)
            try:
                worker.conn.send(msg)
            except (OSError, ValueError):
                # Worker died between spawn and dispatch: requeue, reap.
                self.pending.appendleft(task)
                self._on_crash(worker)
                continue
            worker.task = task
            if self.policy.timeout is not None:
                worker.deadline = now + self.policy.timeout

    def _idle_worker(self) -> _Worker | None:
        for worker in self.workers:
            if worker.task is None and worker.process.is_alive():
                return worker
        if len(self.workers) < self.max_workers:
            return self._spawn()
        return None

    def _spawn(self) -> _Worker | None:
        parent, child = self.ctx.Pipe(duplex=True)
        fn = None if self.method == "fork" else self.fn
        process = self.ctx.Process(
            target=_worker_main,
            args=(child, fn, self.initializer),
            daemon=True,
            name="repro-supervised-worker",
        )
        try:
            process.start()
        except OSError:
            parent.close()
            child.close()
            return None
        child.close()  # the parent end is ours; the child holds its own
        worker = _Worker(process=process, conn=parent)
        self.workers.append(worker)
        return worker

    # -- waiting -----------------------------------------------------------------

    def _wait_budget(self, now: float) -> float | None:
        """Seconds until the next deadline/unpark, or None for 'until events'."""
        horizon: float | None = None
        for worker in self.workers:
            if worker.deadline is not None:
                horizon = worker.deadline if horizon is None else min(horizon, worker.deadline)
        if self.parked:
            head = self.parked[0][0]
            horizon = head if horizon is None else min(horizon, head)
        if horizon is None:
            return None
        return max(0.0, horizon - now)

    def _wait(self, timeout: float | None):
        handles = []
        for worker in self.workers:
            handles.append(worker.conn)
            handles.append(worker.process.sentinel)
        if not handles:
            # Nothing in flight: waiting out a backoff window, or repeated
            # spawn failures (resource exhaustion) left us workerless — in
            # either case sleep instead of spinning.
            time.sleep(timeout if timeout is not None else 0.05)
            return ()
        return _wait_ready(handles, timeout)

    # -- event handling ----------------------------------------------------------

    def _drain(self, worker: _Worker) -> None:
        try:
            while worker.conn.poll():
                index, status, payload = worker.conn.recv()
                task = worker.task
                worker.task = None
                worker.deadline = None
                if task is None or task.index != index:
                    continue  # stale reply from a task already written off
                if status == "ok":
                    self._complete(task, payload)
                else:
                    error_type, message, tb = payload
                    self._fail(
                        task,
                        TaskFailure(
                            kind="raise",
                            error_type=error_type,
                            message=message,
                            attempts=task.failures + 1,
                            traceback=tb,
                        ),
                    )
        except (EOFError, OSError):
            self._on_crash(worker)

    def _on_crash(self, worker: _Worker) -> None:
        if worker not in self.workers:
            return
        task = worker.task
        exitcode = worker.process.exitcode
        self._retire(worker)
        if task is not None:
            self._fail(
                task,
                TaskFailure(
                    kind="crash",
                    error_type="WorkerCrashed",
                    message=(
                        f"worker process died (exitcode {exitcode}) while running "
                        f"task {task.index}"
                    ),
                    attempts=task.failures + 1,
                ),
            )

    def _check_timeouts(self, now: float) -> None:
        for worker in list(self.workers):
            if worker.task is None or worker.deadline is None or now <= worker.deadline:
                continue
            if worker.conn.poll():
                self._drain(worker)  # finished just under the wire
                continue
            task = worker.task
            worker.task = None
            self._retire(worker, kill=True)
            assert self.policy.timeout is not None
            self._fail(
                task,
                TaskFailure(
                    kind="timeout",
                    error_type="TaskTimeout",
                    message=(
                        f"task {task.index} exceeded the {self.policy.timeout:g}s "
                        "wall-clock budget; its worker was killed"
                    ),
                    attempts=task.failures + 1,
                ),
            )

    def _retire(self, worker: _Worker, kill: bool = False) -> None:
        if worker in self.workers:
            self.workers.remove(worker)
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:
            pass

    # -- outcome accounting ------------------------------------------------------

    def _complete(self, task: _Task, value: Any) -> None:
        outcome = TaskOutcome(
            index=task.index, status="ok", value=value, attempts=task.failures + 1
        )
        self._record(outcome)

    def _fail(self, task: _Task, failure: TaskFailure) -> None:
        task.failures += 1
        task.last_failure = failure
        retryable = failure.kind in self.policy.retry_on
        if retryable and task.failures < self.policy.max_attempts:
            ready = time.monotonic() + self.policy.backoff(task.failures)
            heapq.heappush(self.parked, (ready, next(self.seq), task))
            return
        self._record(
            TaskOutcome(
                index=task.index,
                status="failed",
                failure=failure,
                attempts=task.failures,
            )
        )

    def _record(self, outcome: TaskOutcome) -> None:
        assert self.outcomes[outcome.index] is None
        self.outcomes[outcome.index] = outcome
        self.done += 1
        if self.on_complete is not None:
            self.on_complete(outcome)


# -- serial path ---------------------------------------------------------------------


def _run_serial(
    fn: Callable,
    items: Sequence,
    policy: RetryPolicy,
    on_complete: Callable[[TaskOutcome], None] | None,
) -> list[TaskOutcome]:
    """In-process execution with the same retry semantics (no crash/timeout
    protection: there is no worker boundary to supervise)."""
    outcomes: list[TaskOutcome] = []
    for index, item in enumerate(items):
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome = TaskOutcome(index=index, status="ok", value=fn(item), attempts=attempts)
                break
            except Exception as exc:
                failure = TaskFailure(
                    kind="raise",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=attempts,
                    traceback=traceback.format_exc(),
                )
                if "raise" not in policy.retry_on or attempts >= policy.max_attempts:
                    outcome = TaskOutcome(
                        index=index, status="failed", failure=failure, attempts=attempts
                    )
                    break
                time.sleep(policy.backoff(attempts))
        if on_complete is not None:
            on_complete(outcome)
        outcomes.append(outcome)
    return outcomes


def supervised_map(
    fn: Callable,
    items: Sequence,
    *,
    workers: int | None = None,
    policy: RetryPolicy | None = None,
    start_method: str | None = None,
    initializer: Callable[[], None] | None = None,
    on_complete: Callable[[TaskOutcome], None] | None = None,
) -> list[TaskOutcome]:
    """Run ``fn`` over ``items`` under supervision; outcomes in input order.

    ``fn`` must be a module-level callable (workers resolve it by
    reference under spawn) and deterministic in its item, so retries and
    worker placement never change values.  ``workers <= 1`` (or a
    daemonic caller that cannot fork children — e.g. a task already
    inside a supervised worker) runs in-process with the same
    retry-on-raise semantics but no crash/timeout protection; a single
    item with ``workers > 1`` still runs in one supervised worker, so
    crash containment and timeouts hold for one-task maps too.

    ``policy`` defaults to :class:`RetryPolicy` (2 retries for crashes
    and timeouts, fail-fast on exceptions, no timeout).  ``start_method``
    overrides :func:`resolve_start_method`.  ``initializer`` runs once in
    every fresh worker before its first task (register test components,
    configure warnings).  ``on_complete`` is invoked in the supervisor
    process as each task finishes — completion order, not input order —
    for incremental journaling/caching.

    Returns one :class:`TaskOutcome` per item; callers wanting
    all-or-nothing semantics can pass the list to
    :func:`raise_on_failures`.
    """
    items = list(items)
    policy = policy if policy is not None else RetryPolicy()
    if (
        workers is None
        or workers <= 1
        or not items
        or multiprocessing.current_process().daemon
    ):
        return _run_serial(fn, items, policy, on_complete)
    method = resolve_start_method(start_method)
    n = min(int(workers), len(items))
    return _Supervisor(fn, items, n, policy, method, initializer, on_complete).run()
