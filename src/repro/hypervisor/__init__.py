"""Simulated hypervisor substrate: cgroups, guest OS, hotplug, mechanisms."""

from repro.hypervisor.cgroups import (
    CFS_PERIOD_US,
    BlkioController,
    CGroup,
    CGroupManager,
    CpuController,
    MemoryController,
    NetController,
)
from repro.hypervisor.domain import Domain, DomainConfig, DomainState
from repro.hypervisor.guest import (
    MEMORY_BLOCK_MB,
    MIN_ONLINE_VCPUS,
    GuestMemoryProfile,
    GuestOS,
)
from repro.hypervisor.hotplug import ExplicitMechanism, HotplugOutcome
from repro.hypervisor.hybrid import MECHANISMS, HybridMechanism, HybridReport
from repro.hypervisor.libvirt_api import HypervisorConnection
from repro.hypervisor.multiplex import TransparentMechanism

__all__ = [
    "CFS_PERIOD_US",
    "BlkioController",
    "CGroup",
    "CGroupManager",
    "CpuController",
    "MemoryController",
    "NetController",
    "Domain",
    "DomainConfig",
    "DomainState",
    "MEMORY_BLOCK_MB",
    "MIN_ONLINE_VCPUS",
    "GuestMemoryProfile",
    "GuestOS",
    "ExplicitMechanism",
    "HotplugOutcome",
    "MECHANISMS",
    "HybridMechanism",
    "HybridReport",
    "HypervisorConnection",
    "TransparentMechanism",
]
