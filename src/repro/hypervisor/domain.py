"""VM domains: lifecycle plus the effective-resource computation.

A :class:`Domain` combines the pieces a real KVM/libvirt host would have for
one VM: a static configuration (maximum resources), a simulated guest kernel
(:class:`~repro.hypervisor.guest.GuestOS`) for the explicit mechanisms, and a
cgroup (:class:`~repro.hypervisor.cgroups.CGroup`) for the transparent ones.

The *effective* resources — what the VM's applications can actually use —
are the meet of the two layers: e.g. CPU is limited both by how many vCPUs
the guest has online (hotplug) and by the cgroup quota (multiplexing).  The
application models read these effective values, which is how mechanism
choices (transparent vs. hybrid, Figure 14) translate into performance.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.resources import ResourceVector
from repro.errors import DomainStateError, ResourceError
from repro.hypervisor.cgroups import CGroup
from repro.hypervisor.guest import GuestMemoryProfile, GuestOS


class DomainState(enum.Enum):
    DEFINED = "defined"
    RUNNING = "running"
    SHUTOFF = "shutoff"


@dataclass(frozen=True)
class DomainConfig:
    """Static (maximum) resource configuration of a domain."""

    name: str
    max_vcpus: int
    max_memory_mb: float
    disk_mbps: float = 500.0
    net_mbps: float = 1000.0

    def __post_init__(self) -> None:
        if self.max_vcpus < 1:
            raise ResourceError("domain needs >= 1 vCPU")
        if self.max_memory_mb <= 0:
            raise ResourceError("domain needs > 0 memory")

    @classmethod
    def from_capacity(cls, name: str, capacity: ResourceVector) -> "DomainConfig":
        """Derive a config from a capacity vector (vCPUs rounded up)."""
        return cls(
            name=name,
            max_vcpus=max(1, math.ceil(capacity.cpu)),
            max_memory_mb=capacity.memory_mb,
            disk_mbps=capacity.disk_mbps or 500.0,
            net_mbps=capacity.net_mbps or 1000.0,
        )

    def capacity_vector(self) -> ResourceVector:
        return ResourceVector(
            cpu=self.max_vcpus,
            memory_mb=self.max_memory_mb,
            disk_mbps=self.disk_mbps,
            net_mbps=self.net_mbps,
        )


class Domain:
    """A single VM on a host."""

    def __init__(
        self,
        config: DomainConfig,
        cgroup: CGroup,
        memory_profile: GuestMemoryProfile | None = None,
    ) -> None:
        self.config = config
        self.cgroup = cgroup
        self.state = DomainState.DEFINED
        self.guest: GuestOS | None = None
        self._pending_profile = memory_profile

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self.state == DomainState.RUNNING:
            raise DomainStateError(f"domain {self.config.name} already running")
        self.guest = GuestOS(
            total_vcpus=self.config.max_vcpus,
            total_memory_mb=self.config.max_memory_mb,
            memory_profile=self._pending_profile,
        )
        self.state = DomainState.RUNNING

    def destroy(self) -> None:
        if self.state != DomainState.RUNNING:
            raise DomainStateError(f"domain {self.config.name} is not running")
        self.guest = None
        self.state = DomainState.SHUTOFF

    def _require_running(self) -> GuestOS:
        if self.state != DomainState.RUNNING or self.guest is None:
            raise DomainStateError(f"domain {self.config.name} is not running")
        return self.guest

    # -- effective resources -------------------------------------------------------

    def effective_cpu(self) -> float:
        """Cores usable by the guest: min(online vCPUs, cgroup quota)."""
        guest = self._require_running()
        return min(float(guest.online_vcpus), self.cgroup.cpu.limit_cores())

    def effective_memory_mb(self) -> float:
        """Memory usable by the guest: min(plugged, cgroup limit)."""
        guest = self._require_running()
        return min(guest.plugged_memory_mb, self.cgroup.memory.limit_mb)

    def effective_disk_mbps(self) -> float:
        return min(self.config.disk_mbps, self.cgroup.blkio.effective_mbps())

    def effective_net_mbps(self) -> float:
        return min(self.config.net_mbps, self.cgroup.net.rate_mbps)

    def effective_resources(self) -> ResourceVector:
        return ResourceVector(
            cpu=self.effective_cpu(),
            memory_mb=self.effective_memory_mb(),
            disk_mbps=self.effective_disk_mbps(),
            net_mbps=self.effective_net_mbps(),
        )

    def swapped_memory_mb(self) -> float:
        """Memory the hypervisor must swap for this domain.

        The guest keeps touching its RSS + surviving page cache; whatever
        does not fit under the *hypervisor* memory limit is swapped.  Guest-
        cooperative (hotplug) reclamation shrinks the touched set first,
        which is exactly why hybrid deflation performs better (Figure 14).
        """
        guest = self._require_running()
        touched = guest.touched_memory_mb()
        return max(0.0, touched - self.cgroup.memory.limit_mb)

    def deflation_fraction_cpu(self) -> float:
        return 1.0 - self.effective_cpu() / self.config.max_vcpus

    def deflation_fraction_memory(self) -> float:
        return 1.0 - self.effective_memory_mb() / self.config.max_memory_mb
