"""A libvirt-flavoured facade over the simulated hypervisor.

The paper's prototype "uses the libvirt API for running VMs and for dynamic
resource allocation required for deflation" (Section 6).  This module offers
the small slice of that API the deflation system needs — open a connection,
define/start/destroy domains, adjust vCPUs, memory, blkio and network
bandwidth — backed by the cgroup + guest models, so code written against it
reads like the real controller would.
"""

from __future__ import annotations

from repro.core.resources import ResourceVector
from repro.errors import DomainStateError, ResourceError
from repro.hypervisor.cgroups import CGroupManager
from repro.hypervisor.domain import Domain, DomainConfig, DomainState
from repro.hypervisor.guest import GuestMemoryProfile
from repro.hypervisor.hybrid import HybridMechanism


class HypervisorConnection:
    """One host's hypervisor endpoint (think ``libvirt.open('qemu:///system')``)."""

    def __init__(self, ncpus: float, memory_mb: float, hostname: str = "host-0") -> None:
        if memory_mb <= 0:
            raise ResourceError("host memory must be > 0")
        self.hostname = hostname
        self.ncpus = float(ncpus)
        self.memory_mb = float(memory_mb)
        self.cgroups = CGroupManager(ncpus_host=ncpus)
        self._domains: dict[str, Domain] = {}
        self._mechanisms: dict[str, HybridMechanism] = {}

    # -- domain lifecycle -----------------------------------------------------

    def define_domain(
        self, config: DomainConfig, memory_profile: GuestMemoryProfile | None = None
    ) -> Domain:
        if config.name in self._domains:
            raise DomainStateError(f"domain {config.name!r} already defined")
        cgroup = self.cgroups.create(config.name)
        domain = Domain(config=config, cgroup=cgroup, memory_profile=memory_profile)
        self._domains[config.name] = domain
        self._mechanisms[config.name] = HybridMechanism(domain)
        return domain

    def create_domain(
        self,
        name: str,
        capacity: ResourceVector,
        memory_profile: GuestMemoryProfile | None = None,
    ) -> Domain:
        """define + start in one call, from a capacity vector."""
        config = DomainConfig.from_capacity(name, capacity)
        domain = self.define_domain(config, memory_profile)
        domain.start()
        return domain

    def lookup(self, name: str) -> Domain:
        try:
            return self._domains[name]
        except KeyError:
            raise DomainStateError(f"no domain named {name!r}") from None

    def destroy_domain(self, name: str) -> None:
        domain = self.lookup(name)
        if domain.state == DomainState.RUNNING:
            domain.destroy()
        del self._domains[name]
        del self._mechanisms[name]
        self.cgroups.destroy(name)

    def list_domains(self) -> list[str]:
        return sorted(self._domains)

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    # -- deflation entry points -------------------------------------------------

    def mechanism(self, name: str) -> HybridMechanism:
        """The hybrid deflation mechanism bound to a domain."""
        self.lookup(name)
        return self._mechanisms[name]

    def set_allocation(self, name: str, target: ResourceVector):
        """Deflate/reinflate a domain to a target allocation (hybrid path)."""
        return self.mechanism(name).apply(target)

    # -- host accounting -----------------------------------------------------------

    def host_capacity(self) -> ResourceVector:
        return ResourceVector(cpu=self.ncpus, memory_mb=self.memory_mb,
                              disk_mbps=float("inf"), net_mbps=float("inf"))

    def total_effective_allocation(self) -> ResourceVector:
        """Sum of effective allocations of all running domains."""
        total_cpu = 0.0
        total_mem = 0.0
        for domain in self._domains.values():
            if domain.state == DomainState.RUNNING:
                total_cpu += domain.effective_cpu()
                total_mem += domain.effective_memory_mb()
        return ResourceVector(cpu=total_cpu, memory_mb=total_mem)

    def is_physically_feasible(self) -> bool:
        """True when effective allocations fit in physical capacity."""
        eff = self.total_effective_allocation()
        return eff.cpu <= self.ncpus + 1e-6 and eff.memory_mb <= self.memory_mb + 1e-6
