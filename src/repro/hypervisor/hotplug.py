"""Explicit (guest-visible) deflation via CPU/memory hot-unplug.

Section 4.3: hotplug commands travel through the QEMU guest agent into the
guest kernel, so the guest knows the change is deflation, not a hardware
failure, and can cooperate (rebalance threads, drop caches, return pages).
Explicit deflation is coarse-grained — whole vCPUs, whole memory blocks —
and bounded by a safety threshold below which the guest refuses to unplug.
NIC and disk unplug are unsafe, so those resources are always handled by the
transparent mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HotplugError
from repro.hypervisor.domain import Domain
from repro.hypervisor.guest import MEMORY_BLOCK_MB, MIN_ONLINE_VCPUS


@dataclass(frozen=True)
class HotplugOutcome:
    """Result of one hot(un)plug attempt.

    ``requested`` and ``achieved`` are in resource units (vCPUs or MB).  A
    shortfall is *not* an error — the paper lets unfinished unplugs return
    partially, with the transparent layer taking up the slack.
    """

    requested: float
    achieved: float

    @property
    def shortfall(self) -> float:
        return max(0.0, self.requested - self.achieved)

    @property
    def complete(self) -> bool:
        return self.shortfall <= 1e-9


class ExplicitMechanism:
    """QEMU-agent-style hotplug driver for one domain."""

    name = "explicit"

    def __init__(self, domain: Domain) -> None:
        self.domain = domain

    # -- thresholds -----------------------------------------------------------

    def cpu_unplug_threshold(self) -> int:
        """Minimum online vCPUs the guest will keep."""
        return MIN_ONLINE_VCPUS

    def memory_unplug_threshold_mb(self) -> float:
        """Guest-reported safety floor (its current RSS, block-aligned)."""
        guest = self.domain._require_running()
        return guest.memory_unplug_threshold_mb()

    # -- CPU -------------------------------------------------------------------

    def set_online_vcpus(self, target_vcpus: int) -> HotplugOutcome:
        """Unplug/plug vCPUs toward an integral target.

        Fractional targets are a caller bug: hotplug "can only be done in
        coarse-grained units — it is not possible to unplug 1.5 vCPUs".
        """
        if target_vcpus != int(target_vcpus):
            raise HotplugError("vCPU hotplug targets must be integral")
        target = int(target_vcpus)
        if target < 1:
            raise HotplugError("cannot unplug all vCPUs")
        guest = self.domain._require_running()
        target = min(target, self.domain.config.max_vcpus)
        current = guest.online_vcpus
        if target < current:
            removed = guest.offline_vcpus(current - target)
            return HotplugOutcome(requested=current - target, achieved=removed)
        if target > current:
            added = guest.online_vcpus_add(target - current)
            return HotplugOutcome(requested=target - current, achieved=added)
        return HotplugOutcome(requested=0, achieved=0)

    # -- memory ------------------------------------------------------------------

    def set_memory_mb(self, target_mb: float) -> HotplugOutcome:
        """Unplug/plug memory toward a target, block-granular, threshold-safe.

        The achieved amount may be lower than requested when the guest's RSS
        floor intervenes; callers combine with transparent limits (hybrid).
        """
        if target_mb <= 0:
            raise HotplugError("memory target must be > 0")
        guest = self.domain._require_running()
        target = min(target_mb, self.domain.config.max_memory_mb)
        current = guest.plugged_memory_mb
        if target < current:
            want = current - target
            got = guest.unplug_memory(want)
            return HotplugOutcome(requested=want, achieved=got)
        if target > current:
            want = target - current
            got = guest.plug_memory(want)
            return HotplugOutcome(requested=want, achieved=got)
        return HotplugOutcome(requested=0.0, achieved=0.0)

    # -- convenience ----------------------------------------------------------------

    def round_up_vcpus(self, cores: float) -> int:
        """Coarsen a fractional CPU target to the hotplug grid (Fig. 13
        ``round_up``)."""
        return max(MIN_ONLINE_VCPUS, math.ceil(cores - 1e-9))

    def round_up_memory_mb(self, memory_mb: float) -> float:
        """Coarsen a memory target up to a whole number of blocks."""
        blocks = math.ceil(max(memory_mb, MEMORY_BLOCK_MB) / MEMORY_BLOCK_MB - 1e-9)
        return blocks * MEMORY_BLOCK_MB
