"""Transparent (hypervisor-level) deflation via resource multiplexing.

Section 4.2: the hypervisor shrinks what the VM can *use* without telling the
guest — CPU bandwidth control, memory limits, blkio and network throttles on
the VM's cgroup.  The guest still sees all its vCPUs and memory; they are
just slower / partially swapped.  Transparent deflation is fine-grained
(fractional cores, arbitrary MB) and has no safety threshold, but carries a
higher performance penalty because the guest cannot adapt.
"""

from __future__ import annotations

from repro.core.resources import ResourceVector
from repro.errors import ResourceError
from repro.hypervisor.domain import Domain


class TransparentMechanism:
    """Drives cgroup knobs to deflate/reinflate one domain transparently."""

    name = "transparent"

    def __init__(self, domain: Domain) -> None:
        self.domain = domain

    # -- per-resource knobs ---------------------------------------------------

    def set_cpu_limit(self, cores: float) -> None:
        """Cap usable CPU via CFS quota; fractional values are allowed."""
        if cores <= 0:
            raise ResourceError("transparent CPU limit must be > 0")
        self.domain.cgroup.cpu.set_limit_cores(cores)

    def set_memory_limit(self, memory_mb: float) -> None:
        """Cap physical memory via memory.limit_in_bytes."""
        if memory_mb <= 0:
            raise ResourceError("transparent memory limit must be > 0")
        self.domain.cgroup.memory.set_limit_mb(memory_mb)

    def set_disk_limit(self, mbps: float) -> None:
        self.domain.cgroup.blkio.set_throttle(read_mbps=mbps, write_mbps=mbps)

    def set_net_limit(self, mbps: float) -> None:
        self.domain.cgroup.net.set_rate(mbps)

    # -- vector interface --------------------------------------------------------

    def apply(self, target: ResourceVector) -> ResourceVector:
        """Deflate the domain to the target allocation (all four resources).

        Returns the effective allocation after the operation.  Targets above
        the domain's configuration are clamped (reinflation cannot exceed the
        paid-for maximum).
        """
        cfg = self.domain.config
        self.set_cpu_limit(min(max(target.cpu, 1e-3), cfg.max_vcpus))
        self.set_memory_limit(min(max(target.memory_mb, 1.0), cfg.max_memory_mb))
        self.set_disk_limit(min(max(target.disk_mbps, 1e-3), cfg.disk_mbps))
        self.set_net_limit(min(max(target.net_mbps, 1e-3), cfg.net_mbps))
        return self.domain.effective_resources()

    def release(self) -> ResourceVector:
        """Lift all transparent limits (full reinflation of this layer)."""
        cfg = self.domain.config
        return self.apply(
            ResourceVector(
                cpu=cfg.max_vcpus,
                memory_mb=cfg.max_memory_mb,
                disk_mbps=cfg.disk_mbps,
                net_mbps=cfg.net_mbps,
            )
        )
