"""Hybrid deflation — the paper's Figure 13 pseudo-code:

.. code-block:: python

    def deflate_hybrid(target):
        hotplug_val = max(get_hp_threshold(), round_up(target))
        deflate_hotplug(hotplug_val)
        deflate_multiplexing(target)

Explicit (guest-cooperative) deflation runs first, down to whichever is
higher of the safety threshold and the coarse-grained rounding of the
target; the transparent layer then closes the remaining fine-grained gap.
If the hotplug under-delivers (the guest refused part of the unplug), the
multiplexing step still lands the VM exactly on the target — "the
multiplexing-based CPU deflation takes up the slack" — so the *effective*
allocation equals the policy's target regardless of guest cooperation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.resources import ResourceVector
from repro.hypervisor.domain import Domain
from repro.hypervisor.hotplug import ExplicitMechanism, HotplugOutcome
from repro.hypervisor.multiplex import TransparentMechanism


@dataclass(frozen=True)
class HybridReport:
    """What each layer contributed during one hybrid deflation."""

    cpu_hotplug: HotplugOutcome
    memory_hotplug: HotplugOutcome
    effective: ResourceVector


class HybridMechanism:
    """Combines explicit and transparent deflation for one domain."""

    name = "hybrid"

    def __init__(self, domain: Domain) -> None:
        self.domain = domain
        self.explicit = ExplicitMechanism(domain)
        self.transparent = TransparentMechanism(domain)

    def deflate_cpu(self, target_cores: float) -> HotplugOutcome:
        """Hybrid CPU deflation: unplug whole vCPUs, multiplex the fraction."""
        hotplug_val = max(
            self.explicit.cpu_unplug_threshold(),
            self.explicit.round_up_vcpus(target_cores),
        )
        outcome = self.explicit.set_online_vcpus(hotplug_val)
        self.transparent.set_cpu_limit(max(target_cores, 1e-3))
        return outcome

    def deflate_memory(self, target_mb: float) -> HotplugOutcome:
        """Hybrid memory deflation: unplug to max(RSS floor, rounded target),
        then clamp to the exact target with the cgroup limit."""
        hotplug_val = max(
            self.explicit.memory_unplug_threshold_mb(),
            self.explicit.round_up_memory_mb(target_mb),
        )
        outcome = self.explicit.set_memory_mb(hotplug_val)
        self.transparent.set_memory_limit(max(target_mb, 1.0))
        return outcome

    def apply(self, target: ResourceVector) -> HybridReport:
        """Deflate all four resources toward the target allocation.

        Disk and network are always transparent (explicit unplug of NICs and
        disks is unsafe, Section 4.3).
        """
        cfg = self.domain.config
        cpu = self.deflate_cpu(min(max(target.cpu, 1e-3), cfg.max_vcpus))
        mem = self.deflate_memory(min(max(target.memory_mb, 1.0), cfg.max_memory_mb))
        self.transparent.set_disk_limit(min(max(target.disk_mbps, 1e-3), cfg.disk_mbps))
        self.transparent.set_net_limit(min(max(target.net_mbps, 1e-3), cfg.net_mbps))
        return HybridReport(
            cpu_hotplug=cpu,
            memory_hotplug=mem,
            effective=self.domain.effective_resources(),
        )

    def reinflate(self) -> ResourceVector:
        """Return the domain to its full configuration on both layers."""
        cfg = self.domain.config
        self.explicit.set_online_vcpus(cfg.max_vcpus)
        self.explicit.set_memory_mb(cfg.max_memory_mb)
        return self.transparent.release()


MECHANISMS = {
    "transparent": TransparentMechanism,
    "explicit": ExplicitMechanism,
    "hybrid": HybridMechanism,
}
