"""Guest operating-system model.

Explicit deflation (Section 4.3) is guest-visible: CPU and memory hot-unplug
requests travel through the QEMU guest agent into the guest kernel, which
cooperates — rescheduling threads off offlined vCPUs, freeing page cache, and
returning memory blocks.  Crucially, the guest only honours an unplug when it
is *safe*: "if the guest kernel cannot safely unplug the requested amount of
memory, the hot unplug operation is allowed to return unfinished".

The model tracks the memory breakdown the paper's hybrid mechanism depends
on: resident set (RSS, incl. the application working set), page cache, and
free memory.  The hot-unplug safety threshold for memory is the current RSS
(Section 4.4: "we presume that it is safe to unplug as long as the VM has
more memory than the current RSS value"); the CPU threshold is one online
vCPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HotplugError, ResourceError

#: Memory hotplug granularity — Linux memory blocks are 128 MB on x86-64.
MEMORY_BLOCK_MB = 128

#: Minimum online vCPUs: cpu0 is not hot-removable on x86.
MIN_ONLINE_VCPUS = 1


@dataclass
class GuestMemoryProfile:
    """Workload-dependent memory behaviour inside the guest.

    Attributes
    ----------
    rss_mb:
        Resident set of all processes (heap, stacks, code).  For JVM-style
        services this includes over-allocated heap.
    working_set_mb:
        The genuinely hot subset of the RSS; touching less than this per
        interval stalls the application.  ``working_set_mb <= rss_mb``.
    page_cache_mb:
        Reclaimable file-backed cache ("modern OSes aggressively use
        unallocated RAM for caching and buffering", Section 3.2.2).
    """

    rss_mb: float
    working_set_mb: float
    page_cache_mb: float

    def __post_init__(self) -> None:
        if self.working_set_mb > self.rss_mb + 1e-9:
            raise ResourceError("working set cannot exceed RSS")
        if min(self.rss_mb, self.working_set_mb, self.page_cache_mb) < 0:
            raise ResourceError("memory profile components must be >= 0")


class GuestOS:
    """State machine for one guest kernel's view of its resources."""

    def __init__(
        self,
        total_vcpus: int,
        total_memory_mb: float,
        memory_profile: GuestMemoryProfile | None = None,
    ) -> None:
        if total_vcpus < MIN_ONLINE_VCPUS:
            raise ResourceError(f"guest needs >= {MIN_ONLINE_VCPUS} vCPU")
        if total_memory_mb < MEMORY_BLOCK_MB:
            raise ResourceError(f"guest needs >= {MEMORY_BLOCK_MB} MB")
        self.total_vcpus = int(total_vcpus)
        self.online_vcpus = int(total_vcpus)
        self.total_memory_mb = float(total_memory_mb)
        self.plugged_memory_mb = float(total_memory_mb)
        if memory_profile is None:
            # A conservative default: half the memory resident, a quarter hot,
            # a quarter in page cache.
            memory_profile = GuestMemoryProfile(
                rss_mb=total_memory_mb * 0.5,
                working_set_mb=total_memory_mb * 0.25,
                page_cache_mb=total_memory_mb * 0.25,
            )
        self.memory = memory_profile

    # -- CPU hotplug -----------------------------------------------------------

    def offline_vcpus(self, count: int) -> int:
        """Take up to ``count`` vCPUs offline; returns how many succeeded.

        The guest refuses to go below :data:`MIN_ONLINE_VCPUS`.  Partial
        success mirrors real guests under load.
        """
        if count < 0:
            raise HotplugError("cannot offline a negative number of vCPUs")
        removable = max(0, self.online_vcpus - MIN_ONLINE_VCPUS)
        done = min(count, removable)
        self.online_vcpus -= done
        return done

    def online_vcpus_add(self, count: int) -> int:
        """Bring vCPUs back online, bounded by the domain's total."""
        if count < 0:
            raise HotplugError("cannot online a negative number of vCPUs")
        addable = self.total_vcpus - self.online_vcpus
        done = min(count, addable)
        self.online_vcpus += done
        return done

    # -- memory hotplug ----------------------------------------------------------

    def memory_unplug_threshold_mb(self) -> float:
        """The safety floor for hot-unplug: current RSS, block-aligned up.

        Below this the guest would have to swap its own resident pages, so
        the kernel declines (Section 4.4 uses the RSS as the hotplug
        threshold)."""
        blocks = math.ceil(max(self.memory.rss_mb, MEMORY_BLOCK_MB) / MEMORY_BLOCK_MB)
        return blocks * MEMORY_BLOCK_MB

    def unplug_memory(self, amount_mb: float) -> float:
        """Offline up to ``amount_mb`` of memory; returns MB actually removed.

        Removal happens in whole memory blocks, never below the safety
        threshold.  The guest frees page cache as blocks disappear —
        explicit deflation "allows them to return unused pages, shrink
        caches" (Section 4.3).
        """
        if amount_mb < 0:
            raise HotplugError("cannot unplug a negative amount of memory")
        floor = self.memory_unplug_threshold_mb()
        removable = max(0.0, self.plugged_memory_mb - floor)
        granted = min(amount_mb, removable)
        blocks = math.floor(granted / MEMORY_BLOCK_MB)
        granted = blocks * MEMORY_BLOCK_MB
        if granted <= 0:
            return 0.0
        self.plugged_memory_mb -= granted
        self._shrink_caches()
        return granted

    def plug_memory(self, amount_mb: float) -> float:
        """Hot-add memory back (block-granular), bounded by the domain max."""
        if amount_mb < 0:
            raise HotplugError("cannot plug a negative amount of memory")
        addable = self.total_memory_mb - self.plugged_memory_mb
        granted = min(amount_mb, addable)
        blocks = math.floor(granted / MEMORY_BLOCK_MB)
        granted = blocks * MEMORY_BLOCK_MB
        self.plugged_memory_mb += granted
        return granted

    def _shrink_caches(self) -> None:
        """Drop page cache that no longer fits after an unplug."""
        available_for_cache = max(0.0, self.plugged_memory_mb - self.memory.rss_mb)
        if self.memory.page_cache_mb > available_for_cache:
            self.memory = GuestMemoryProfile(
                rss_mb=self.memory.rss_mb,
                working_set_mb=self.memory.working_set_mb,
                page_cache_mb=available_for_cache,
            )

    # -- workload-facing accounting ----------------------------------------------

    def touched_memory_mb(self) -> float:
        """Memory the guest actively uses: RSS plus whatever cache survives."""
        return min(
            self.plugged_memory_mb,
            self.memory.rss_mb + self.memory.page_cache_mb,
        )

    def set_memory_profile(self, profile: GuestMemoryProfile) -> None:
        """Update the workload's memory behaviour (e.g. load change)."""
        self.memory = profile
        self._shrink_caches()
