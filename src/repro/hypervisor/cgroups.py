"""Simulated Linux cgroup controllers.

The paper's transparent deflation mechanism (Section 4.2) runs each KVM VM
inside a cgroup and adjusts:

* CPU — CFS bandwidth control (``cpu.cfs_quota_us`` / ``cpu.cfs_period_us``)
  and ``cpu.shares``;
* memory — ``memory.limit_in_bytes`` (we track MB for readability);
* block I/O — ``blkio.throttle.{read,write}_bps_device``;
* network — a net-class rate limit (the paper uses libvirt's bandwidth API).

This module models the *control surface and its semantics*, not kernel
internals: limits clamp the effective resources a domain can use, and the
memory controller reports how much of the charged memory no longer fits under
the limit (i.e. what the kernel would push to swap) so application models can
charge a swap penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceError

#: Default CFS period in microseconds, as on stock Linux.
CFS_PERIOD_US = 100_000


@dataclass
class CpuController:
    """CFS bandwidth + shares for one cgroup."""

    ncpus_host: float
    shares: int = 1024
    quota_us: int = -1  # -1 = unlimited, like the kernel default
    period_us: int = CFS_PERIOD_US

    def set_limit_cores(self, cores: float) -> None:
        """Cap the cgroup at ``cores`` worth of CPU via quota/period."""
        if cores < 0:
            raise ResourceError(f"cpu limit must be >= 0, got {cores}")
        if cores >= self.ncpus_host:
            self.quota_us = -1
        else:
            self.quota_us = int(round(cores * self.period_us))

    def limit_cores(self) -> float:
        """The effective core cap (host core count when unlimited)."""
        if self.quota_us < 0:
            return self.ncpus_host
        return self.quota_us / self.period_us

    def set_shares(self, shares: int) -> None:
        if shares < 2:  # kernel minimum
            raise ResourceError(f"cpu.shares must be >= 2, got {shares}")
        self.shares = shares


@dataclass
class MemoryController:
    """memory.limit_in_bytes semantics, tracked in MB."""

    limit_mb: float = float("inf")
    usage_mb: float = 0.0

    def set_limit_mb(self, limit_mb: float) -> None:
        if limit_mb <= 0:
            raise ResourceError(f"memory limit must be > 0, got {limit_mb}")
        self.limit_mb = limit_mb

    def charge(self, usage_mb: float) -> float:
        """Record the guest's memory footprint; return MB pushed to swap.

        The kernel reclaims/charges pages against the limit; anything the
        workload touches beyond the limit is effectively swapped.
        """
        if usage_mb < 0:
            raise ResourceError("usage must be >= 0")
        self.usage_mb = usage_mb
        return max(0.0, usage_mb - self.limit_mb)

    @property
    def swapped_mb(self) -> float:
        return max(0.0, self.usage_mb - self.limit_mb)


@dataclass
class BlkioController:
    """blkio.throttle read/write byte-per-second caps, tracked in MB/s."""

    read_mbps: float = float("inf")
    write_mbps: float = float("inf")

    def set_throttle(self, read_mbps: float | None = None, write_mbps: float | None = None) -> None:
        if read_mbps is not None:
            if read_mbps <= 0:
                raise ResourceError("blkio read throttle must be > 0")
            self.read_mbps = read_mbps
        if write_mbps is not None:
            if write_mbps <= 0:
                raise ResourceError("blkio write throttle must be > 0")
            self.write_mbps = write_mbps

    def effective_mbps(self) -> float:
        """Combined bandwidth cap used by the single-dimension disk model."""
        return min(self.read_mbps, self.write_mbps)


@dataclass
class NetController:
    """Network rate limit (libvirt ``<bandwidth>`` / tc class), MB/s."""

    rate_mbps: float = float("inf")

    def set_rate(self, rate_mbps: float) -> None:
        if rate_mbps <= 0:
            raise ResourceError("net rate must be > 0")
        self.rate_mbps = rate_mbps


@dataclass
class CGroup:
    """One VM's cgroup: the four controllers the deflation system drives."""

    name: str
    cpu: CpuController
    memory: MemoryController = field(default_factory=MemoryController)
    blkio: BlkioController = field(default_factory=BlkioController)
    net: NetController = field(default_factory=NetController)


class CGroupManager:
    """Flat registry of per-VM cgroups on one host."""

    def __init__(self, ncpus_host: float) -> None:
        if ncpus_host <= 0:
            raise ResourceError("host must have > 0 CPUs")
        self.ncpus_host = float(ncpus_host)
        self._groups: dict[str, CGroup] = {}

    def create(self, name: str) -> CGroup:
        if name in self._groups:
            raise ResourceError(f"cgroup {name!r} already exists")
        group = CGroup(name=name, cpu=CpuController(ncpus_host=self.ncpus_host))
        self._groups[name] = group
        return group

    def get(self, name: str) -> CGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise ResourceError(f"no cgroup named {name!r}") from None

    def destroy(self, name: str) -> None:
        if name not in self._groups:
            raise ResourceError(f"no cgroup named {name!r}")
        del self._groups[name]

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def __len__(self) -> int:
        return len(self._groups)
