"""Pricing models for deflatable VMs (Section 5.2.2 of the paper).

Three schemes, all relative to the on-demand unit price:

* **static** — deflatable VMs pay a fixed discount (the paper uses 0.2x,
  "corresponding to the discounts offered by current transient cloud
  servers");
* **priority** — the price equals the priority level ("priority-level 0.5
  has price 0.5x the on-demand price");
* **allocation** — pay-for-what-you-get: the bill is proportional to the
  actual allocation over time ("VMs pay half price when at 50% allocation").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError, UnknownComponentError
from repro.registry import RegistryView, register, resolve

#: Discount multiplier for static pricing (Section 7.4.3).
STATIC_DISCOUNT = 0.2


class PricingModel(abc.ABC):
    """Computes revenue for one VM over one accounting interval."""

    name: str = "abstract"

    @abc.abstractmethod
    def rate(self, priority: float, allocation_fraction: float) -> float:
        """Price per (capacity-unit x time-unit), relative to on-demand = 1.

        ``allocation_fraction`` is current/capacity averaged over the
        interval, in [0, 1].
        """

    def revenue(
        self,
        capacity_units: float,
        duration: float,
        priority: float,
        allocation_fraction: float,
    ) -> float:
        """Revenue for a VM of the given size over a duration."""
        if capacity_units < 0 or duration < 0:
            raise ReproError("capacity and duration must be >= 0")
        if not (0.0 <= allocation_fraction <= 1.0 + 1e-9):
            raise ReproError(f"allocation fraction out of range: {allocation_fraction}")
        return capacity_units * duration * self.rate(priority, min(allocation_fraction, 1.0))

    def rate_batch(
        self, priorities: np.ndarray, allocation_fractions: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`rate` over a VM population.

        ``priorities`` and ``allocation_fractions`` are aligned float64
        arrays (one entry per VM, fractions already clamped to [0, 1]);
        the return value is the per-VM rate array.  The default delegates
        to the scalar method element by element, so downstream pricing
        plug-ins stay correct without extra work; the stock models
        override it with pure array expressions producing bit-identical
        rates (the cluster simulator's vectorized revenue accounting
        relies on that).  Override :meth:`revenue` instead if billing is
        not a pure per-unit rate (minimum increments, per-VM fees): the
        simulator detects the override and falls back to per-VM calls.
        """
        return np.array(
            [
                self.rate(float(p), float(a))
                for p, a in zip(priorities, allocation_fractions)
            ],
            dtype=np.float64,
        )


@register("pricing", "static")
class StaticPricing(PricingModel):
    """Fixed discount regardless of priority or deflation."""

    name = "static"

    def __init__(self, discount: float = STATIC_DISCOUNT) -> None:
        if not (0.0 < discount <= 1.0):
            raise ReproError("discount must be in (0, 1]")
        self.discount = discount

    def rate(self, priority: float, allocation_fraction: float) -> float:
        return self.discount

    def rate_batch(self, priorities, allocation_fractions):
        return np.full(len(priorities), self.discount)


@register("pricing", "priority")
class PriorityPricing(PricingModel):
    """Price equals the VM's priority level."""

    name = "priority"

    def rate(self, priority: float, allocation_fraction: float) -> float:
        if not (0.0 < priority <= 1.0):
            raise ReproError(f"priority must be in (0, 1], got {priority}")
        return priority

    def rate_batch(self, priorities, allocation_fractions):
        prios = np.asarray(priorities, dtype=np.float64)
        bad = (prios <= 0.0) | (prios > 1.0)
        if np.any(bad):
            raise ReproError(
                f"priority must be in (0, 1], got {float(prios[bad][0])}"
            )
        return prios.copy()


@register("pricing", "allocation")
class AllocationPricing(PricingModel):
    """Pay for actual allocation: deflated VMs are billed proportionally less.

    The base rate anchors the undeflated price; the paper prices linearly in
    the allocation, with the undeflated rate matching the static discount so
    the schemes coincide at zero overcommitment.
    """

    name = "allocation"

    def __init__(self, base_rate: float = STATIC_DISCOUNT) -> None:
        if base_rate <= 0:
            raise ReproError("base rate must be > 0")
        self.base_rate = base_rate

    def rate(self, priority: float, allocation_fraction: float) -> float:
        return self.base_rate * allocation_fraction

    def rate_batch(self, priorities, allocation_fractions):
        return self.base_rate * np.asarray(allocation_fractions, dtype=np.float64)


@dataclass(frozen=True)
class RevenueBreakdown:
    """Aggregate revenue report for one simulation run."""

    total: float
    by_vm: dict

    def per_capacity_unit(self, capacity_units: float) -> float:
        if capacity_units <= 0:
            raise ReproError("capacity must be > 0")
        return self.total / capacity_units


#: Legacy view over the unified registry (kind ``pricing``).  The cluster
#: simulator reports revenue for every model registered here, so plugging a
#: new pricing scheme in makes it show up in Figure 22-style sweeps.
PRICING_MODELS: RegistryView = RegistryView("pricing")


def get_pricing(name: str) -> PricingModel:
    try:
        return resolve("pricing", name)
    except UnknownComponentError as exc:
        raise ReproError(str(exc)) from None
