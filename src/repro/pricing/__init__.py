"""Pricing models for deflatable VMs: static, priority, allocation-based."""

from repro.pricing.models import (
    PRICING_MODELS,
    STATIC_DISCOUNT,
    AllocationPricing,
    PricingModel,
    PriorityPricing,
    RevenueBreakdown,
    StaticPricing,
    get_pricing,
)

__all__ = [
    "PRICING_MODELS",
    "STATIC_DISCOUNT",
    "AllocationPricing",
    "PricingModel",
    "PriorityPricing",
    "RevenueBreakdown",
    "StaticPricing",
    "get_pricing",
]
