"""Social-network microservice application harness (Figure 18).

Wraps :class:`repro.microsim.SocialNetworkApp` into the paper's experiment:
500 req/s, 22 of 30 microservices deflated by 0/30/50/60/65%, reporting
median, 90th and 99th percentile response times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.feasibility.stats import percentile_summary
from repro.microsim.app import SocialNetworkApp

#: The paper's Figure 18 x-axis.
FIG18_DEFLATION_PCT: tuple[int, ...] = (0, 30, 50, 60, 65)


@dataclass(frozen=True)
class SocialNetPoint:
    deflation_pct: float
    median_ms: float
    p90_ms: float
    p99_ms: float
    served_fraction: float
    bottleneck_rho: float


def run_socialnet_point(
    deflation_pct: float,
    rate_per_s: float = 500.0,
    duration_s: float = 20.0,
    seed: int = 0,
) -> SocialNetPoint:
    """One Figure 18 bar group: latency percentiles at one deflation level."""
    app = SocialNetworkApp(seed=seed)
    result = app.simulate(
        rate_per_s=rate_per_s,
        duration_s=duration_s,
        deflation=deflation_pct / 100.0,
        seed=seed,
    )
    pct = (
        percentile_summary(result.response_times, (50, 90, 99))
        if result.response_times.size
        else {50: float("nan"), 90: float("nan"), 99: float("nan")}
    )
    return SocialNetPoint(
        deflation_pct=deflation_pct,
        median_ms=1000 * pct[50],
        p90_ms=1000 * pct[90],
        p99_ms=1000 * pct[99],
        served_fraction=result.served_fraction,
        bottleneck_rho=app.bottleneck_utilization(rate_per_s, deflation_pct / 100.0),
    )


def run_socialnet_sweep(
    levels_pct: tuple[int, ...] = FIG18_DEFLATION_PCT,
    rate_per_s: float = 500.0,
    duration_s: float = 20.0,
    seed: int = 0,
) -> list[SocialNetPoint]:
    return [
        run_socialnet_point(pct, rate_per_s=rate_per_s, duration_s=duration_s, seed=seed)
        for pct in levels_pct
    ]
