"""Kernel-compile (``make -j``) under CPU deflation.

Figure 3's middle curve: a parallel build is CPU-bound with near-linear
scaling, so deflation translates almost directly into longer makespans once
the small scheduling slack is gone.  We model the build as a DAG of
compilation units executed under work-stealing: Brent's bound gives the
makespan ``T(c) ~= W/c + S`` for total work ``W`` and critical-path span
``S`` on ``c`` cores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class KcompileConfig:
    """A kernel-build-shaped workload."""

    n_objects: int = 2500
    mean_compile_s: float = 1.2
    #: Serial span: configure steps, final link, etc.
    span_s: float = 45.0
    cores: int = 16
    seed: int = 17

    def work_seconds(self, rng: np.random.Generator) -> np.ndarray:
        """Per-object compile times (lognormal: a few giant TUs)."""
        sigma = 0.8
        mu = np.log(self.mean_compile_s) - sigma**2 / 2
        return rng.lognormal(mu, sigma, size=self.n_objects)


def makespan(total_work_s: float, span_s: float, cores: float) -> float:
    """Brent's theorem bound for greedy scheduling on ``cores`` workers."""
    if cores <= 0:
        raise SimulationError("cores must be > 0")
    return total_work_s / cores + span_s


def kcompile_throughput(deflation: float, cfg: KcompileConfig | None = None) -> float:
    """Normalized build throughput (inverse makespan) at a deflation level."""
    if not (0.0 <= deflation < 1.0):
        raise SimulationError("deflation must be in [0, 1)")
    cfg = cfg if cfg is not None else KcompileConfig()
    rng = np.random.default_rng(cfg.seed)
    work = float(cfg.work_seconds(rng).sum())
    t_full = makespan(work, cfg.span_s, cfg.cores)
    t_defl = makespan(work, cfg.span_s, max(cfg.cores * (1.0 - deflation), 1e-3))
    return t_full / t_defl


def kcompile_curve(
    deflations: np.ndarray, cfg: KcompileConfig | None = None
) -> np.ndarray:
    return np.array([kcompile_throughput(float(d), cfg) for d in np.asarray(deflations)])
