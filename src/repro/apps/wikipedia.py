"""Multi-tier Wikipedia replica under CPU deflation (Figures 16 & 17).

The paper's setup: the German Wikipedia (MediaWiki + MySQL + Apache +
Memcached) on a 30-core, 16 GB VM, under a mean load of 800 req/s drawn from
the 500 largest pages (0.5–2.2 MB), 15 s request timeout, CPU progressively
deflated from 0 to 97% (30 cores down to 1).

Model: each request costs a CPU demand served by the deflated
processor-sharing VM, plus a *base latency* component (database waits and
the transfer of multi-megabyte pages) that does not consume the VM's CPU.
The base latency is a two-mode mixture — most pages are fast, a small
fraction hits slow paths — giving the heavy-tailed undeflated distribution
the paper reports (mean 0.3 s, p99 6.8 s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.feasibility.stats import percentile_summary
from repro.queueing.ps_server import PSServer
from repro.traces.workload_gen import RequestTrace, make_request_trace

#: Paper's deflation sweep for Figure 16 (in percent).
FIG16_DEFLATION_PCT: tuple[int, ...] = (0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 97)


@dataclass(frozen=True)
class WikipediaConfig:
    """Testbed parameters from Section 7.2, plus calibrated service costs."""

    total_cores: int = 30
    request_rate: float = 800.0
    timeout_s: float = 15.0
    #: Mean CPU demand per request.  Calibrated so the VM saturates between
    #: 70% and 90% CPU deflation, where the paper first sees request loss.
    mean_cpu_demand_s: float = 0.0073
    cpu_demand_cv: float = 1.2
    #: Fast-path base latency (lognormal): page render + transfer.
    fast_median_s: float = 0.15
    fast_sigma: float = 0.45
    #: Slow-path base latency: cache-miss + DB-contention requests.
    slow_median_s: float = 4.5
    slow_sigma: float = 0.6
    slow_fraction: float = 0.03
    duration_s: float = 30.0

    def cores_at(self, deflation_pct: float) -> float:
        """Deflated core count (the paper's secondary x-axis on Fig 16)."""
        if not (0 <= deflation_pct < 100):
            raise SimulationError("deflation percent must be in [0, 100)")
        return max(1.0, self.total_cores * (1.0 - deflation_pct / 100.0))


@dataclass(frozen=True)
class WikipediaPoint:
    """One deflation level's outcome."""

    deflation_pct: float
    cores: float
    mean_rt: float
    percentiles: dict[int, float]
    served_fraction: float
    cpu_utilization: float
    response_times: np.ndarray


def _base_latencies(cfg: WikipediaConfig, n: int, rng: np.random.Generator) -> np.ndarray:
    """Two-mode lognormal mixture of non-CPU response components."""
    slow = rng.random(n) < cfg.slow_fraction
    lat = rng.lognormal(np.log(cfg.fast_median_s), cfg.fast_sigma, size=n)
    n_slow = int(slow.sum())
    if n_slow:
        lat[slow] = rng.lognormal(np.log(cfg.slow_median_s), cfg.slow_sigma, size=n_slow)
    return lat


def run_deflation_point(
    cfg: WikipediaConfig, deflation_pct: float, seed: int = 0
) -> WikipediaPoint:
    """Simulate the Wikipedia VM at one CPU-deflation level."""
    workload: RequestTrace = make_request_trace(
        rate_per_s=cfg.request_rate,
        duration_s=cfg.duration_s,
        mean_service_s=cfg.mean_cpu_demand_s,
        cv=cfg.cpu_demand_cv,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    base = _base_latencies(cfg, workload.n_requests, rng)
    cores = cfg.cores_at(deflation_pct)
    server = PSServer(cores=cores)
    result = server.simulate(workload, timeout_s=cfg.timeout_s, extra_latency=base)
    # Normalize CPU utilization over the offered window, not the drain-out
    # tail (requests keep completing for up to timeout_s past the last
    # arrival, which would dilute the denominator).
    busy = result.station_busy_time.get(PSServer.STATION, 0.0)
    util = busy / (cores * cfg.duration_s) if cfg.duration_s > 0 else 0.0
    return WikipediaPoint(
        deflation_pct=deflation_pct,
        cores=cores,
        mean_rt=result.mean_response,
        percentiles=(
            percentile_summary(result.response_times, (50, 90, 99))
            if result.response_times.size
            else {50: float("nan"), 90: float("nan"), 99: float("nan")}
        ),
        served_fraction=result.served_fraction,
        cpu_utilization=util,
        response_times=result.response_times,
    )


def run_deflation_sweep(
    cfg: WikipediaConfig | None = None,
    levels_pct: tuple[int, ...] = FIG16_DEFLATION_PCT,
    seed: int = 0,
) -> list[WikipediaPoint]:
    """The full Figure 16/17 sweep: one point per deflation level."""
    cfg = cfg if cfg is not None else WikipediaConfig()
    return [run_deflation_point(cfg, pct, seed=seed) for pct in levels_pct]
