"""Application harnesses: Wikipedia, social network, SpecJBB, Memcached,
kernel compile."""

from repro.apps.kcompile import KcompileConfig, kcompile_curve, kcompile_throughput, makespan
from repro.apps.memcached import (
    MemcachedConfig,
    che_hit_rate,
    memcached_curve,
    memcached_throughput,
    zipf_weights,
)
from repro.apps.socialnet import (
    FIG18_DEFLATION_PCT,
    SocialNetPoint,
    run_socialnet_point,
    run_socialnet_sweep,
)
from repro.apps.specjbb import (
    FIG14_DEFLATION_PCT,
    SpecJBBConfig,
    SpecJBBPoint,
    run_specjbb_point,
    run_specjbb_sweep,
)
from repro.apps.wikipedia import (
    FIG16_DEFLATION_PCT,
    WikipediaConfig,
    WikipediaPoint,
    run_deflation_point,
    run_deflation_sweep,
)

__all__ = [
    "KcompileConfig",
    "kcompile_curve",
    "kcompile_throughput",
    "makespan",
    "MemcachedConfig",
    "che_hit_rate",
    "memcached_curve",
    "memcached_throughput",
    "zipf_weights",
    "FIG18_DEFLATION_PCT",
    "SocialNetPoint",
    "run_socialnet_point",
    "run_socialnet_sweep",
    "FIG14_DEFLATION_PCT",
    "SpecJBBConfig",
    "SpecJBBPoint",
    "run_specjbb_point",
    "run_specjbb_sweep",
    "FIG16_DEFLATION_PCT",
    "WikipediaConfig",
    "WikipediaPoint",
    "run_deflation_point",
    "run_deflation_sweep",
]
