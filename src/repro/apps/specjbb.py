"""SpecJBB 2015 memory-deflation study: transparent vs. hybrid (Figure 14).

The paper deflates a SpecJBB VM's *memory* with the two mechanisms and
reports normalized mean response time: both stay flat to ~40% deflation,
hybrid improves performance by about 10%, and transparent degrades sharply
past the point where the cgroup limit cuts into the resident set.

The model drives the actual simulated hypervisor
(:mod:`repro.hypervisor`): a 16 GB VM with a JVM-style guest profile (large
committed heap, sizeable page cache).  Response time is charged for
hypervisor-level swapping — memory the guest still touches that no longer
fits under the cgroup limit:

* **transparent** — the guest is unaware, keeps touching heap + cache;
  swapping begins as soon as the limit dips below the touched set, and
  becomes severe below the RSS;
* **hybrid** — hot-unplug first lets the guest drop its page cache and
  (being pressure-aware) GC/compact its heap, shrinking the touched set, so
  the same target produces far less swapping.  The guest-cooperative
  reclamation also *improves* performance ~10% (the paper's observation;
  unplugged idle memory no longer needs GC scanning or host management).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.resources import ResourceVector
from repro.errors import SimulationError
from repro.hypervisor.guest import GuestMemoryProfile
from repro.hypervisor.hybrid import HybridMechanism
from repro.hypervisor.libvirt_api import HypervisorConnection
from repro.hypervisor.multiplex import TransparentMechanism

#: The paper's Figure 14 x-axis (memory deflation %).
FIG14_DEFLATION_PCT: tuple[int, ...] = (0, 5, 10, 15, 20, 25, 30, 35, 40, 45)


@dataclass(frozen=True)
class SpecJBBConfig:
    """VM and workload parameters for the SpecJBB memory study."""

    total_memory_mb: float = 16 * 1024
    vcpus: int = 8
    #: JVM resident set (committed heap + runtime), ~62% of RAM.
    rss_mb: float = 10 * 1024
    #: Genuinely hot working set within the RSS.
    working_set_mb: float = 6 * 1024
    #: File-backed page cache the OS accumulated.
    page_cache_mb: float = 4 * 1024
    #: Response-time penalty per GB of hypervisor-swapped hot memory.
    swap_penalty_per_gb: float = 0.5
    #: Mild penalty per GB of swapped *cold* memory (cache / idle heap).
    cold_penalty_per_gb: float = 0.03
    #: Multiplicative speedup when the guest cooperatively reclaims
    #: (Figure 14 shows hybrid ~10% faster than the undeflated baseline).
    hybrid_benefit: float = 0.90
    #: Fraction of RSS the pressure-aware guest can compact away (GC).
    gc_compaction: float = 0.08


@dataclass(frozen=True)
class SpecJBBPoint:
    deflation_pct: float
    mechanism: str
    normalized_rt: float
    swapped_mb: float
    hotplugged_out_mb: float


def _fresh_domain(cfg: SpecJBBConfig, hv_name: str) -> tuple[HypervisorConnection, str]:
    hv = HypervisorConnection(ncpus=cfg.vcpus, memory_mb=cfg.total_memory_mb, hostname=hv_name)
    profile = GuestMemoryProfile(
        rss_mb=cfg.rss_mb,
        working_set_mb=cfg.working_set_mb,
        page_cache_mb=cfg.page_cache_mb,
    )
    hv.create_domain(
        "specjbb",
        ResourceVector(
            cpu=cfg.vcpus, memory_mb=cfg.total_memory_mb, disk_mbps=500, net_mbps=1000
        ),
        memory_profile=profile,
    )
    return hv, "specjbb"


def run_specjbb_point(
    cfg: SpecJBBConfig, deflation_pct: float, mechanism: str
) -> SpecJBBPoint:
    """Deflate SpecJBB's memory with one mechanism; return normalized RT."""
    if mechanism not in ("transparent", "hybrid"):
        raise SimulationError(f"mechanism must be transparent|hybrid, got {mechanism}")
    target_mb = cfg.total_memory_mb * (1.0 - deflation_pct / 100.0)
    hv, name = _fresh_domain(cfg, f"specjbb-{mechanism}-{deflation_pct}")
    domain = hv.lookup(name)
    guest = domain.guest
    assert guest is not None

    hotplugged_out = 0.0
    if mechanism == "transparent":
        TransparentMechanism(domain).set_memory_limit(max(target_mb, 1.0))
    else:
        mech = HybridMechanism(domain)
        outcome = mech.deflate_memory(max(target_mb, 1.0))
        hotplugged_out = outcome.achieved
        if hotplugged_out > 0 or target_mb < guest.plugged_memory_mb:
            # Pressure-aware guest: GC compacts the heap, shrinking the RSS.
            compacted = cfg.rss_mb * (1.0 - cfg.gc_compaction)
            guest.set_memory_profile(
                GuestMemoryProfile(
                    rss_mb=compacted,
                    working_set_mb=min(cfg.working_set_mb, compacted),
                    page_cache_mb=guest.memory.page_cache_mb,
                )
            )

    swapped = domain.swapped_memory_mb()
    # Split the swapped amount into hot (inside the RSS — the JVM's GC will
    # fault these back every cycle) and cold (page cache / idle) portions.
    limit = domain.cgroup.memory.limit_mb
    rss_now = guest.memory.rss_mb
    hot_swapped = max(0.0, min(swapped, rss_now - limit))
    cold_swapped = max(0.0, swapped - hot_swapped)

    rt = 1.0
    if mechanism == "hybrid" and (hotplugged_out > 0 or deflation_pct > 0):
        rt = cfg.hybrid_benefit
    rt *= 1.0 + cfg.swap_penalty_per_gb * hot_swapped / 1024.0
    rt *= 1.0 + cfg.cold_penalty_per_gb * cold_swapped / 1024.0

    return SpecJBBPoint(
        deflation_pct=deflation_pct,
        mechanism=mechanism,
        normalized_rt=rt,
        swapped_mb=swapped,
        hotplugged_out_mb=hotplugged_out,
    )


def run_specjbb_sweep(
    cfg: SpecJBBConfig | None = None,
    levels_pct: tuple[int, ...] = FIG14_DEFLATION_PCT,
) -> dict[str, list[SpecJBBPoint]]:
    """Figure 14: normalized mean RT per mechanism per deflation level."""
    cfg = cfg if cfg is not None else SpecJBBConfig()
    return {
        mech: [run_specjbb_point(cfg, pct, mech) for pct in levels_pct]
        for mech in ("transparent", "hybrid")
    }
