"""Memcached under deflation: an LRU-cache model with Zipfian keys.

Figure 3 shows Memcached as the most deflation-resilient of the three
benchmark applications: large slack, sub-linear degradation.  The mechanism
is simple — memory deflation shrinks the cache, but Zipfian popularity means
the marginal hit-rate loss per evicted megabyte is small until the hot set
is threatened.

The model computes the hit rate of an LRU cache of a given size under a
Zipf(alpha) key-popularity distribution (LRU under IRM approximated by
Che's approximation) and converts hit-rate loss plus CPU slowdown into a
normalized-throughput curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.errors import SimulationError


@dataclass(frozen=True)
class MemcachedConfig:
    n_keys: int = 200_000
    zipf_alpha: float = 0.9
    #: Cache capacity in objects when undeflated.
    capacity_objects: int = 50_000
    #: Cost ratio of a miss (backend fetch) to a hit.
    miss_cost_ratio: float = 12.0


def zipf_weights(n_keys: int, alpha: float) -> np.ndarray:
    """Normalized Zipf popularity over ``n_keys`` ranked keys."""
    if n_keys < 1:
        raise SimulationError("need >= 1 key")
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


def che_hit_rate(weights: np.ndarray, capacity: float) -> float:
    """LRU hit rate via Che's approximation.

    Solves ``sum_i (1 - exp(-w_i * tc)) = capacity`` for the characteristic
    time ``tc``; the hit rate is then ``sum_i w_i (1 - exp(-w_i * tc))``.
    """
    if capacity <= 0:
        return 0.0
    if capacity >= weights.size:
        return 1.0

    def occupancy(tc: float) -> float:
        return float(np.sum(1.0 - np.exp(-weights * tc)) - capacity)

    # tc grows with capacity; bracket generously.
    hi = 1.0
    while occupancy(hi) < 0:
        hi *= 4.0
        if hi > 1e18:
            return 1.0
    tc = brentq(occupancy, 0.0, hi, xtol=1e-9, rtol=1e-12)
    return float(np.sum(weights * (1.0 - np.exp(-weights * tc))))


def memcached_throughput(deflation: float, cfg: MemcachedConfig | None = None) -> float:
    """Normalized throughput at a uniform deflation fraction.

    Memory deflation shrinks the cache (fewer objects fit); CPU deflation
    slows request processing.  Throughput is normalized to the undeflated
    configuration.
    """
    if not (0.0 <= deflation < 1.0):
        raise SimulationError("deflation must be in [0, 1)")
    cfg = cfg if cfg is not None else MemcachedConfig()
    weights = zipf_weights(cfg.n_keys, cfg.zipf_alpha)

    cap0 = cfg.capacity_objects
    capd = cfg.capacity_objects * (1.0 - deflation)
    h0 = che_hit_rate(weights, cap0)
    hd = che_hit_rate(weights, capd)

    # Mean request cost in hit-units: hits cost 1, misses cost the ratio.
    cost0 = h0 + (1.0 - h0) * cfg.miss_cost_ratio
    costd = hd + (1.0 - hd) * cfg.miss_cost_ratio

    # Memcached is famously CPU-light; its throughput tracks available CPU
    # only once deflation digs into the small share it actually uses (the
    # "slack" region of Figure 3).  cpu_need is that busy fraction.
    cpu_need = 0.35
    cpu_factor = min(1.0, (1.0 - deflation) / cpu_need)

    return (cost0 / costd) * cpu_factor


def memcached_curve(
    deflations: np.ndarray, cfg: MemcachedConfig | None = None
) -> np.ndarray:
    """Vectorized throughput curve for Figure 3-style plots."""
    return np.array([memcached_throughput(float(d), cfg) for d in np.asarray(deflations)])
