"""Cluster management: servers, centralized manager, three-step placement."""

from repro.cluster.manager import (
    ClusterManager,
    ClusterStats,
    PlacementDecision,
    make_uniform_cluster,
)
from repro.cluster.server import Server

__all__ = [
    "ClusterManager",
    "ClusterStats",
    "PlacementDecision",
    "make_uniform_cluster",
    "Server",
]
