"""Centralized cluster manager: the paper's three-step VM placement.

Section 6: "New VMs are placed on servers using a three-step approach.
First, the centralized cluster manager finds the 'best' server for the VM
based on the VM size and utilizations of all servers.  The second step
involves the server computing the deflation required to accommodate the new
VM.  If this violates any resource constraint, then the server rejects the
VM.  Finally, the actual deflation is performed and the VM is launched."

The manager walks the placement strategy's ranked server list so a rejection
in step 2 falls through to the next-best server; if every candidate rejects,
the VM is refused at admission control (the partitioned-cluster downside the
paper calls out in Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.server import Server
from repro.core.placement import (
    CosineBestFit,
    PlacementStrategy,
    filter_partition,
    partition_for_priority,
)
from repro.core.vm import VMAllocation, VMSpec
from repro.errors import AdmissionRejected, PlacementError


@dataclass
class PlacementDecision:
    vm_id: str
    server_id: str
    allocation: VMAllocation
    candidates_tried: int


@dataclass
class ClusterStats:
    n_servers: int
    n_vms: int
    committed_cpu: float
    capacity_cpu: float
    admissions: int
    rejections: int

    @property
    def overcommitment(self) -> float:
        """Committed/capacity - 1 (0 = exactly full, negative = headroom)."""
        if self.capacity_cpu <= 0:
            return 0.0
        return self.committed_cpu / self.capacity_cpu - 1.0


class ClusterManager:
    """Owns the global placement state of a deflation-enabled cluster."""

    def __init__(
        self,
        servers: list[Server],
        strategy: PlacementStrategy | None = None,
        partitioned: bool = False,
    ) -> None:
        if not servers:
            raise PlacementError("cluster needs at least one server")
        ids = [s.server_id for s in servers]
        if len(set(ids)) != len(ids):
            raise PlacementError("duplicate server ids")
        self.servers: dict[str, Server] = {s.server_id: s for s in servers}
        self.strategy = strategy if strategy is not None else CosineBestFit()
        self.partitioned = partitioned
        self._vm_to_server: dict[str, str] = {}
        self._admissions = 0
        self._rejections = 0

    # -- placement --------------------------------------------------------------

    def request_vm(self, spec: VMSpec) -> PlacementDecision:
        """Admit a VM via three-step placement, or raise AdmissionRejected."""
        snapshots = [s.snapshot() for s in self.servers.values()]
        if self.partitioned and spec.deflatable:
            label = partition_for_priority(spec.priority)
            snapshots = filter_partition(snapshots, label)
        elif self.partitioned:
            snapshots = filter_partition(snapshots, "on-demand")
        if not snapshots:
            self._rejections += 1
            raise AdmissionRejected(f"no servers in partition for {spec.vm_id}")

        # Step 1: centralized ranking by fitness.  Deflatable VMs may start
        # deflated, so feasibility is judged against their minimum demand.
        min_demand = spec.min_allocation if spec.deflatable else spec.capacity
        try:
            ranked = self.strategy.rank(spec.capacity, snapshots, min_demand=min_demand)
        except PlacementError:
            self._rejections += 1
            raise AdmissionRejected(f"no server can host {spec.vm_id}") from None

        # Steps 2-3: first server that passes its local check launches the VM.
        for tried, snap in enumerate(ranked, start=1):
            server = self.servers[snap.server_id]
            if not server.can_accommodate(spec):
                continue
            alloc = server.launch(spec)
            self._vm_to_server[spec.vm_id] = server.server_id
            self._admissions += 1
            return PlacementDecision(
                vm_id=spec.vm_id,
                server_id=server.server_id,
                allocation=alloc,
                candidates_tried=tried,
            )
        self._rejections += 1
        raise AdmissionRejected(f"all candidate servers rejected {spec.vm_id}")

    def terminate_vm(self, vm_id: str) -> None:
        """Remove a VM; its server reinflates the survivors."""
        try:
            server_id = self._vm_to_server.pop(vm_id)
        except KeyError:
            raise PlacementError(f"unknown VM {vm_id}") from None
        self.servers[server_id].terminate(vm_id)

    def locate(self, vm_id: str) -> str:
        try:
            return self._vm_to_server[vm_id]
        except KeyError:
            raise PlacementError(f"unknown VM {vm_id}") from None

    # -- reporting ---------------------------------------------------------------

    def stats(self) -> ClusterStats:
        committed = sum(s.controller.committed().cpu for s in self.servers.values())
        capacity = sum(s.capacity.cpu for s in self.servers.values())
        return ClusterStats(
            n_servers=len(self.servers),
            n_vms=len(self._vm_to_server),
            committed_cpu=committed,
            capacity_cpu=capacity,
            admissions=self._admissions,
            rejections=self._rejections,
        )

    def verify_invariants(self) -> None:
        for server in self.servers.values():
            server.controller.verify_invariants()


def make_uniform_cluster(
    n_servers: int,
    capacity,
    policy=None,
    partitioned: bool = False,
    partition_labels: list[str] | None = None,
    with_hypervisor: bool = False,
) -> ClusterManager:
    """Build a homogeneous cluster (the paper's 48-core/128 GB servers)."""
    if n_servers < 1:
        raise PlacementError("need >= 1 server")
    servers = []
    for i in range(n_servers):
        label = None
        if partition_labels is not None:
            label = partition_labels[i % len(partition_labels)]
        servers.append(
            Server(
                server_id=f"server-{i}",
                capacity=capacity,
                policy=policy,
                partition=label,
                with_hypervisor=with_hypervisor,
            )
        )
    return ClusterManager(servers, partitioned=partitioned)
