"""A physical server: capacity + local deflation controller (+ hypervisor).

Combines the pieces of Figure 1's per-server stack: the local deflation
controller decides *how much* each resident VM gets (Section 5 policies) and
the hypervisor mechanisms (Section 4) enact those allocations on domains.
The hypervisor binding is optional — the trace-driven simulator uses bare
controllers for speed, while the integration tests and examples run the full
stack.
"""

from __future__ import annotations

from repro.core.controller import DeflationEvent, LocalDeflationController
from repro.core.deflation import DeflationPolicy
from repro.core.placement import ServerSnapshot
from repro.core.resources import ResourceVector
from repro.core.vm import VMAllocation, VMSpec
from repro.errors import PlacementError
from repro.hypervisor.libvirt_api import HypervisorConnection


class Server:
    """One cluster node hosting VMs under a deflation policy."""

    def __init__(
        self,
        server_id: str,
        capacity: ResourceVector,
        policy: DeflationPolicy | None = None,
        partition: str | None = None,
        with_hypervisor: bool = False,
    ) -> None:
        self.server_id = server_id
        self.capacity = capacity
        self.partition = partition
        self.controller = LocalDeflationController(
            capacity=capacity, policy=policy, server_id=server_id
        )
        self.hypervisor: HypervisorConnection | None = None
        if with_hypervisor:
            self.hypervisor = HypervisorConnection(
                ncpus=capacity.cpu, memory_mb=capacity.memory_mb, hostname=server_id
            )
            self.controller.subscribe(self._apply_to_hypervisor)

    # -- hypervisor wiring -------------------------------------------------------

    def _apply_to_hypervisor(self, event: DeflationEvent) -> None:
        """Enact a controller decision through the (simulated) libvirt API."""
        assert self.hypervisor is not None
        if event.vm_id in self.hypervisor:
            self.hypervisor.set_allocation(event.vm_id, event.new_allocation)

    # -- placement protocol (steps 2 and 3 of Section 6) ---------------------------

    def can_accommodate(self, spec: VMSpec) -> bool:
        """Step 2: local constraint check, possibly requiring deflation."""
        return self.controller.can_accommodate(spec)

    def launch(self, spec: VMSpec) -> VMAllocation:
        """Step 3: perform the deflation and launch the VM."""
        alloc = self.controller.place(spec)
        if self.hypervisor is not None:
            domain = self.hypervisor.create_domain(spec.vm_id, spec.capacity)
            del domain  # effective allocation is driven via events below
            self.hypervisor.set_allocation(spec.vm_id, alloc.current)
        return alloc

    def terminate(self, vm_id: str) -> VMAllocation:
        alloc = self.controller.remove(vm_id)
        if self.hypervisor is not None and vm_id in self.hypervisor:
            self.hypervisor.destroy_domain(vm_id)
        return alloc

    def hosts(self, vm_id: str) -> bool:
        return vm_id in self.controller.vms

    # -- reporting -------------------------------------------------------------------

    def snapshot(self) -> ServerSnapshot:
        """State summary for the centralized placement step."""
        return ServerSnapshot(
            server_id=self.server_id,
            capacity=self.capacity,
            used=self.controller.used(),
            deflatable=self.controller.deflatable_headroom(),
            overcommitment=self.controller.overcommitment(),
            partition=self.partition,
        )

    def utilization(self) -> float:
        """Committed CPU as a fraction of capacity (can exceed 1)."""
        if self.capacity.cpu <= 0:
            raise PlacementError("server has no CPU capacity")
        return self.controller.committed().cpu / self.capacity.cpu

    def __repr__(self) -> str:
        n = len(self.controller.vms)
        return f"Server({self.server_id!r}, vms={n}, util={self.utilization():.2f})"
