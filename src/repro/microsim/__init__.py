"""Microservice application simulation (DeathStarBench social network)."""

from repro.microsim.app import (
    MAX_CORES_PER_SERVICE,
    MEAN_DEMANDS,
    MIN_CORES_PER_SERVICE,
    REQUEST_MIX,
    SocialNetworkApp,
)
from repro.microsim.graph import (
    SOCIAL_NETWORK_EDGES,
    SOCIAL_NETWORK_SERVICES,
    ServiceTier,
    deflatable_services,
    services_by_tier,
    social_network_graph,
)

__all__ = [
    "MAX_CORES_PER_SERVICE",
    "MEAN_DEMANDS",
    "MIN_CORES_PER_SERVICE",
    "REQUEST_MIX",
    "SocialNetworkApp",
    "SOCIAL_NETWORK_EDGES",
    "SOCIAL_NETWORK_SERVICES",
    "ServiceTier",
    "deflatable_services",
    "services_by_tier",
    "social_network_graph",
]
