"""DeathStarBench-style social-network service topology (paper Figure 15).

The application has 30 microservices in three logical classes, matching the
paper's description: "there are three frontend microservices, 15 logic
microservices, and 12 backend microservices", of which the 3 frontends, the
15 logic services, and the 4 memcached backends are deflatable (22 of 30);
the databases are never deflated.

The topology is a :class:`networkx.DiGraph` whose edges are caller->callee
relationships; request *templates* (which services a request visits, in what
order, with what fan-out) live in :mod:`repro.microsim.app`.
"""

from __future__ import annotations

import enum

import networkx as nx


class ServiceTier(enum.Enum):
    FRONTEND = "frontend"
    LOGIC = "logic"
    BACKEND_CACHE = "backend-cache"
    BACKEND_DB = "backend-db"


#: (service name, tier).  3 frontend + 15 logic + 4 cache + 8 db = 30.
SOCIAL_NETWORK_SERVICES: tuple[tuple[str, ServiceTier], ...] = (
    # Frontend
    ("nginx-web", ServiceTier.FRONTEND),
    ("media-frontend", ServiceTier.FRONTEND),
    ("api-gateway", ServiceTier.FRONTEND),
    # Logic
    ("compose-post", ServiceTier.LOGIC),
    ("text-service", ServiceTier.LOGIC),
    ("user-mention", ServiceTier.LOGIC),
    ("url-shorten", ServiceTier.LOGIC),
    ("unique-id", ServiceTier.LOGIC),
    ("media-service", ServiceTier.LOGIC),
    ("user-service", ServiceTier.LOGIC),
    ("social-graph", ServiceTier.LOGIC),
    ("home-timeline", ServiceTier.LOGIC),
    ("user-timeline", ServiceTier.LOGIC),
    ("post-storage", ServiceTier.LOGIC),
    ("write-home-timeline", ServiceTier.LOGIC),
    ("read-post", ServiceTier.LOGIC),
    ("follow-service", ServiceTier.LOGIC),
    ("recommender", ServiceTier.LOGIC),
    # Backend caches (deflatable)
    ("memcached-post", ServiceTier.BACKEND_CACHE),
    ("memcached-user", ServiceTier.BACKEND_CACHE),
    ("memcached-social", ServiceTier.BACKEND_CACHE),
    ("memcached-timeline", ServiceTier.BACKEND_CACHE),
    # Backend stores (never deflated)
    ("mongodb-post", ServiceTier.BACKEND_DB),
    ("mongodb-user", ServiceTier.BACKEND_DB),
    ("mongodb-social", ServiceTier.BACKEND_DB),
    ("mongodb-media", ServiceTier.BACKEND_DB),
    ("mongodb-url", ServiceTier.BACKEND_DB),
    ("redis-home", ServiceTier.BACKEND_DB),
    ("redis-user", ServiceTier.BACKEND_DB),
    ("rabbitmq", ServiceTier.BACKEND_DB),
)

#: Caller -> callee edges (static call graph; templates pick subsets).
SOCIAL_NETWORK_EDGES: tuple[tuple[str, str], ...] = (
    ("nginx-web", "home-timeline"),
    ("nginx-web", "user-timeline"),
    ("nginx-web", "compose-post"),
    ("nginx-web", "read-post"),
    ("media-frontend", "media-service"),
    ("api-gateway", "compose-post"),
    ("api-gateway", "follow-service"),
    ("api-gateway", "recommender"),
    ("compose-post", "unique-id"),
    ("compose-post", "text-service"),
    ("compose-post", "media-service"),
    ("compose-post", "user-service"),
    ("compose-post", "post-storage"),
    ("compose-post", "write-home-timeline"),
    ("compose-post", "user-timeline"),
    ("compose-post", "rabbitmq"),
    ("text-service", "url-shorten"),
    ("text-service", "user-mention"),
    ("user-mention", "memcached-user"),
    ("user-mention", "mongodb-user"),
    ("url-shorten", "mongodb-url"),
    ("media-service", "mongodb-media"),
    ("user-service", "memcached-user"),
    ("user-service", "mongodb-user"),
    ("social-graph", "memcached-social"),
    ("social-graph", "mongodb-social"),
    ("social-graph", "redis-user"),
    ("home-timeline", "redis-home"),
    ("home-timeline", "post-storage"),
    ("home-timeline", "social-graph"),
    ("user-timeline", "memcached-timeline"),
    ("user-timeline", "mongodb-post"),
    ("post-storage", "memcached-post"),
    ("post-storage", "mongodb-post"),
    ("write-home-timeline", "social-graph"),
    ("write-home-timeline", "redis-home"),
    ("read-post", "post-storage"),
    ("follow-service", "social-graph"),
    ("recommender", "social-graph"),
    ("recommender", "post-storage"),
)


def social_network_graph() -> nx.DiGraph:
    """Build the 30-service call graph with tier annotations."""
    g = nx.DiGraph()
    for name, tier in SOCIAL_NETWORK_SERVICES:
        g.add_node(name, tier=tier)
    g.add_edges_from(SOCIAL_NETWORK_EDGES)
    return g


def deflatable_services(g: nx.DiGraph) -> list[str]:
    """The 22 services the paper deflates: frontends, logic, memcached."""
    keep = {ServiceTier.FRONTEND, ServiceTier.LOGIC, ServiceTier.BACKEND_CACHE}
    return [n for n, d in g.nodes(data=True) if d["tier"] in keep]


def services_by_tier(g: nx.DiGraph) -> dict[ServiceTier, list[str]]:
    out: dict[ServiceTier, list[str]] = {t: [] for t in ServiceTier}
    for n, d in g.nodes(data=True):
        out[d["tier"]].append(n)
    return out
