"""Request-level simulation of the social-network microservice application.

Requests follow templates mirroring DeathStarBench's three main operations —
read-home-timeline, read-user-timeline, compose-post — each a tree of
service visits with fork-join fan-out, executed on the PS network
(:mod:`repro.queueing.network`).

Resource configuration follows Section 7.2 of the paper: each microservice
is capped at 2 cores ("a maximum limit of 2 cores per microservice, and a
minimum of 0.05 CPUs"); deflation scales the 22 deflatable services'
capacity by ``1 - d`` (never below the 0.05-core floor), while the eight
database services keep their full allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.microsim.graph import (
    deflatable_services,
    social_network_graph,
)
from repro.queueing.network import Fork, NetworkResult, PSNetwork, Visit

#: Per-service CPU cap (cores) and the deflation floor, from the paper.
MAX_CORES_PER_SERVICE = 2.0
MIN_CORES_PER_SERVICE = 0.05

#: Mean CPU demand (seconds) per visit, by service.  Calibrated so the
#: hottest services sit near 30% utilization undeflated at 500 req/s —
#: comfortable normally, saturating past ~60% deflation (Figure 18's knee).
MEAN_DEMANDS: dict[str, float] = {
    "nginx-web": 0.0009,
    "media-frontend": 0.0010,
    "api-gateway": 0.0010,
    "compose-post": 0.0022,
    "text-service": 0.0012,
    "user-mention": 0.0008,
    "url-shorten": 0.0008,
    "unique-id": 0.0004,
    "media-service": 0.0015,
    "user-service": 0.0009,
    "social-graph": 0.0012,
    "home-timeline": 0.0024,
    "user-timeline": 0.0018,
    "post-storage": 0.0016,
    "write-home-timeline": 0.0014,
    "read-post": 0.0010,
    "follow-service": 0.0008,
    "recommender": 0.0015,
    "memcached-post": 0.0003,
    "memcached-user": 0.0003,
    "memcached-social": 0.0003,
    "memcached-timeline": 0.0003,
    "mongodb-post": 0.0028,
    "mongodb-user": 0.0022,
    "mongodb-social": 0.0022,
    "mongodb-media": 0.0024,
    "mongodb-url": 0.0018,
    "redis-home": 0.0005,
    "redis-user": 0.0005,
    "rabbitmq": 0.0008,
}

#: Request mix (fractions) over the three operations.
REQUEST_MIX: dict[str, float] = {
    "read-home-timeline": 0.60,
    "read-user-timeline": 0.30,
    "compose-post": 0.10,
}


@dataclass
class SocialNetworkApp:
    """The deflatable social-network application harness."""

    cache_hit_rate: float = 0.8
    seed: int = 0
    graph = None

    def __post_init__(self) -> None:
        self.graph = social_network_graph()
        self._deflatable = set(deflatable_services(self.graph))
        if not (0.0 <= self.cache_hit_rate <= 1.0):
            raise SimulationError("cache_hit_rate must be in [0, 1]")

    # -- capacity ---------------------------------------------------------------

    def capacities(self, deflation: float) -> dict[str, float]:
        """Per-service core allocations at a deflation fraction."""
        if not (0.0 <= deflation < 1.0):
            raise SimulationError(f"deflation must be in [0, 1), got {deflation}")
        caps: dict[str, float] = {}
        for name, data in self.graph.nodes(data=True):
            cores = MAX_CORES_PER_SERVICE
            if name in self._deflatable:
                cores = max(MIN_CORES_PER_SERVICE, cores * (1.0 - deflation))
            caps[name] = cores
        return caps

    # -- request templates --------------------------------------------------------

    def _demand(self, rng: np.random.Generator, service: str) -> float:
        """Sample one visit's CPU demand (exponential around the mean)."""
        return float(rng.exponential(MEAN_DEMANDS[service]))

    def _post_storage_chain(self, rng) -> tuple:
        """post-storage consults its memcached; misses go to MongoDB."""
        steps: list = [Visit("post-storage", self._demand(rng, "post-storage"))]
        if rng.random() < self.cache_hit_rate:
            steps.append(Visit("memcached-post", self._demand(rng, "memcached-post")))
        else:
            steps.append(Visit("mongodb-post", self._demand(rng, "mongodb-post")))
        return tuple(steps)

    def _read_home_timeline(self, rng) -> tuple:
        return (
            Visit("nginx-web", self._demand(rng, "nginx-web")),
            Visit("home-timeline", self._demand(rng, "home-timeline")),
            Fork(
                branches=(
                    (Visit("redis-home", self._demand(rng, "redis-home")),),
                    self._post_storage_chain(rng),
                    (
                        Visit("social-graph", self._demand(rng, "social-graph")),
                        Visit("memcached-social", self._demand(rng, "memcached-social")),
                    ),
                )
            ),
        )

    def _read_user_timeline(self, rng) -> tuple:
        cache_or_db = (
            (Visit("memcached-timeline", self._demand(rng, "memcached-timeline")),)
            if rng.random() < self.cache_hit_rate
            else (Visit("mongodb-post", self._demand(rng, "mongodb-post")),)
        )
        return (
            Visit("nginx-web", self._demand(rng, "nginx-web")),
            Visit("user-timeline", self._demand(rng, "user-timeline")),
            Fork(
                branches=(
                    cache_or_db,
                    (
                        Visit("user-service", self._demand(rng, "user-service")),
                        Visit("memcached-user", self._demand(rng, "memcached-user")),
                    ),
                )
            ),
        )

    def _compose_post(self, rng) -> tuple:
        return (
            Visit("nginx-web", self._demand(rng, "nginx-web")),
            Visit("compose-post", self._demand(rng, "compose-post")),
            Visit("unique-id", self._demand(rng, "unique-id")),
            Fork(
                branches=(
                    (
                        Visit("text-service", self._demand(rng, "text-service")),
                        Fork(
                            branches=(
                                (
                                    Visit("url-shorten", self._demand(rng, "url-shorten")),
                                    Visit("mongodb-url", self._demand(rng, "mongodb-url")),
                                ),
                                (
                                    Visit("user-mention", self._demand(rng, "user-mention")),
                                    Visit("memcached-user", self._demand(rng, "memcached-user")),
                                ),
                            )
                        ),
                    ),
                    (
                        Visit("media-service", self._demand(rng, "media-service")),
                        Visit("mongodb-media", self._demand(rng, "mongodb-media")),
                    ),
                    (
                        Visit("user-service", self._demand(rng, "user-service")),
                        Visit("memcached-user", self._demand(rng, "memcached-user")),
                    ),
                )
            ),
            Fork(
                branches=(
                    (
                        Visit("post-storage", self._demand(rng, "post-storage")),
                        Visit("mongodb-post", self._demand(rng, "mongodb-post")),
                    ),
                    (
                        Visit("write-home-timeline", self._demand(rng, "write-home-timeline")),
                        Visit("social-graph", self._demand(rng, "social-graph")),
                        Visit("redis-home", self._demand(rng, "redis-home")),
                    ),
                    (
                        Visit("user-timeline", self._demand(rng, "user-timeline")),
                        Visit("rabbitmq", self._demand(rng, "rabbitmq")),
                    ),
                )
            ),
        )

    def sample_plan(self, rng: np.random.Generator) -> tuple:
        r = rng.random()
        if r < REQUEST_MIX["read-home-timeline"]:
            return self._read_home_timeline(rng)
        if r < REQUEST_MIX["read-home-timeline"] + REQUEST_MIX["read-user-timeline"]:
            return self._read_user_timeline(rng)
        return self._compose_post(rng)

    # -- simulation ----------------------------------------------------------------

    def simulate(
        self,
        rate_per_s: float,
        duration_s: float,
        deflation: float,
        timeout_s: float | None = 30.0,
        seed: int | None = None,
    ) -> NetworkResult:
        """Run the application at a deflation level; returns latency metrics."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        net = PSNetwork(self.capacities(deflation))
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= duration_s:
                break
            net.offer(t, self.sample_plan(rng), deadline=timeout_s)
        return net.run()

    def bottleneck_utilization(self, rate_per_s: float, deflation: float) -> float:
        """Analytic utilization of the hottest station (for tests/examples)."""
        visit_rates = self._expected_visit_rates(rate_per_s)
        caps = self.capacities(deflation)
        rho = 0.0
        for svc, rate in visit_rates.items():
            rho = max(rho, rate * MEAN_DEMANDS[svc] / caps[svc])
        return rho

    def _expected_visit_rates(self, rate_per_s: float) -> dict[str, float]:
        """Expected per-service arrival rates under the request mix."""
        h = self.cache_hit_rate
        mix = REQUEST_MIX
        rates: dict[str, float] = {name: 0.0 for name in self.graph.nodes}
        rht, rut, cp = (
            rate_per_s * mix["read-home-timeline"],
            rate_per_s * mix["read-user-timeline"],
            rate_per_s * mix["compose-post"],
        )
        rates["nginx-web"] = rht + rut + cp
        rates["home-timeline"] = rht
        rates["redis-home"] = rht + cp
        rates["post-storage"] = rht + cp
        rates["memcached-post"] = rht * h
        rates["mongodb-post"] = rht * (1 - h) + rut * (1 - h) + cp
        rates["social-graph"] = rht + cp
        rates["memcached-social"] = rht
        rates["user-timeline"] = rut + cp
        rates["memcached-timeline"] = rut * h
        rates["user-service"] = rut + 2 * cp
        rates["memcached-user"] = rut + 3 * cp
        rates["compose-post"] = cp
        rates["unique-id"] = cp
        rates["text-service"] = cp
        rates["url-shorten"] = cp
        rates["mongodb-url"] = cp
        rates["user-mention"] = cp
        rates["media-service"] = cp
        rates["mongodb-media"] = cp
        rates["write-home-timeline"] = cp
        rates["rabbitmq"] = cp
        return rates
