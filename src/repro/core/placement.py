"""Deflation-aware VM placement (Section 5.2 of the paper).

Placement scores every candidate server with the cosine similarity between
the VM's demand vector and the server's *availability* vector

    ``A_j = Total_j - Used_j + deflatable_j / overcommitted_j``

where ``deflatable_j`` is the amount still reclaimable by deflation and
``overcommitted_j`` is the extent of deflation already performed.  Dividing
the deflatable reserve by the overcommitment level makes already-squeezed
servers less attractive, which load-balances overcommitment across the
cluster (the paper's stated goal).  ``overcommitted_j`` is expressed as a
ratio >= 1 (1 = not overcommitted), so on a fresh server the reserve counts
at face value.

The module is deliberately independent of the full cluster manager: it
consumes :class:`ServerSnapshot` summaries so the discrete-event simulator
can drive it with cheap array-backed state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.resources import NUM_RESOURCES, ResourceVector, cosine_fitness
from repro.errors import PlacementError
from repro.registry import RegistryView, register


@dataclass(frozen=True)
class ServerSnapshot:
    """Immutable summary of one server's state used for placement decisions.

    Attributes
    ----------
    server_id:
        Opaque identifier, echoed back in placement decisions.
    capacity:
        Physical capacity ``Total_j``.
    used:
        Currently allocated resources (post-deflation allocations of all
        resident VMs).
    deflatable:
        Resources still reclaimable from resident deflatable VMs
        (sum of ``current - min`` over deflatable VMs).
    overcommitment:
        Per-resource ratio committed/capacity, >= 0.  Values <= 1 mean the
        server is not overcommitted.
    partition:
        Optional partition label for priority pools (Section 5.2.1); None
        means the server is in the shared pool.
    """

    server_id: str
    capacity: ResourceVector
    used: ResourceVector
    deflatable: ResourceVector
    overcommitment: ResourceVector
    partition: str | None = None

    def availability(self) -> ResourceVector:
        """The paper's availability vector ``A_j``."""
        free = (self.capacity - self.used).clamp_nonnegative()
        oc = np.maximum(self.overcommitment.as_array(), 1.0)
        reserve = self.deflatable.as_array() / oc
        return ResourceVector.from_array(free.as_array() + reserve)

    def max_supportable(self) -> ResourceVector:
        """Free capacity if every deflatable VM were squeezed to its floor."""
        return (self.capacity - self.used).clamp_nonnegative() + self.deflatable


def can_possibly_fit(
    demand: ResourceVector,
    snapshot: ServerSnapshot,
    min_demand: ResourceVector | None = None,
) -> bool:
    """Cheap feasibility pre-filter: could the VM fit after maximal deflation?

    ``min_demand`` is the smallest allocation the *arriving* VM accepts — a
    deflatable VM "can start its execution in a deflated mode under high
    resource pressure" (Section 5.1.1), so it only needs room for its
    minimum, not its full capacity.
    """
    needed = min_demand if min_demand is not None else demand
    return needed.fits_within(snapshot.max_supportable())


class PlacementStrategy(abc.ABC):
    """Ranks candidate servers for a VM demand vector."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(
        self, demand: ResourceVector, snapshots: list[ServerSnapshot]
    ) -> ServerSnapshot:
        """Pick a server; raise :class:`PlacementError` when none qualifies."""

    def rank(
        self,
        demand: ResourceVector,
        snapshots: list[ServerSnapshot],
        min_demand: ResourceVector | None = None,
    ) -> list[ServerSnapshot]:
        """Full preference order (most preferred first).

        The cluster manager walks this list: the top server may still reject
        the VM during the second step of the paper's three-step placement
        (local constraint check), in which case the next server is tried.
        ``min_demand`` loosens the feasibility pre-filter for deflatable VMs
        that may start deflated.
        """
        feasible = [s for s in snapshots if can_possibly_fit(demand, s, min_demand)]
        if not feasible:
            raise PlacementError("no server can host the VM even with maximal deflation")
        return self._order(demand, feasible)

    @abc.abstractmethod
    def _order(
        self, demand: ResourceVector, feasible: list[ServerSnapshot]
    ) -> list[ServerSnapshot]:
        ...


def _capacity_normalized(vector: ResourceVector, capacity: ResourceVector) -> ResourceVector:
    """Express a vector as per-dimension fractions of a server's capacity.

    Without this normalization the raw units dominate the cosine (memory in
    MB dwarfs CPU in cores); Tetris-style packing compares *shapes*, so both
    demand and availability are scaled into capacity fractions first.
    Dimensions the server does not provision (capacity 0) contribute 0.
    """
    v = vector.as_array()
    c = capacity.as_array()
    out = np.zeros_like(v)
    nz = c > 0
    out[nz] = v[nz] / c[nz]
    return ResourceVector.from_array(out)


@register("placement", "cosine-best-fit")
class CosineBestFit(PlacementStrategy):
    """The paper's strategy: maximize cosine fitness against availability."""

    name = "cosine-best-fit"

    def choose(self, demand, snapshots):
        return self.rank(demand, snapshots)[0]

    def _order(self, demand, feasible):
        scored = []
        for snap in feasible:
            d_norm = _capacity_normalized(demand, snap.capacity)
            a_norm = _capacity_normalized(snap.availability(), snap.capacity)
            # Surplus capacity is allocated without deflating anyone
            # (Section 5): servers that can host the VM for free outrank
            # servers that would have to squeeze their residents — the
            # availability vector alone cannot see this, because a fully
            # reclaimable deflatable VM leaves availability unchanged.
            free = (snap.capacity - snap.used).clamp_nonnegative()
            needs_deflation = 0 if demand.fits_within(free) else 1
            scored.append(
                (needs_deflation, -cosine_fitness(d_norm, a_norm), snap.used.total(), snap)
            )
        # No-deflation servers first, then highest fitness, then lower
        # utilization, then id for determinism.
        scored.sort(key=lambda t: (t[0], t[1], t[2], t[3].server_id))
        return [snap for _, _, _, snap in scored]


@register("placement", "first-fit")
class FirstFit(PlacementStrategy):
    """Baseline: first server (by id) with free capacity, else first that
    could fit after deflation."""

    name = "first-fit"

    def choose(self, demand, snapshots):
        return self.rank(demand, snapshots)[0]

    def _order(self, demand, feasible):
        free_fit = [
            s for s in feasible if demand.fits_within((s.capacity - s.used).clamp_nonnegative())
        ]
        rest = [s for s in feasible if s not in free_fit]
        return sorted(free_fit, key=lambda s: s.server_id) + sorted(
            rest, key=lambda s: s.server_id
        )


@register("placement", "worst-fit")
class WorstFit(PlacementStrategy):
    """Baseline: most free capacity first (spreads load, fragments cluster)."""

    name = "worst-fit"

    def choose(self, demand, snapshots):
        return self.rank(demand, snapshots)[0]

    def _order(self, demand, feasible):
        return sorted(
            feasible,
            key=lambda s: (-(s.capacity - s.used).clamp_nonnegative().total(), s.server_id),
        )


#: Legacy view over the unified registry (kind ``placement``).
STRATEGIES: RegistryView = RegistryView("placement")


def filter_partition(
    snapshots: list[ServerSnapshot], partition: str | None
) -> list[ServerSnapshot]:
    """Restrict candidates to one priority pool (Section 5.2.1).

    ``partition=None`` disables partitioning and returns everything.  With a
    label, only servers assigned to that label qualify — a full partition
    therefore triggers admission control instead of spilling into other
    pools, exactly the downside the paper notes.
    """
    if partition is None:
        return list(snapshots)
    return [s for s in snapshots if s.partition == partition]


def partition_for_priority(priority: float, boundaries: tuple[float, ...] = (0.3, 0.5, 0.7)) -> str:
    """Map a VM priority to a partition label.

    The default boundaries produce four pools aligned with the four priority
    levels used by the simulations.
    """
    idx = int(np.searchsorted(np.asarray(boundaries), priority, side="left"))
    return f"pool-{idx}"


def vectorized_cosine_scores(
    demand: np.ndarray, availability_matrix: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Cosine fitness of one demand against many availability rows at once.

    ``availability_matrix`` has shape (n_servers, NUM_RESOURCES).  Used by the
    trace-driven simulator where per-object scoring would dominate runtime.
    """
    demand = np.asarray(demand, dtype=np.float64)
    if demand.shape != (NUM_RESOURCES,):
        raise PlacementError(f"demand must have shape ({NUM_RESOURCES},)")
    mat = np.asarray(availability_matrix, dtype=np.float64)
    # Inlined 2-norm (what np.linalg.norm(mat, axis=1) computes for real
    # float64, bit for bit) — skips the linalg dispatch on this hot path.
    norms = np.sqrt(np.add.reduce(mat * mat, axis=1))
    dnorm = float(np.linalg.norm(demand))
    if dnorm < eps:
        raise PlacementError("demand vector must be non-zero")
    return (mat @ demand) / (np.maximum(norms, eps) * dnorm)
