"""VM model: specifications, priority classes, and allocation state.

The paper's cluster hosts two pools of VMs (Section 5): non-deflatable
high-priority ("on-demand") VMs and deflatable low-priority VMs.  Deflatable
VMs carry a priority level ``pi in (0, 1]`` which controls both how much they
can be deflated (Eqs. 3/4, deterministic policy) and how they are priced
(Section 5.2.2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.resources import ResourceVector
from repro.errors import ResourceError


class VMClass(enum.Enum):
    """Workload class labels, mirroring the Azure trace categories."""

    INTERACTIVE = "interactive"
    DELAY_INSENSITIVE = "delay-insensitive"
    UNKNOWN = "unknown"


#: The four priority levels used for the cluster simulations (Section 7.1.2
#: determines priorities from the 95th-percentile CPU usage and uses 4 levels).
PRIORITY_LEVELS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)

_vm_counter = itertools.count()


def _next_vm_id() -> str:
    return f"vm-{next(_vm_counter)}"


@dataclass(frozen=True)
class VMSpec:
    """Immutable description of a VM as submitted to the cluster.

    Attributes
    ----------
    capacity:
        The undeflated allocation ``M_i`` — what the user paid for.
    deflatable:
        False for on-demand VMs, which are never deflated or preempted.
    priority:
        ``pi in (0, 1]``.  Lower values mean lower priority and higher
        deflatability.  On-demand VMs conventionally carry priority 1.0.
    min_fraction:
        The per-resource minimum allocation expressed as a fraction of
        capacity; ``m_i = min_fraction * M_i`` (Eq. 2).  0 means the VM may be
        deflated arbitrarily.
    vm_class:
        Azure-style workload class, used by the trace-driven experiments.
    """

    capacity: ResourceVector
    deflatable: bool = True
    priority: float = 0.5
    min_fraction: float = 0.0
    vm_class: VMClass = VMClass.UNKNOWN
    vm_id: str = field(default_factory=_next_vm_id)

    def __post_init__(self) -> None:
        if not (0.0 < self.priority <= 1.0):
            raise ResourceError(f"priority must be in (0, 1], got {self.priority}")
        if not (0.0 <= self.min_fraction <= 1.0):
            raise ResourceError(f"min_fraction must be in [0, 1], got {self.min_fraction}")
        if not self.capacity.is_nonnegative() or not self.capacity.any_positive():
            raise ResourceError("VM capacity must be non-negative and non-zero")

    @property
    def min_allocation(self) -> ResourceVector:
        """``m_i``: the floor below which this VM must never be deflated."""
        return self.capacity * self.min_fraction

    @property
    def deflatable_amount(self) -> ResourceVector:
        """``M_i - m_i``: how much can at most be reclaimed from this VM."""
        return self.capacity - self.min_allocation


def on_demand_spec(capacity: ResourceVector, vm_class: VMClass = VMClass.UNKNOWN) -> VMSpec:
    """Convenience constructor for a non-deflatable on-demand VM."""
    return VMSpec(capacity=capacity, deflatable=False, priority=1.0, vm_class=vm_class)


def priority_from_p95(p95_cpu_utilization: float) -> float:
    """Map a 95th-percentile CPU utilization (0..1) to one of 4 priority levels.

    Section 7.1.2: "We determine VM priorities based on their 95-th percentile
    CPU usage and use 4 priority levels."  Higher peak usage means the VM
    tolerates deflation worse, so it is assigned a higher priority (less
    deflation under Eqs. 3/4).
    """
    if not (0.0 <= p95_cpu_utilization <= 1.0):
        raise ResourceError(f"p95 utilization must be in [0, 1], got {p95_cpu_utilization}")
    if p95_cpu_utilization < 0.33:
        return PRIORITY_LEVELS[0]
    if p95_cpu_utilization < 0.66:
        return PRIORITY_LEVELS[1]
    if p95_cpu_utilization < 0.80:
        return PRIORITY_LEVELS[2]
    return PRIORITY_LEVELS[3]


@dataclass
class VMAllocation:
    """Mutable runtime allocation state of a placed VM.

    ``current`` always satisfies ``min_allocation <= current <= capacity``
    componentwise; the deflation policies guarantee this and the class
    enforces it as a last line of defence.
    """

    spec: VMSpec
    current: ResourceVector = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.current is None:
            self.current = self.spec.capacity

    def set_allocation(self, new_allocation: ResourceVector, rel_tol: float = 1e-6) -> None:
        """Apply a new allocation, validating the policy invariants.

        The tolerance is *relative to capacity* per component: memory is
        measured in MB, so an absolute epsilon meaningful for CPU cores
        would be uselessly strict there.
        """
        low = self.spec.min_allocation
        high = self.spec.capacity
        tol_vec = high * rel_tol + ResourceVector.full(1e-9)
        if not new_allocation.dominates(low - tol_vec, tol=0.0):
            raise ResourceError(
                f"{self.spec.vm_id}: allocation {new_allocation} below minimum {low}"
            )
        if not new_allocation.fits_within(high + tol_vec, tol=0.0):
            raise ResourceError(
                f"{self.spec.vm_id}: allocation {new_allocation} above capacity {high}"
            )
        # Snap into the legal box to keep floating-point drift from
        # accumulating across repeated deflate/reinflate cycles.
        self.current = new_allocation.elementwise_max(low).elementwise_min(high)

    @property
    def deflation_fractions(self) -> "ResourceVector":
        """Per-resource deflation as a fraction of capacity (0 = undeflated)."""
        frac = 1.0 - self.current.fraction_of(self.spec.capacity)
        return ResourceVector.from_array(frac.clip(0.0, 1.0))

    @property
    def cpu_deflation(self) -> float:
        return float(self.deflation_fractions.cpu)

    @property
    def is_deflated(self) -> bool:
        return self.deflation_fractions.any_positive(tol=1e-9)

    @property
    def reclaimed(self) -> ResourceVector:
        """Resources currently reclaimed from this VM."""
        return (self.spec.capacity - self.current).clamp_nonnegative()

    @property
    def headroom(self) -> ResourceVector:
        """Resources that could still be reclaimed before hitting ``m_i``."""
        return (self.current - self.spec.min_allocation).clamp_nonnegative()
