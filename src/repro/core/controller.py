"""Per-server local deflation controller.

Section 6 of the paper: "local deflation controllers ... run on each server.
These local controllers control the deflation of VMs by responding to
resource pressure, by implementing the proportional deflation policies".

The controller owns the authoritative allocation state of every resident VM.
Whenever membership changes (VM placed or terminated) it *rebalances*: for
each resource dimension it computes the server's required reclaim

    ``R[r] = max(0, sum_i M_i[r] - C[r])``

and asks the configured :class:`~repro.core.deflation.DeflationPolicy` for
fresh target allocations of the deflatable VMs.  Because policies recompute
from capacity, a departure automatically reinflates the remaining VMs
("running the proportional deflation backwards", Section 5.1.3).

Deflation changes are reported to registered observers — the paper's
notification channel toward application managers and load balancers
(Figure 1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.deflation import DeflationPolicy, ProportionalPolicy
from repro.core.resources import (
    NUM_RESOURCES,
    RESOURCE_KINDS,
    ResourceVector,
    sum_vectors,
)
from repro.core.vm import VMAllocation, VMSpec
from repro.errors import DeflationError, PlacementError


@dataclass(frozen=True)
class DeflationEvent:
    """Notification that one VM's allocation changed."""

    vm_id: str
    old_allocation: ResourceVector
    new_allocation: ResourceVector

    @property
    def is_deflation(self) -> bool:
        return self.new_allocation.total() < self.old_allocation.total()


@dataclass
class RebalanceReport:
    """Result of one controller rebalance pass."""

    events: list[DeflationEvent] = field(default_factory=list)
    satisfied: bool = True
    required: ResourceVector = field(default_factory=ResourceVector.zeros)


Observer = Callable[[DeflationEvent], None]


class LocalDeflationController:
    """Manages allocations of all VMs resident on a single server."""

    def __init__(
        self,
        capacity: ResourceVector,
        policy: DeflationPolicy | None = None,
        server_id: str = "server-0",
    ) -> None:
        self.capacity = capacity
        self.policy = policy if policy is not None else ProportionalPolicy()
        self.server_id = server_id
        self._vms: dict[str, VMAllocation] = {}
        self._observers: list[Observer] = []

    # -- membership ------------------------------------------------------------

    @property
    def vms(self) -> dict[str, VMAllocation]:
        return dict(self._vms)

    def subscribe(self, observer: Observer) -> None:
        """Register a deflation-notification observer (e.g. a load balancer)."""
        self._observers.append(observer)

    def committed(self) -> ResourceVector:
        """Sum of undeflated capacities of all resident VMs."""
        return sum_vectors(a.spec.capacity for a in self._vms.values())

    def used(self) -> ResourceVector:
        """Sum of current (possibly deflated) allocations."""
        return sum_vectors(a.current for a in self._vms.values())

    def deflatable_headroom(self) -> ResourceVector:
        """Resources still reclaimable from resident deflatable VMs."""
        return sum_vectors(
            a.headroom for a in self._vms.values() if a.spec.deflatable
        )

    def overcommitment(self) -> ResourceVector:
        """Per-resource committed/capacity ratio (>1 means overcommitted)."""
        ratio = self.committed().fraction_of(self.capacity)
        return ResourceVector.from_array(ratio)

    def can_accommodate(self, spec: VMSpec) -> bool:
        """Step 2 of the paper's three-step placement: local feasibility.

        The new VM fits if, for every resource, committed + demand can be
        brought within capacity by deflating the (existing + new, when the
        new VM is itself deflatable) pool under the configured policy.
        """
        caps, mins, prios = self._policy_arrays(extra=spec if spec.deflatable else None)
        committed = self.committed() + spec.capacity
        over = committed.as_array() - self.capacity.as_array()
        for r in range(NUM_RESOURCES):
            if over[r] <= 1e-9:
                continue
            reclaimable = self.policy.max_reclaimable(caps[:, r], mins[:, r], prios)
            if over[r] > reclaimable + 1e-6:
                return False
        return True

    def place(self, spec: VMSpec) -> VMAllocation:
        """Admit a VM and rebalance; raises :class:`PlacementError` if it
        cannot fit even with maximal deflation."""
        if spec.vm_id in self._vms:
            raise PlacementError(f"duplicate VM id {spec.vm_id}")
        if not self.can_accommodate(spec):
            raise PlacementError(
                f"server {self.server_id} cannot accommodate {spec.vm_id}"
            )
        alloc = VMAllocation(spec=spec)
        self._vms[spec.vm_id] = alloc
        self.rebalance()
        return alloc

    def remove(self, vm_id: str) -> VMAllocation:
        """Terminate a VM and rebalance (reinflating survivors)."""
        try:
            alloc = self._vms.pop(vm_id)
        except KeyError:
            raise PlacementError(f"unknown VM id {vm_id}") from None
        self.rebalance()
        return alloc

    # -- rebalancing -----------------------------------------------------------

    def required_reclaim(self) -> ResourceVector:
        """Per-resource pressure: how much must currently be reclaimed."""
        over = self.committed().as_array() - self.capacity.as_array()
        return ResourceVector.from_array(np.maximum(over, 0.0))

    def _policy_arrays(
        self, extra: VMSpec | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(capacities, minimums, priorities) matrices over deflatable VMs.

        Shapes: (n, NUM_RESOURCES), (n, NUM_RESOURCES), (n,).
        """
        specs = [a.spec for a in self._vms.values() if a.spec.deflatable]
        if extra is not None:
            specs = specs + [extra]
        n = len(specs)
        caps = np.zeros((n, NUM_RESOURCES))
        mins = np.zeros((n, NUM_RESOURCES))
        prios = np.ones(n)
        for i, spec in enumerate(specs):
            caps[i] = spec.capacity.as_array()
            mins[i] = spec.min_allocation.as_array()
            prios[i] = spec.priority
        return caps, mins, prios

    def rebalance(self) -> RebalanceReport:
        """Recompute all deflatable allocations under current pressure."""
        report = RebalanceReport(required=self.required_reclaim())
        deflatable = [a for a in self._vms.values() if a.spec.deflatable]
        if not deflatable:
            report.satisfied = report.required.is_zero(tol=1e-6)
            return report

        caps, mins, prios = self._policy_arrays()
        required = report.required.as_array()
        new_alloc = caps.copy()
        for r in range(NUM_RESOURCES):
            result = self.policy.target_allocations(
                caps[:, r], mins[:, r], prios, float(required[r])
            )
            new_alloc[:, r] = result.allocations
            if not result.satisfied:
                report.satisfied = False

        for i, alloc in enumerate(deflatable):
            old = alloc.current
            target = ResourceVector.from_array(new_alloc[i])
            if old == target:
                continue
            alloc.set_allocation(target)
            event = DeflationEvent(alloc.spec.vm_id, old, target)
            report.events.append(event)
            for obs in self._observers:
                obs(event)
        return report

    # -- introspection ----------------------------------------------------------

    def allocation_of(self, vm_id: str) -> ResourceVector:
        try:
            return self._vms[vm_id].current
        except KeyError:
            raise PlacementError(f"unknown VM id {vm_id}") from None

    def deflation_summary(self) -> dict[str, dict[str, float]]:
        """Per-VM, per-resource deflation fractions — handy for debugging."""
        out: dict[str, dict[str, float]] = {}
        for vm_id, alloc in self._vms.items():
            fracs = alloc.deflation_fractions
            out[vm_id] = dict(zip(RESOURCE_KINDS, fracs))
        return out

    def verify_invariants(self) -> None:
        """Raise if any controller invariant is violated (used by tests)."""
        for alloc in self._vms.values():
            if not alloc.current.fits_within(alloc.spec.capacity, tol=1e-6):
                raise DeflationError(f"{alloc.spec.vm_id} allocated above capacity")
            if alloc.spec.deflatable:
                if not alloc.current.dominates(alloc.spec.min_allocation, tol=1e-6):
                    raise DeflationError(f"{alloc.spec.vm_id} below minimum allocation")
            elif alloc.current != alloc.spec.capacity:
                raise DeflationError(f"on-demand VM {alloc.spec.vm_id} was deflated")
        used = self.used().as_array()
        cap = self.capacity.as_array()
        committed = self.committed().as_array()
        # The server may be oversubscribed in committed terms, but actual
        # allocations must fit in physical capacity whenever the policy could
        # satisfy the pressure.
        for r in range(NUM_RESOURCES):
            if used[r] > cap[r] + 1e-6 and committed[r] <= cap[r] + 1e-6:
                raise DeflationError("allocations exceed capacity without pressure")
