"""Abstract application-performance-under-deflation model.

Section 3.1 / Figure 2 of the paper models an application's normalized
performance as a function of the deflation fraction with three regions:

* **slack** — reclaiming unused resources: performance stays at 1.0;
* **linear** — performance degrades (sub- or super-linearly) from 1.0 down to
  the knee;
* **post-knee** — performance "drops precipitously", i.e. allocated resources
  no longer sustain satisfactory service.

Figure 3 instantiates the model for three applications (SpecJBB — no slack;
kernel compile — modest slack; Memcached — large slack).  The profiles below
are calibrated to those curves and are reused by the cluster policies, the
pricing experiments, and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ResourceError

ArrayLike = "np.ndarray | float"


@dataclass(frozen=True)
class PerfProfile:
    """Piecewise slack/linear/knee performance curve.

    Parameters
    ----------
    slack:
        Deflation fraction below which performance is unaffected.
    knee:
        Deflation fraction at which the precipitous region begins.
    knee_perf:
        Normalized performance at the knee.
    gamma:
        Shape exponent of the middle region. 1.0 = linear; >1 = sub-linear
        degradation (performance holds up, then catches down near the knee);
        <1 = super-linear (inelastic applications).
    floor:
        Residual performance as deflation approaches 100% (a fully deflated
        VM makes essentially no progress).
    name:
        Human-readable label used by the experiment harnesses.
    """

    slack: float
    knee: float
    knee_perf: float
    gamma: float = 1.0
    floor: float = 0.02
    name: str = "generic"

    def __post_init__(self) -> None:
        if not (0.0 <= self.slack < self.knee <= 1.0):
            raise ResourceError(f"require 0 <= slack < knee <= 1, got {self.slack}, {self.knee}")
        if not (0.0 < self.knee_perf <= 1.0):
            raise ResourceError(f"knee_perf must be in (0, 1], got {self.knee_perf}")
        if self.gamma <= 0:
            raise ResourceError(f"gamma must be positive, got {self.gamma}")
        if not (0.0 <= self.floor <= self.knee_perf):
            raise ResourceError("floor must be in [0, knee_perf]")

    def performance(self, deflation):
        """Normalized performance (1.0 = undeflated) at a deflation fraction.

        Accepts scalars or NumPy arrays; deflation is clipped into [0, 1].
        """
        d = np.clip(np.asarray(deflation, dtype=np.float64), 0.0, 1.0)
        out = np.ones_like(d)

        # Middle region: smooth power-law descent from 1.0 to knee_perf.
        mid = (d > self.slack) & (d <= self.knee)
        if np.any(mid):
            t = (d[mid] - self.slack) / (self.knee - self.slack)
            out[mid] = 1.0 - (1.0 - self.knee_perf) * t**self.gamma

        # Post-knee region: precipitous quadratic fall from knee_perf to floor.
        post = d > self.knee
        if np.any(post):
            span = max(1.0 - self.knee, 1e-12)
            t = (d[post] - self.knee) / span
            out[post] = self.knee_perf - (self.knee_perf - self.floor) * (
                1.0 - (1.0 - t) ** 2
            )

        out = np.maximum(out, self.floor)
        if np.isscalar(deflation) or np.ndim(deflation) == 0:
            return float(out)
        return out

    def slowdown(self, deflation):
        """Response-time multiplier: 1 / performance."""
        perf = self.performance(deflation)
        return 1.0 / perf

    def max_safe_deflation(self, min_performance: float) -> float:
        """Largest deflation fraction that keeps performance >= the target.

        Solved numerically on a fine grid — the curve is monotone
        non-increasing, so the last grid point above the target is correct to
        grid resolution (1e-4).
        """
        if not (0.0 < min_performance <= 1.0):
            raise ResourceError("min_performance must be in (0, 1]")
        grid = np.linspace(0.0, 1.0, 10_001)
        perf = self.performance(grid)
        ok = perf >= min_performance
        if not ok[0]:
            return 0.0
        return float(grid[np.nonzero(ok)[0][-1]])


# ---------------------------------------------------------------------------
# Profiles calibrated against Figure 3 (uniform all-resource deflation) and
# the Wikipedia/microservice observations in Section 7.2.
# ---------------------------------------------------------------------------

#: SpecJBB 2015: "not exhibiting any slack at all" (Fig. 3); roughly linear
#: decline, falling off a cliff past ~75% deflation.
SPECJBB = PerfProfile(slack=0.0, knee=0.75, knee_perf=0.35, gamma=1.0, name="SpecJBB")

#: Kernel compile: small slack, then a near-linear throughput decline (it is
#: CPU-bound, so performance tracks allocated cycles closely).
KCOMPILE = PerfProfile(slack=0.10, knee=0.80, knee_perf=0.30, gamma=0.95, name="Kcompile")

#: Memcached: large slack (over-provisioned memory/CPU), sub-linear impact
#: until deep deflation (Section 3.2.2 calls it resilient).
MEMCACHED = PerfProfile(slack=0.35, knee=0.88, knee_perf=0.50, gamma=1.3, name="Memcached")

#: A well-architected multi-tier web service, per the Wikipedia experiment
#: (Fig. 16: flat response times until ~70% CPU deflation).
WEB_MULTITIER = PerfProfile(slack=0.50, knee=0.90, knee_perf=0.45, gamma=1.5, name="Wikipedia")

#: Communication/coordination-heavy microservice application (Fig. 18: flat
#: to 50%, then degrades abruptly).
MICROSERVICE = PerfProfile(slack=0.45, knee=0.62, knee_perf=0.30, gamma=1.1, name="SocialNetwork")

#: Map used by examples and the figure-3 experiment.
FIG3_PROFILES: tuple[PerfProfile, ...] = (SPECJBB, KCOMPILE, MEMCACHED)

ALL_PROFILES: dict[str, PerfProfile] = {
    p.name: p
    for p in (SPECJBB, KCOMPILE, MEMCACHED, WEB_MULTITIER, MICROSERVICE)
}
