"""Pinned pre-closed-form water-fill bisection (golden numeric reference).

This is a verbatim snapshot of ``repro.core.deflation._waterfill_reclaim``
as it stood *before* the closed-form sorted-breakpoint solver replaced it
— the repo's first deliberate, golden-tested numerical change (see
docs/performance.md, "Deliberate numerical changes").  It is kept for one
purpose: ``tests/core/test_waterfill_equivalence.py`` asserts the
closed-form solver agrees with this implementation to <= 1e-9 on
randomized instances and bit-for-bit in every clamped regime, which is
the evidence that licensed re-pinning the golden suites on the new bits.

Only tests/ and benchmarks/ may import this module (the ``golden-freeze``
lint rule enforces that statically, exactly as it does for
``repro.simulator.reference``): production code must use the live solver
in :mod:`repro.core.deflation`.

Do not optimize this module; it is the yardstick.
"""

from __future__ import annotations

import numpy as np

_BISECT_ITERS = 80
_TOL = 1e-9


def waterfill_reclaim_bisect(
    base: np.ndarray, weight: np.ndarray, cap: np.ndarray, amount: float
) -> np.ndarray:
    """Solve sum_i clip(base_i - alpha * weight_i, 0, cap_i) = amount for alpha.

    Returns the per-VM reclaim amounts ``x_i``.  The clipped sum is monotone
    non-increasing in alpha, so bisection converges unconditionally.  Callers
    guarantee ``0 <= amount <= sum(cap)``.
    """
    if amount <= _TOL:
        return np.zeros_like(base)
    total_cap = float(cap.sum())
    if amount >= total_cap - _TOL:
        return cap.copy()

    # One reused scratch buffer and raw ufunc calls with ``out=``: the
    # bisection evaluates the clipped sum ~80 times per solve and the
    # per-call allocations plus np.clip dispatch dominated the simulator's
    # priority-policy runs.  clip(x, 0, cap) == minimum(maximum(x, 0), cap)
    # bit for bit on finite data, so results are unchanged.
    tmp = np.empty_like(base)

    def clipped_sum(alpha: float) -> float:
        np.multiply(weight, alpha, out=tmp)
        np.subtract(base, tmp, out=tmp)
        np.maximum(tmp, 0.0, out=tmp)
        np.minimum(tmp, cap, out=tmp)
        return float(np.add.reduce(tmp))

    # Bracket: alpha low enough that everything is at cap, high enough that
    # everything is at zero.
    wpos = weight[weight > 0]
    wmin = float(wpos.min()) if wpos.size else 1.0
    lo = float((base - cap).min() / max(wmin, _TOL)) - 1.0
    hi = float(base.max() / max(wmin, _TOL)) + 1.0
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if clipped_sum(mid) > amount:
            lo = mid
        else:
            hi = mid
    x = np.clip(base - hi * weight, 0.0, cap)
    # Remove the last drops of bisection error by scaling inside the caps.
    total = float(x.sum())
    if total > _TOL:
        x = np.minimum(x * (amount / total), cap)
    return x
