"""Server-level deflation policies (Section 5.1 of the paper).

All three policy families — proportional (Eqs. 1/2), priority-weighted
proportional (Eqs. 3/4) and deterministic — are implemented over plain NumPy
arrays so the cluster simulator can evaluate thousands of deflation events
cheaply.  A policy answers one question per resource dimension:

    given per-VM capacities ``M_i``, minimum allocations ``m_i``, priorities
    ``pi_i`` and a total amount ``R`` that must be reclaimed on this server,
    what is each deflatable VM's new target allocation?

Design note — *recompute-from-capacity semantics*: policies always compute
target allocations from the full capacities and the server's **current total
required reclaim**, not incrementally from the previous allocation.  Under
this formulation reinflation (Section 5.1.3, "run the proportional deflation
backwards") falls out automatically: when a VM departs, the required reclaim
drops and the recomputed targets are higher.  It also makes
deflate-then-reinflate exactly idempotent, which the property tests verify.

The proportional-family solver handles the clamping the paper leaves
implicit: the closed forms of Eqs. 1–4 can push an individual VM below zero
(or below ``m_i``) when priorities are heterogeneous, so we solve the
equivalent water-filling problem ``sum_i clip(b_i - alpha * w_i, 0, cap_i)
= R`` for the level ``alpha`` by bisection, which preserves the papers'
weighting exactly whenever the unclamped solution is feasible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import DeflationError, UnknownComponentError
from repro.registry import RegistryView, register, resolve

_BISECT_ITERS = 80
_TOL = 1e-9


def _validate_inputs(
    capacities: np.ndarray, minimums: np.ndarray, priorities: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    caps = np.asarray(capacities, dtype=np.float64)
    mins = np.asarray(minimums, dtype=np.float64)
    prios = np.asarray(priorities, dtype=np.float64)
    if caps.shape != mins.shape or caps.shape != prios.shape:
        raise DeflationError("capacities, minimums and priorities must have equal shapes")
    if (caps < -_TOL).any():
        raise DeflationError("capacities must be non-negative")
    if (mins < -_TOL).any() or (mins > caps + 1e-6).any():
        raise DeflationError("minimums must satisfy 0 <= m_i <= M_i")
    if (prios <= 0.0).any() or (prios > 1.0).any():
        raise DeflationError("priorities must be in (0, 1]")
    return caps, np.minimum(mins, caps), prios


def _waterfill_reclaim(
    base: np.ndarray, weight: np.ndarray, cap: np.ndarray, amount: float
) -> np.ndarray:
    """Solve sum_i clip(base_i - alpha * weight_i, 0, cap_i) = amount for alpha.

    Returns the per-VM reclaim amounts ``x_i``.  The clipped sum is monotone
    non-increasing in alpha, so bisection converges unconditionally.  Callers
    guarantee ``0 <= amount <= sum(cap)``.
    """
    if amount <= _TOL:
        return np.zeros_like(base)
    total_cap = float(cap.sum())
    if amount >= total_cap - _TOL:
        return cap.copy()

    # One reused scratch buffer and raw ufunc calls with ``out=``: the
    # bisection evaluates the clipped sum ~80 times per solve and the
    # per-call allocations plus np.clip dispatch dominated the simulator's
    # priority-policy runs.  clip(x, 0, cap) == minimum(maximum(x, 0), cap)
    # bit for bit on finite data, so results are unchanged.
    tmp = np.empty_like(base)

    def clipped_sum(alpha: float) -> float:
        np.multiply(weight, alpha, out=tmp)
        np.subtract(base, tmp, out=tmp)
        np.maximum(tmp, 0.0, out=tmp)
        np.minimum(tmp, cap, out=tmp)
        return float(np.add.reduce(tmp))

    # Bracket: alpha low enough that everything is at cap, high enough that
    # everything is at zero.
    wpos = weight[weight > 0]
    wmin = float(wpos.min()) if wpos.size else 1.0
    lo = float((base - cap).min() / max(wmin, _TOL)) - 1.0
    hi = float(base.max() / max(wmin, _TOL)) + 1.0
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if clipped_sum(mid) > amount:
            lo = mid
        else:
            hi = mid
    x = np.clip(base - hi * weight, 0.0, cap)
    # Remove the last drops of bisection error by scaling inside the caps.
    total = float(x.sum())
    if total > _TOL:
        x = np.minimum(x * (amount / total), cap)
    return x


@dataclass(frozen=True)
class DeflationResult:
    """Outcome of a policy evaluation for one resource dimension."""

    allocations: np.ndarray  # new target allocation per VM
    reclaimed: np.ndarray  # capacity - allocation, per VM
    satisfied: bool  # True if total reclaimed >= requested amount

    @property
    def total_reclaimed(self) -> float:
        return float(self.reclaimed.sum())


class DeflationPolicy(abc.ABC):
    """Common interface for the server-level deflation policies."""

    #: Short machine-readable name, used by experiment harnesses.
    name: str = "abstract"

    @abc.abstractmethod
    def max_reclaimable(
        self, capacities: np.ndarray, minimums: np.ndarray, priorities: np.ndarray
    ) -> float:
        """Upper bound of what this policy can reclaim from the given pool."""

    @abc.abstractmethod
    def target_allocations(
        self,
        capacities: np.ndarray,
        minimums: np.ndarray,
        priorities: np.ndarray,
        required: float,
    ) -> DeflationResult:
        """Compute per-VM target allocations reclaiming >= ``required`` total.

        ``required <= 0`` means no pressure: all VMs return to full capacity
        (this is how reinflation is expressed).  If the pool cannot yield
        ``required`` even at maximum deflation, the policy deflates maximally
        and flags ``satisfied=False`` — the caller (cluster manager) treats
        that as a reclamation failure (Figure 20).
        """

    def target_allocations_trusted(
        self,
        capacities: np.ndarray,
        minimums: np.ndarray,
        priorities: np.ndarray,
        required: float,
    ) -> DeflationResult:
        """:meth:`target_allocations` for inputs the caller has validated.

        The cluster simulator evaluates policies tens of thousands of times
        per replay on per-server arrays it constructed itself (always valid
        float64, ``0 <= m_i <= M_i``, ``0 < pi_i <= 1``); re-validating them
        on every call dominated the solve cost.  The default delegates to
        :meth:`target_allocations`, so third-party policies keep working
        unchanged; the built-in policies override this to run the identical
        math without the checks — results are bit-for-bit the same.  A new
        policy may do the same, but only for inputs it is certain the
        simulator pre-validated: :meth:`target_allocations` remains the
        documented hook, and overrides of it are never bypassed (the
        built-ins guard with an exact ``type(self)`` check).
        """
        return self.target_allocations(capacities, minimums, priorities, required)

    # Convenience wrapper shared by all policies.
    def _finalize(
        self, capacities: np.ndarray, reclaim: np.ndarray, required: float
    ) -> DeflationResult:
        reclaim = np.minimum(reclaim, capacities)
        allocations = capacities - reclaim
        satisfied = float(reclaim.sum()) >= required - 1e-6
        return DeflationResult(allocations=allocations, reclaimed=reclaim, satisfied=satisfied)


@register("policy", "proportional")
class ProportionalPolicy(DeflationPolicy):
    """Eq. 1 (and Eq. 2 when minimum allocations are set).

    Every deflatable VM is deflated in proportion to its deflatable pool
    ``M_i - m_i``, which avoids excessively deflating small VMs.
    """

    name = "proportional"

    def max_reclaimable(self, capacities, minimums, priorities) -> float:
        caps, mins, _ = _validate_inputs(capacities, minimums, priorities)
        return float((caps - mins).sum())

    def target_allocations(self, capacities, minimums, priorities, required) -> DeflationResult:
        caps, mins, _ = _validate_inputs(capacities, minimums, priorities)
        return self._compute(caps, mins, required)

    def target_allocations_trusted(self, capacities, minimums, priorities, required):
        # Exact type check: a subclass overriding target_allocations (the
        # documented hook) must not be silently bypassed by the fast entry.
        if type(self) is not ProportionalPolicy:
            return self.target_allocations(capacities, minimums, priorities, required)
        return self._compute(capacities, np.minimum(minimums, capacities), required)

    def _compute(self, caps, mins, required) -> DeflationResult:
        pool = caps - mins
        if required <= _TOL or caps.size == 0:
            return self._finalize(caps, np.zeros_like(caps), max(required, 0.0))
        total = float(pool.sum())
        if total <= _TOL:
            return self._finalize(caps, np.zeros_like(caps), required)
        frac = min(required / total, 1.0)
        return self._finalize(caps, pool * frac, required)


@register("policy", "priority", priority_floor=True)
@register("policy", "priority-eq3", priority_floor=False)
class PriorityPolicy(DeflationPolicy):
    """Eqs. 3/4: weighted proportional deflation with priority-derived floors.

    The minimum allocation of VM *i* is ``max(m_i, pi_i * M_i)`` (Section
    5.1.2 suggests ``m_i = pi_i * M_i``), and the reclaim is weighted by
    ``pi_i * (M_i - m_i^eff)`` so low-priority VMs absorb more of the
    pressure.  The clamped water-filling solver keeps every VM inside
    ``[m_i^eff, M_i]`` while preserving the total.
    """

    name = "priority"

    def __init__(self, priority_floor: bool = True) -> None:
        #: When True (Eq. 4) the priority also sets the minimum allocation;
        #: when False (Eq. 3) only user-provided minimums apply.
        self.priority_floor = priority_floor

    def _effective_min(self, caps: np.ndarray, mins: np.ndarray, prios: np.ndarray) -> np.ndarray:
        if self.priority_floor:
            return np.maximum(mins, prios * caps)
        return mins

    def max_reclaimable(self, capacities, minimums, priorities) -> float:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        eff_min = self._effective_min(caps, mins, prios)
        return float((caps - eff_min).sum())

    def target_allocations(self, capacities, minimums, priorities, required) -> DeflationResult:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        return self._compute(caps, mins, prios, required)

    def target_allocations_trusted(self, capacities, minimums, priorities, required):
        # Exact type check: a subclass overriding target_allocations (the
        # documented hook) must not be silently bypassed by the fast entry.
        if type(self) is not PriorityPolicy:
            return self.target_allocations(capacities, minimums, priorities, required)
        return self._compute(
            capacities, np.minimum(minimums, capacities), priorities, required
        )

    def _compute(self, caps, mins, prios, required) -> DeflationResult:
        if required <= _TOL or caps.size == 0:
            return self._finalize(caps, np.zeros_like(caps), max(required, 0.0))
        eff_min = self._effective_min(caps, mins, prios)
        pool = caps - eff_min
        total = float(pool.sum())
        if total <= _TOL:
            return self._finalize(caps, np.zeros_like(caps), required)
        if required >= total - _TOL:
            return self._finalize(caps, pool, required)
        # Water-fill with weight pi_i * pool_i: the literal Eq. 3/4 solution
        # whenever it is interior, clamped otherwise.  Low priority => low
        # weight appears in `base - alpha*weight`?  We want low pi to receive
        # *more* reclaim, so weight the *retained* share by pi: x_i(alpha) =
        # pool_i - alpha * pi_i * pool_i.
        x = _waterfill_reclaim(base=pool, weight=prios * pool, cap=pool, amount=required)
        return self._finalize(caps, x, required)


@register("policy", "deterministic")
class DeterministicPolicy(DeflationPolicy):
    """Section 5.1.3: binary deflation in increasing priority order.

    A VM is either at 100% of its allocation or at ``pi_i * M_i``; VMs are
    deflated in decreasing deflatability (i.e. increasing ``pi_i``) until the
    requested amount is covered.  Because deflation is all-or-nothing the
    policy may overshoot ``required``; the overshoot is reported via
    ``reclaimed``.
    """

    name = "deterministic"

    def max_reclaimable(self, capacities, minimums, priorities) -> float:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        floor = np.maximum(mins, prios * caps)
        return float((caps - floor).sum())

    def target_allocations(self, capacities, minimums, priorities, required) -> DeflationResult:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        return self._compute(caps, mins, prios, required)

    def target_allocations_trusted(self, capacities, minimums, priorities, required):
        # Exact type check: a subclass overriding target_allocations (the
        # documented hook) must not be silently bypassed by the fast entry.
        if type(self) is not DeterministicPolicy:
            return self.target_allocations(capacities, minimums, priorities, required)
        return self._compute(
            capacities, np.minimum(minimums, capacities), priorities, required
        )

    def _compute(self, caps, mins, prios, required) -> DeflationResult:
        reclaim = np.zeros_like(caps)
        if required <= _TOL or caps.size == 0:
            return self._finalize(caps, reclaim, max(required, 0.0))
        floor = np.maximum(mins, prios * caps)
        yields = caps - floor
        # Deflate lowest-priority VMs first; break ties by larger yield so we
        # touch fewer VMs (stable for reproducibility).
        order = np.lexsort((-yields, prios))
        got = 0.0
        for idx in order:
            if got >= required - _TOL:
                break
            reclaim[idx] = yields[idx]
            got += float(yields[idx])
        return self._finalize(caps, reclaim, required)


#: Legacy view over the unified registry (kind ``policy``); used by the
#: simulator CLI and the benchmarks.  New policies registered via
#: ``@register("policy", ...)`` appear here automatically.
POLICIES: RegistryView = RegistryView("policy")


def get_policy(name: str) -> DeflationPolicy:
    """Look a policy up by name, raising a helpful error on typos."""
    try:
        return resolve("policy", name)
    except UnknownComponentError as exc:
        raise DeflationError(str(exc)) from None
