"""Server-level deflation policies (Section 5.1 of the paper).

All three policy families — proportional (Eqs. 1/2), priority-weighted
proportional (Eqs. 3/4) and deterministic — are implemented over plain NumPy
arrays so the cluster simulator can evaluate thousands of deflation events
cheaply.  A policy answers one question per resource dimension:

    given per-VM capacities ``M_i``, minimum allocations ``m_i``, priorities
    ``pi_i`` and a total amount ``R`` that must be reclaimed on this server,
    what is each deflatable VM's new target allocation?

Design note — *recompute-from-capacity semantics*: policies always compute
target allocations from the full capacities and the server's **current total
required reclaim**, not incrementally from the previous allocation.  Under
this formulation reinflation (Section 5.1.3, "run the proportional deflation
backwards") falls out automatically: when a VM departs, the required reclaim
drops and the recomputed targets are higher.  It also makes
deflate-then-reinflate exactly idempotent, which the property tests verify.

The proportional-family solver handles the clamping the paper leaves
implicit: the closed forms of Eqs. 1–4 can push an individual VM below zero
(or below ``m_i``) when priorities are heterogeneous, so we solve the
equivalent water-filling problem ``sum_i clip(b_i - alpha * w_i, 0, cap_i)
= R`` for the level ``alpha`` exactly: sort the 2n breakpoints where a
term enters or leaves its linear regime, walk the piecewise-linear clipped
sum to the active segment, and solve for ``alpha`` in closed form
(O(n log n), one pass).  This replaced an 80-iteration bisection — the
repo's first deliberate numerical change; the old solver is pinned
verbatim in :mod:`repro.core.waterfill_reference` and
``tests/core/test_waterfill_equivalence.py`` holds the two within 1e-9
(see docs/performance.md, "Deliberate numerical changes").

Policies also expose :meth:`DeflationPolicy.reclaim_plan`: a reusable
solver over a fixed (capacities, minimums, priorities) pool.  The cluster
simulator rebalances the same server membership many times with only the
required amount changing, so the priority policy hoists its breakpoint
sort into the plan and answers each solve in O(n).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import DeflationError, UnknownComponentError
from repro.registry import RegistryView, register, resolve

_TOL = 1e-9


def _validate_inputs(
    capacities: np.ndarray, minimums: np.ndarray, priorities: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    caps = np.asarray(capacities, dtype=np.float64)
    mins = np.asarray(minimums, dtype=np.float64)
    prios = np.asarray(priorities, dtype=np.float64)
    if caps.shape != mins.shape or caps.shape != prios.shape:
        raise DeflationError("capacities, minimums and priorities must have equal shapes")
    if (caps < -_TOL).any():
        raise DeflationError("capacities must be non-negative")
    if (mins < -_TOL).any() or (mins > caps + 1e-6).any():
        raise DeflationError("minimums must satisfy 0 <= m_i <= M_i")
    if (prios <= 0.0).any() or (prios > 1.0).any():
        raise DeflationError("priorities must be in (0, 1]")
    return caps, np.minimum(mins, caps), prios


class _WaterfillPlan:
    """Exact sorted-breakpoint water-fill over one fixed ``(base, weight, cap)``.

    Each positive-weight term ``x_i(alpha) = clip(base_i - alpha * weight_i,
    0, cap_i)`` is constant at ``cap_i`` below ``(base_i - cap_i) / weight_i``,
    linear in between, and zero above ``base_i / weight_i``; zero-weight terms
    contribute the alpha-independent ``clip(base_i, 0, cap_i)``.  The clipped
    sum is therefore piecewise linear and non-increasing in alpha with at most
    ``2n`` breakpoints.  Building the plan sorts those breakpoints once and
    prefix-sums the slope/intercept deltas (O(n log n)); each
    :meth:`reclaim` then finds the active segment with one vectorized
    comparison and solves for alpha in closed form — no iteration.

    The plan is reusable across ``amount`` values, which is how the cluster
    simulator amortizes the sort over a server's rebalance storm (see
    :meth:`DeflationPolicy.reclaim_plan`).
    """

    __slots__ = ("base", "weight", "cap", "total_cap", "_const", "_cap_sum_pos",
                 "_alphas", "_values", "_C", "_A", "_B", "_seg0")

    def __init__(self, base: np.ndarray, weight: np.ndarray, cap: np.ndarray) -> None:
        self.base = base
        self.weight = weight
        self.cap = cap
        self.total_cap = float(cap.sum())
        pos = weight > 0.0
        if pos.all():
            b, w, c = base, weight, cap
            self._const = 0.0
        else:
            b, w, c = base[pos], weight[pos], cap[pos]
            rest = base[~pos]
            self._const = float(np.minimum(np.maximum(rest, 0.0), cap[~pos]).sum())
        self._cap_sum_pos = float(c.sum())
        if c is b or np.array_equal(b, c):
            # cap == base (exactly the priority policy's shape: every term is
            # ``clip(pool_i - alpha * w_i, 0, pool_i)``): the cap-regime
            # breakpoint ``(b - c) / w`` is exactly 0 for every term, so the
            # only sweep events are the zero crossings at ``b / w`` — half
            # the events and no sort interleaving.  The pre-first-event
            # segment carries the full linear sum (``_seg0`` below); for a
            # requested amount above that segment's range the solved alpha
            # goes negative, where ``clip`` pins every term right back at
            # ``cap == base`` — the same vector the generic sweep's flat
            # alpha = 0 segment produces.
            alphas = b / w
            order = np.argsort(alphas, kind="stable")
            self._alphas = alphas[order]
            b_sum = float(b.sum())
            w_sum = float(w.sum())
            self._C = None
            self._A = b_sum - np.cumsum(b[order])
            self._B = w_sum - np.cumsum(w[order])
            self._seg0 = (0.0, b_sum, w_sum)
            self._values = self._const + self._A - self._alphas * self._B
            return
        # Sweep events: entering the linear regime at (b-c)/w trades the
        # constant c_i for the linear term b_i - alpha*w_i; hitting zero at
        # b/w removes the linear term.  Stable sort keeps tied breakpoints
        # deterministic (lo-events of equal alpha before hi-events).
        alphas = np.concatenate([(b - c) / w, b / w])
        order = np.argsort(alphas, kind="stable")
        self._alphas = alphas[order]
        d_const = np.concatenate([-c, np.zeros_like(c)])
        d_icept = np.concatenate([b, -b])
        d_slope = np.concatenate([w, -w])
        # Post-event running state: on the segment right of event j the
        # clipped sum is const + C[j] + A[j] - alpha * B[j].
        self._C = np.cumsum(d_const[order]) + self._cap_sum_pos
        self._A = np.cumsum(d_icept[order])
        self._B = np.cumsum(d_slope[order])
        self._seg0 = (self._cap_sum_pos, 0.0, 0.0)
        # Value of the clipped sum at each event point (continuity: the
        # post-event segment evaluated at the event's own alpha).
        self._values = self._const + self._C + self._A - self._alphas * self._B

    def reclaim(self, amount: float) -> np.ndarray:
        """Per-VM reclaim vector for this pool at the given total ``amount``.

        Same contract (and guard tolerances) as the pinned bisection in
        :mod:`repro.core.waterfill_reference`: callers guarantee
        ``0 <= amount <= sum(cap)``; the final in-cap rescale squeezes out
        the last float rounding so the total matches ``amount`` exactly
        whenever the pool can express it.
        """
        if amount <= _TOL:
            return np.zeros_like(self.base)
        if amount >= self.total_cap - _TOL:
            return self.cap.copy()
        alphas = self._alphas
        if alphas.size == 0:
            # No positive weights: the clipped sum is alpha-independent, so
            # any level yields the same vector (the bisection's converged
            # endpoint produced exactly this before its rescale).
            x = np.minimum(np.maximum(self.base, 0.0), self.cap)
        else:
            below = self._values <= amount
            if not bool(below.any()):
                # Even past the last breakpoint the zero-weight floor alone
                # exceeds `amount`: park every weighted term at zero and let
                # the rescale shrink inside the caps, exactly as the
                # bisection's converged upper bracket did.
                alpha = float(alphas[-1])
            else:
                j = int(np.argmax(below))
                if j == 0:
                    seg_c, seg_a, seg_b = self._seg0
                else:
                    seg_c = float(self._C[j - 1]) if self._C is not None else 0.0
                    seg_a = float(self._A[j - 1])
                    seg_b = float(self._B[j - 1])
                if seg_b > 0.0:
                    alpha = (self._const + seg_c + seg_a - amount) / seg_b
                else:
                    # Flat segment (tied breakpoints): every alpha on it maps
                    # to the same clipped vector; take the right endpoint.
                    alpha = float(alphas[j])
            x = np.clip(self.base - alpha * self.weight, 0.0, self.cap)
        total = float(x.sum())
        if total > _TOL:
            x = np.minimum(x * (amount / total), self.cap)
        return x


def _waterfill_reclaim(
    base: np.ndarray, weight: np.ndarray, cap: np.ndarray, amount: float
) -> np.ndarray:
    """Solve sum_i clip(base_i - alpha * weight_i, 0, cap_i) = amount for alpha.

    Returns the per-VM reclaim amounts ``x_i`` via the exact breakpoint
    solver.  Callers guarantee ``0 <= amount <= sum(cap)``.  One-shot entry;
    repeated solves over the same pool should build a :class:`_WaterfillPlan`
    (via :meth:`DeflationPolicy.reclaim_plan`) and reuse it.
    """
    return _WaterfillPlan(base, weight, cap).reclaim(amount)


@dataclass(frozen=True)
class DeflationResult:
    """Outcome of a policy evaluation for one resource dimension."""

    allocations: np.ndarray  # new target allocation per VM
    reclaimed: np.ndarray  # capacity - allocation, per VM
    satisfied: bool  # True if total reclaimed >= requested amount

    @property
    def total_reclaimed(self) -> float:
        return float(self.reclaimed.sum())


class DeflationPolicy(abc.ABC):
    """Common interface for the server-level deflation policies."""

    #: Short machine-readable name, used by experiment harnesses.
    name: str = "abstract"

    @abc.abstractmethod
    def max_reclaimable(
        self, capacities: np.ndarray, minimums: np.ndarray, priorities: np.ndarray
    ) -> float:
        """Upper bound of what this policy can reclaim from the given pool."""

    @abc.abstractmethod
    def target_allocations(
        self,
        capacities: np.ndarray,
        minimums: np.ndarray,
        priorities: np.ndarray,
        required: float,
    ) -> DeflationResult:
        """Compute per-VM target allocations reclaiming >= ``required`` total.

        ``required <= 0`` means no pressure: all VMs return to full capacity
        (this is how reinflation is expressed).  If the pool cannot yield
        ``required`` even at maximum deflation, the policy deflates maximally
        and flags ``satisfied=False`` — the caller (cluster manager) treats
        that as a reclamation failure (Figure 20).
        """

    def target_allocations_trusted(
        self,
        capacities: np.ndarray,
        minimums: np.ndarray,
        priorities: np.ndarray,
        required: float,
    ) -> DeflationResult:
        """:meth:`target_allocations` for inputs the caller has validated.

        The cluster simulator evaluates policies tens of thousands of times
        per replay on per-server arrays it constructed itself (always valid
        float64, ``0 <= m_i <= M_i``, ``0 < pi_i <= 1``); re-validating them
        on every call dominated the solve cost.  The default delegates to
        :meth:`target_allocations`, so third-party policies keep working
        unchanged; the built-in policies override this to run the identical
        math without the checks — results are bit-for-bit the same.  A new
        policy may do the same, but only for inputs it is certain the
        simulator pre-validated: :meth:`target_allocations` remains the
        documented hook, and overrides of it are never bypassed (the
        built-ins guard with an exact ``type(self)`` check).
        """
        return self.target_allocations(capacities, minimums, priorities, required)

    def reclaim_plan(self, capacities, minimums, priorities):
        """Reusable solver over one fixed, pre-validated pool.

        Returns ``solve(required) -> DeflationResult``, bit-identical to
        calling :meth:`target_allocations_trusted` with the same inputs.
        The cluster simulator rebalances the same server membership many
        times with only ``required`` changing (on-demand churn around a
        stable deflatable set), so a plan lets a policy hoist
        membership-dependent work — the priority policy's breakpoint sort —
        out of that loop.  The default simply closes over the trusted entry,
        so third-party policies keep working unchanged.  Callers must not
        mutate the arrays while the plan is live.
        """

        def solve(required: float) -> DeflationResult:
            return self.target_allocations_trusted(capacities, minimums, priorities, required)

        return solve

    # Convenience wrapper shared by all policies.
    def _finalize(
        self, capacities: np.ndarray, reclaim: np.ndarray, required: float
    ) -> DeflationResult:
        reclaim = np.minimum(reclaim, capacities)
        allocations = capacities - reclaim
        satisfied = float(reclaim.sum()) >= required - 1e-6
        return DeflationResult(allocations=allocations, reclaimed=reclaim, satisfied=satisfied)


@register("policy", "proportional")
class ProportionalPolicy(DeflationPolicy):
    """Eq. 1 (and Eq. 2 when minimum allocations are set).

    Every deflatable VM is deflated in proportion to its deflatable pool
    ``M_i - m_i``, which avoids excessively deflating small VMs.
    """

    name = "proportional"

    def max_reclaimable(self, capacities, minimums, priorities) -> float:
        caps, mins, _ = _validate_inputs(capacities, minimums, priorities)
        return float((caps - mins).sum())

    def target_allocations(self, capacities, minimums, priorities, required) -> DeflationResult:
        caps, mins, _ = _validate_inputs(capacities, minimums, priorities)
        return self._compute(caps, mins, required)

    def target_allocations_trusted(self, capacities, minimums, priorities, required):
        # Exact type check: a subclass overriding target_allocations (the
        # documented hook) must not be silently bypassed by the fast entry.
        if type(self) is not ProportionalPolicy:
            return self.target_allocations(capacities, minimums, priorities, required)
        return self._compute(capacities, np.minimum(minimums, capacities), required)

    def _compute(self, caps, mins, required) -> DeflationResult:
        pool = caps - mins
        if required <= _TOL or caps.size == 0:
            return self._finalize(caps, np.zeros_like(caps), max(required, 0.0))
        total = float(pool.sum())
        if total <= _TOL:
            return self._finalize(caps, np.zeros_like(caps), required)
        frac = min(required / total, 1.0)
        return self._finalize(caps, pool * frac, required)


@register("policy", "priority", priority_floor=True)
@register("policy", "priority-eq3", priority_floor=False)
class PriorityPolicy(DeflationPolicy):
    """Eqs. 3/4: weighted proportional deflation with priority-derived floors.

    The minimum allocation of VM *i* is ``max(m_i, pi_i * M_i)`` (Section
    5.1.2 suggests ``m_i = pi_i * M_i``), and the reclaim is weighted by
    ``pi_i * (M_i - m_i^eff)`` so low-priority VMs absorb more of the
    pressure.  The clamped water-filling solver keeps every VM inside
    ``[m_i^eff, M_i]`` while preserving the total.
    """

    name = "priority"

    def __init__(self, priority_floor: bool = True) -> None:
        #: When True (Eq. 4) the priority also sets the minimum allocation;
        #: when False (Eq. 3) only user-provided minimums apply.
        self.priority_floor = priority_floor

    def _effective_min(self, caps: np.ndarray, mins: np.ndarray, prios: np.ndarray) -> np.ndarray:
        if self.priority_floor:
            return np.maximum(mins, prios * caps)
        return mins

    def max_reclaimable(self, capacities, minimums, priorities) -> float:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        eff_min = self._effective_min(caps, mins, prios)
        return float((caps - eff_min).sum())

    def target_allocations(self, capacities, minimums, priorities, required) -> DeflationResult:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        return self._compute(caps, mins, prios, required)

    def target_allocations_trusted(self, capacities, minimums, priorities, required):
        # Exact type check: a subclass overriding target_allocations (the
        # documented hook) must not be silently bypassed by the fast entry.
        if type(self) is not PriorityPolicy:
            return self.target_allocations(capacities, minimums, priorities, required)
        return self._compute(
            capacities, np.minimum(minimums, capacities), priorities, required
        )

    def reclaim_plan(self, capacities, minimums, priorities):
        # Exact type check, same discipline as target_allocations_trusted:
        # a subclass overriding target_allocations (or _compute) must not be
        # silently bypassed by the cached fast path.
        if type(self) is not PriorityPolicy:
            return super().reclaim_plan(capacities, minimums, priorities)
        caps = capacities
        mins = np.minimum(minimums, capacities)
        eff_min = self._effective_min(caps, mins, priorities)
        pool = caps - eff_min
        total = float(pool.sum())
        # Guard order and tolerances below mirror _compute exactly, and the
        # plan's own entry guards are no-ops behind them, so the cached path
        # is bit-for-bit the one-shot path.
        plan = _WaterfillPlan(pool, priorities * pool, pool) if total > _TOL else None

        def solve(required: float) -> DeflationResult:
            if required <= _TOL or caps.size == 0:
                return self._finalize(caps, np.zeros_like(caps), max(required, 0.0))
            if total <= _TOL:
                return self._finalize(caps, np.zeros_like(caps), required)
            if required >= total - _TOL:
                return self._finalize(caps, pool, required)
            return self._finalize(caps, plan.reclaim(required), required)

        return solve

    def _compute(self, caps, mins, prios, required) -> DeflationResult:
        if required <= _TOL or caps.size == 0:
            return self._finalize(caps, np.zeros_like(caps), max(required, 0.0))
        eff_min = self._effective_min(caps, mins, prios)
        pool = caps - eff_min
        total = float(pool.sum())
        if total <= _TOL:
            return self._finalize(caps, np.zeros_like(caps), required)
        if required >= total - _TOL:
            return self._finalize(caps, pool, required)
        # Water-fill with weight pi_i * pool_i: the literal Eq. 3/4 solution
        # whenever it is interior, clamped otherwise.  Low priority => low
        # weight appears in `base - alpha*weight`?  We want low pi to receive
        # *more* reclaim, so weight the *retained* share by pi: x_i(alpha) =
        # pool_i - alpha * pi_i * pool_i.
        x = _waterfill_reclaim(base=pool, weight=prios * pool, cap=pool, amount=required)
        return self._finalize(caps, x, required)


@register("policy", "deterministic")
class DeterministicPolicy(DeflationPolicy):
    """Section 5.1.3: binary deflation in increasing priority order.

    A VM is either at 100% of its allocation or at ``pi_i * M_i``; VMs are
    deflated in decreasing deflatability (i.e. increasing ``pi_i``) until the
    requested amount is covered.  Because deflation is all-or-nothing the
    policy may overshoot ``required``; the overshoot is reported via
    ``reclaimed``.
    """

    name = "deterministic"

    def max_reclaimable(self, capacities, minimums, priorities) -> float:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        floor = np.maximum(mins, prios * caps)
        return float((caps - floor).sum())

    def target_allocations(self, capacities, minimums, priorities, required) -> DeflationResult:
        caps, mins, prios = _validate_inputs(capacities, minimums, priorities)
        return self._compute(caps, mins, prios, required)

    def target_allocations_trusted(self, capacities, minimums, priorities, required):
        # Exact type check: a subclass overriding target_allocations (the
        # documented hook) must not be silently bypassed by the fast entry.
        if type(self) is not DeterministicPolicy:
            return self.target_allocations(capacities, minimums, priorities, required)
        return self._compute(
            capacities, np.minimum(minimums, capacities), priorities, required
        )

    def _compute(self, caps, mins, prios, required) -> DeflationResult:
        reclaim = np.zeros_like(caps)
        if required <= _TOL or caps.size == 0:
            return self._finalize(caps, reclaim, max(required, 0.0))
        floor = np.maximum(mins, prios * caps)
        yields = caps - floor
        # Deflate lowest-priority VMs first; break ties by larger yield so we
        # touch fewer VMs (stable for reproducibility).
        order = np.lexsort((-yields, prios))
        got = 0.0
        for idx in order:
            if got >= required - _TOL:
                break
            reclaim[idx] = yields[idx]
            got += float(yields[idx])
        return self._finalize(caps, reclaim, required)


#: Legacy view over the unified registry (kind ``policy``); used by the
#: simulator CLI and the benchmarks.  New policies registered via
#: ``@register("policy", ...)`` appear here automatically.
POLICIES: RegistryView = RegistryView("policy")


def get_policy(name: str) -> DeflationPolicy:
    """Look a policy up by name, raising a helpful error on typos."""
    try:
        return resolve("policy", name)
    except UnknownComponentError as exc:
        raise DeflationError(str(exc)) from None
