"""Multi-dimensional resource vectors.

The paper treats a VM's demand and a server's capacity as four-dimensional
vectors — CPU cores, memory, disk bandwidth, and network bandwidth — and all
deflation policies and the placement fitness function (Section 5.2) operate on
these vectors.  :class:`ResourceVector` is a small, NumPy-backed value type:
cheap to construct, supports elementwise arithmetic, and exposes the cosine
fitness used for deflation-aware placement.

Units are fixed by convention: ``cpu`` in cores (fractional allowed — the
transparent mechanism can multiplex at fine grain), ``memory_mb`` in MiB,
``disk_mbps`` and ``net_mbps`` in MB/s.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Union

import numpy as np

from repro.errors import ResourceError

#: Order of the resource dimensions inside the backing array.
RESOURCE_KINDS: tuple[str, ...] = ("cpu", "memory_mb", "disk_mbps", "net_mbps")

#: Number of resource dimensions.
NUM_RESOURCES: int = len(RESOURCE_KINDS)

_Scalar = Union[int, float]


class ResourceVector:
    """A fixed-dimension vector of resource quantities.

    Instances are immutable by convention: every arithmetic operation returns
    a new vector.  The backing array is float64 so fractional CPU allocations
    (cgroup shares) are representable.
    """

    __slots__ = ("_v",)

    def __init__(
        self,
        cpu: _Scalar = 0.0,
        memory_mb: _Scalar = 0.0,
        disk_mbps: _Scalar = 0.0,
        net_mbps: _Scalar = 0.0,
    ) -> None:
        self._v = np.array(
            [float(cpu), float(memory_mb), float(disk_mbps), float(net_mbps)],
            dtype=np.float64,
        )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_array(cls, arr: Iterable[float]) -> "ResourceVector":
        """Build a vector from any 4-element iterable (no copy validation)."""
        a = np.asarray(list(arr) if not isinstance(arr, np.ndarray) else arr, dtype=np.float64)
        if a.shape != (NUM_RESOURCES,):
            raise ResourceError(f"expected {NUM_RESOURCES} components, got shape {a.shape}")
        rv = cls.__new__(cls)
        rv._v = a.copy()
        return rv

    @classmethod
    def zeros(cls) -> "ResourceVector":
        return cls()

    @classmethod
    def full(cls, value: _Scalar) -> "ResourceVector":
        """A vector with every component equal to ``value``."""
        return cls(value, value, value, value)

    # -- component access ------------------------------------------------------

    @property
    def cpu(self) -> float:
        return float(self._v[0])

    @property
    def memory_mb(self) -> float:
        return float(self._v[1])

    @property
    def disk_mbps(self) -> float:
        return float(self._v[2])

    @property
    def net_mbps(self) -> float:
        return float(self._v[3])

    def as_array(self) -> np.ndarray:
        """Return a *copy* of the backing array (callers may mutate it)."""
        return self._v.copy()

    def component(self, kind: str) -> float:
        """Look a component up by its name in :data:`RESOURCE_KINDS`."""
        try:
            return float(self._v[RESOURCE_KINDS.index(kind)])
        except ValueError:
            raise ResourceError(f"unknown resource kind {kind!r}") from None

    def replace(self, **kwargs: _Scalar) -> "ResourceVector":
        """Return a copy with the named components replaced."""
        vals = dict(zip(RESOURCE_KINDS, self._v))
        for key, val in kwargs.items():
            if key not in vals:
                raise ResourceError(f"unknown resource kind {key!r}")
            vals[key] = float(val)
        return ResourceVector(**vals)

    def __iter__(self) -> Iterator[float]:
        return iter(self._v.tolist())

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector.from_array(self._v + other._v)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector.from_array(self._v - other._v)

    def __mul__(self, scalar: _Scalar) -> "ResourceVector":
        return ResourceVector.from_array(self._v * float(scalar))

    __rmul__ = __mul__

    def __truediv__(self, scalar: _Scalar) -> "ResourceVector":
        return ResourceVector.from_array(self._v / float(scalar))

    def __neg__(self) -> "ResourceVector":
        return ResourceVector.from_array(-self._v)

    def scale_by(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise (Hadamard) product — useful for fractional deflation."""
        return ResourceVector.from_array(self._v * other._v)

    def elementwise_min(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector.from_array(np.minimum(self._v, other._v))

    def elementwise_max(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector.from_array(np.maximum(self._v, other._v))

    def clamp_nonnegative(self) -> "ResourceVector":
        return ResourceVector.from_array(np.maximum(self._v, 0.0))

    def fraction_of(self, other: "ResourceVector") -> np.ndarray:
        """Per-component ratio self/other, with 0/0 defined as 1 (no demand)."""
        out = np.ones(NUM_RESOURCES)
        nz = other._v > 0
        out[nz] = self._v[nz] / other._v[nz]
        return out

    # -- comparisons -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return bool(np.array_equal(self._v, other._v))

    def __hash__(self) -> int:
        return hash(self._v.tobytes())

    def fits_within(self, other: "ResourceVector", tol: float = 1e-9) -> bool:
        """True if every component of self is <= the matching one of other."""
        return bool(np.all(self._v <= other._v + tol))

    def dominates(self, other: "ResourceVector", tol: float = 1e-9) -> bool:
        """True if every component of self is >= the matching one of other."""
        return bool(np.all(self._v + tol >= other._v))

    def is_nonnegative(self, tol: float = 1e-9) -> bool:
        return bool(np.all(self._v >= -tol))

    def is_zero(self, tol: float = 1e-9) -> bool:
        return bool(np.all(np.abs(self._v) <= tol))

    def any_positive(self, tol: float = 1e-9) -> bool:
        return bool(np.any(self._v > tol))

    # -- aggregates ------------------------------------------------------------

    def norm(self) -> float:
        return float(np.linalg.norm(self._v))

    def total(self) -> float:
        return float(self._v.sum())

    def max_component(self) -> float:
        return float(self._v.max())

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:g}" for k, v in zip(RESOURCE_KINDS, self._v))
        return f"ResourceVector({parts})"


def cosine_fitness(demand: ResourceVector, availability: ResourceVector, eps: float = 1e-12) -> float:
    """Cosine-similarity fitness between a demand and an availability vector.

    This is the placement fitness from Section 5.2 of the paper (following
    Tetris [Grandl et al.]): ``fitness(D, A) = A·D / (|A| |D|)``.  When the
    availability vector is all-zero the paper adds a small epsilon rather than
    dividing by zero; we mirror that so fully-loaded servers score ~0 instead
    of raising.
    """
    a = availability.as_array()
    d = demand.as_array()
    na = float(np.linalg.norm(a))
    nd = float(np.linalg.norm(d))
    if nd < eps:
        raise ResourceError("demand vector must be non-zero for fitness computation")
    if na < eps:
        na = eps
    return float(np.dot(a, d) / (na * nd))


def sum_vectors(vectors: Iterable[ResourceVector]) -> ResourceVector:
    """Sum an iterable of resource vectors (zeros when empty)."""
    acc = np.zeros(NUM_RESOURCES)
    for vec in vectors:
        acc += vec.as_array()
    return ResourceVector.from_array(acc)
