"""Summary statistics for the feasibility figures (box plots, percentiles)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError


@dataclass(frozen=True)
class BoxStats:
    """The five-number summary plus mean, matching a matplotlib boxplot."""

    median: float
    q1: float
    q3: float
    whisker_lo: float
    whisker_hi: float
    mean: float
    n: int

    def as_row(self) -> tuple[float, ...]:
        return (self.whisker_lo, self.q1, self.median, self.q3, self.whisker_hi)


def boxplot_stats(values: np.ndarray) -> BoxStats:
    """Compute Tukey boxplot statistics (1.5*IQR whiskers, clipped to data)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise TraceError("cannot summarize an empty sample")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_bound = q1 - 1.5 * iqr
    hi_bound = q3 + 1.5 * iqr
    inside = arr[(arr >= lo_bound) & (arr <= hi_bound)]
    # Degenerate distributions (all identical) keep whiskers at the value.
    whisker_lo = float(inside.min()) if inside.size else float(arr.min())
    whisker_hi = float(inside.max()) if inside.size else float(arr.max())
    return BoxStats(
        median=float(med),
        q1=float(q1),
        q3=float(q3),
        whisker_lo=whisker_lo,
        whisker_hi=whisker_hi,
        mean=float(arr.mean()),
        n=int(arr.size),
    )


def percentile_summary(values: np.ndarray, percentiles=(50, 90, 95, 99)) -> dict[int, float]:
    """Named percentiles of a sample, used by the latency experiments."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise TraceError("cannot summarize an empty sample")
    values_out = np.percentile(arr, list(percentiles))
    return {int(p): float(v) for p, v in zip(percentiles, values_out)}
