"""Section 3 feasibility analysis: underallocation sweeps and statistics."""

from repro.feasibility.analysis import (
    DEFAULT_DEFLATION_LEVELS,
    DeflationSweepResult,
    deflation_sweep,
    grouped_deflation_sweep,
    max_safe_deflation_per_vm,
    throughput_loss,
    underallocation_fraction,
    underallocation_fractions_bulk,
    underallocation_series,
    utilization_summary,
)
from repro.feasibility.stats import BoxStats, boxplot_stats, percentile_summary

__all__ = [
    "DEFAULT_DEFLATION_LEVELS",
    "DeflationSweepResult",
    "deflation_sweep",
    "grouped_deflation_sweep",
    "max_safe_deflation_per_vm",
    "throughput_loss",
    "underallocation_fraction",
    "underallocation_fractions_bulk",
    "underallocation_series",
    "utilization_summary",
    "BoxStats",
    "boxplot_stats",
    "percentile_summary",
]
