"""Deflation feasibility analysis (Section 3.2 of the paper).

The central quantity: for a utilization series ``u(t)`` (fraction of the
*allocated* resource) and a deflation level ``d``, the VM is *underallocated*
whenever ``u(t) > 1 - d`` — its usage exceeds the deflated allocation.  The
analysis reports, per VM, the fraction of its lifetime spent underallocated
(Figures 5–12), and, for throughput, the area of the usage curve above the
allocation (Figure 4):

    total underallocation = sum_t max(0, u(t) - a(t))

which the paper identifies with the decrease in application throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.feasibility.stats import BoxStats, boxplot_stats

#: The deflation levels swept in the paper's feasibility figures.
DEFAULT_DEFLATION_LEVELS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def underallocation_fraction(utilization: np.ndarray, deflation: float) -> float:
    """Fraction of intervals where usage exceeds the deflated allocation."""
    if not (0.0 <= deflation < 1.0):
        raise TraceError(f"deflation must be in [0, 1), got {deflation}")
    u = np.asarray(utilization, dtype=np.float64)
    if u.size == 0:
        raise TraceError("empty utilization series")
    return float(np.mean(u > (1.0 - deflation) + 1e-12))


def underallocation_fractions_bulk(
    series_list: list[np.ndarray], deflation: float
) -> np.ndarray:
    """Per-VM underallocation fractions for one deflation level."""
    return np.array([underallocation_fraction(s, deflation) for s in series_list])


def underallocation_series(
    utilization: np.ndarray, allocation: np.ndarray
) -> tuple[np.ndarray, float, float]:
    """Figure 4's quantities for a time-varying allocation.

    Returns ``(overflow_series, total_underallocation, time_underallocated)``
    where ``overflow_series[t] = max(0, u(t) - a(t))``, the total is its sum
    (the throughput decrease) and the time is the fraction of intervals with
    positive overflow.
    """
    u = np.asarray(utilization, dtype=np.float64)
    a = np.asarray(allocation, dtype=np.float64)
    if u.shape != a.shape:
        raise TraceError("utilization and allocation series must align")
    overflow = np.maximum(0.0, u - a)
    time_frac = float(np.mean(overflow > 1e-12)) if u.size else 0.0
    return overflow, float(overflow.sum()), time_frac


def throughput_loss(utilization: np.ndarray, allocation: np.ndarray) -> float:
    """Lost work as a fraction of demanded work (Section 7.4.2).

    "The loss in throughput only occurs when a VM is deflated below its CPU
    usage, and is proportional to the total underutilization (area under the
    curve of Figure 4)."
    """
    u = np.asarray(utilization, dtype=np.float64)
    overflow, total_under, _ = underallocation_series(u, allocation)
    demanded = float(u.sum())
    if demanded <= 0.0:
        return 0.0
    return total_under / demanded


@dataclass(frozen=True)
class DeflationSweepResult:
    """Boxplot statistics of underallocation time at each deflation level."""

    levels: tuple[float, ...]
    stats: tuple[BoxStats, ...]

    def medians(self) -> np.ndarray:
        return np.array([s.median for s in self.stats])

    def means(self) -> np.ndarray:
        return np.array([s.mean for s in self.stats])

    def as_table(self) -> list[dict[str, float]]:
        """Rows suitable for printing: one per deflation level."""
        return [
            {
                "deflation_pct": 100 * lvl,
                "whisker_lo": s.whisker_lo,
                "q1": s.q1,
                "median": s.median,
                "q3": s.q3,
                "whisker_hi": s.whisker_hi,
                "mean": s.mean,
            }
            for lvl, s in zip(self.levels, self.stats)
        ]


def deflation_sweep(
    series_list: list[np.ndarray],
    levels: tuple[float, ...] = DEFAULT_DEFLATION_LEVELS,
) -> DeflationSweepResult:
    """Sweep deflation levels over a population of utilization series.

    This is the computation behind Figures 5, 6, 7, 8 (CPU), 9 (memory),
    11 (disk) and 12 (network): for each level, the distribution over VMs of
    the fraction of time spent above the deflated allocation.
    """
    if not series_list:
        raise TraceError("need at least one utilization series")
    stats = tuple(
        boxplot_stats(underallocation_fractions_bulk(series_list, lvl)) for lvl in levels
    )
    return DeflationSweepResult(levels=tuple(levels), stats=stats)


def grouped_deflation_sweep(
    groups: dict[str, list[np.ndarray]],
    levels: tuple[float, ...] = DEFAULT_DEFLATION_LEVELS,
) -> dict[str, DeflationSweepResult]:
    """Per-group sweeps, e.g. by workload class (Fig 6), size (Fig 7), or
    peak utilization (Fig 8)."""
    out: dict[str, DeflationSweepResult] = {}
    for label, series in groups.items():
        if series:
            out[label] = deflation_sweep(series, levels)
    return out


def utilization_summary(series_list: list[np.ndarray]) -> BoxStats:
    """Distribution of raw utilization values pooled over all series.

    Used for Figure 10 (memory bandwidth), where the paper reports the mean
    and maximum utilization rather than an underallocation sweep.
    """
    if not series_list:
        raise TraceError("need at least one series")
    pooled = np.concatenate([np.asarray(s, dtype=np.float64) for s in series_list])
    return boxplot_stats(pooled)


def max_safe_deflation_per_vm(
    series_list: list[np.ndarray],
    tolerance: float = 0.01,
    levels: np.ndarray | None = None,
) -> np.ndarray:
    """Largest deflation keeping each VM underallocated <= ``tolerance``.

    Quantifies "slack" per VM: how far can we deflate with (almost) no time
    above the allocation.  Returns one value per series.
    """
    if levels is None:
        levels = np.linspace(0.0, 0.95, 96)
    out = np.zeros(len(series_list))
    for i, series in enumerate(series_list):
        u = np.asarray(series, dtype=np.float64)
        best = 0.0
        for lvl in levels:
            if float(np.mean(u > (1.0 - lvl) + 1e-12)) <= tolerance:
                best = float(lvl)
            else:
                break
        out[i] = best
    return out
