"""Sharded scale-out engine: partitioned scenarios on parallel workers.

The single-process :class:`~repro.scenario.engine.ClusterSimEngine` tops
out around 20k-VM traces; datacenter-scale studies (100k VMs and beyond)
need the replay spread over workers.  Partitioned placement mode (Section
5.2.1) already routes every VM to one of a handful of *disjoint* server
pools — one per priority level plus an on-demand pool — and a pool never
reads or writes another pool's state.  That makes the pool boundary a
perfect shard boundary: this module splits a partitioned scenario into
per-pool sub-scenarios, replays them in parallel worker processes, and
merges the shard results into one :class:`ClusterSimResult` that is
**bit-identical** to running the same scenario flat on ``cluster-sim``
(enforced by ``tests/simulator/test_sharded_equivalence.py``).

How the split stays exact
-------------------------

* **Servers and VMs** — :func:`~repro.simulator.cluster_sim.partition_layout`
  lays pools out contiguously, so shard ``k`` owns global servers
  ``[offset_k, offset_k + count_k)`` and exactly the VMs
  :func:`~repro.simulator.cluster_sim.vm_pool_assignment` routes to pool
  ``k``.  Each shard replays as an ordinary *non-partitioned* simulator:
  within one pool, the flat partitioned run restricts every candidate set
  to the pool's members, which is precisely "the whole cluster" from the
  shard's point of view (the gathered and ungathered array paths compute
  identical values).

* **Failure schedules** — the *flat* schedule is generated once from the
  scenario's failure spec (same model, same seed, same cluster size and
  horizon as ``cluster-sim`` would use), then sliced by server pool with
  indices remapped to shard-local.  Shards replay their slice verbatim
  through a preset-schedule model, so every shard sees exactly the events
  the flat run would deliver to its servers — re-generating per shard
  would draw different randomness and break equivalence.

* **Floats** — cross-shard float accumulations are never merged by adding
  per-shard subtotals (float addition is not associative).  Instead the
  shards ship *per-term* data and the merger replays the flat run's exact
  accumulation order: per-VM metric terms are re-reduced in global VM
  order through :func:`~repro.simulator.cluster_sim.reduce_vm_terms`, and
  committed-cores deltas plus injector summary terms are replayed in the
  global event order ``(time, kind, key)`` — the same sort key both event
  loops use.  Committed-cores values are integer-valued, so the delta
  replay is exact.

Caveats (see ``docs/engines.md``): the scenario must be partitioned; the
degenerate pools-outnumber-servers regime is refused; metrics collectors
must implement ``merge_shards`` (the ``timeline`` collector, which records
a cluster-global series, cannot); and worker count never changes results —
it only changes wall-clock time.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.failures.injector import (
    _ARRIVAL,
    _DEADLINE,
    _DIP_END,
    _DIP_START,
    _END,
    _EVAC,
    _REVOKE,
    _START,
    FailureInjector,
)
from repro.failures.models import FailureEvent, FailureModel
from repro.registry import create, register
from repro.runtime import raise_on_failures, supervised_map
from repro.scenario.engine import Engine, resolve_workload
from repro.scenario.results import ScenarioResult
from repro.scenario.scenario import Scenario
from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimResult,
    ClusterSimulator,
    VMMetricTerms,
    partition_layout,
    reduce_vm_terms,
    servers_for_overcommitment,
    vm_class_arrays,
    vm_pool_assignment,
)
from repro.simulator.components import MetricsCollector
from repro.traces.schema import VMTraceSet

#: Injector summary metrics that are float accumulations (order-sensitive);
#: the merger replays their terms in global event order instead of summing
#: per-shard subtotals.
_FLOAT_SUMMARY_METRICS = (
    "downtime_intervals",
    "absorbed_core_intervals",
    "lost_core_intervals",
    "arrived_nominal_cores",
)


# -- shard planning ------------------------------------------------------------------


@dataclass(frozen=True)
class ShardMap:
    """Shard-local → global index maps, handed to collector merge hooks."""

    vm_global: np.ndarray  # shard-local VM index -> global VM index
    server_offset: int  # shard-local server 0 == this global index
    n_servers: int  # servers owned by the shard at construction
    #: Global indices of servers that *arrive* into this shard mid-run
    #: (elastic pools), in arrival order: shard-local server
    #: ``n_servers + i`` is global ``arrival_globals[i]``.
    arrival_globals: tuple[int, ...] = ()

    def to_global_server(self, local: int) -> int:
        """Global index of a shard-local server (base range or arrival)."""
        if local < self.n_servers:
            return self.server_offset + local
        return self.arrival_globals[local - self.n_servers]


@dataclass
class ShardSpec:
    """Everything one worker needs to replay a single pool.

    Plain picklable data: sub-trace, a *non-partitioned* simulator config,
    the local→global index maps, and (for failure-injected scenarios) the
    pre-sliced, locally-reindexed failure schedule plus the injector's
    response/drain knobs.
    """

    shard_id: int
    traces: VMTraceSet
    config: ClusterSimConfig
    vm_global: np.ndarray
    server_offset: int
    failures: tuple[FailureEvent, ...] | None
    response: str
    restart_delay: float | None
    warning_intervals: float | None = None
    evacuation_budget: int | dict | None = None
    arrival_globals: tuple[int, ...] = ()

    @property
    def map(self) -> ShardMap:
        return ShardMap(
            vm_global=self.vm_global,
            server_offset=self.server_offset,
            n_servers=self.config.n_servers,
            arrival_globals=self.arrival_globals,
        )


@dataclass
class ShardPlan:
    """The resolved split of one scenario: total cluster size + shard specs."""

    n_servers: int
    specs: list[ShardSpec]


def plan_shards(scenario: Scenario) -> ShardPlan:
    """Split a partitioned scenario into per-pool shard specs.

    Raises :class:`SimulationError` for scenarios the sharded engine cannot
    run exactly: non-partitioned placement (there is no shard boundary),
    the pools-outnumber-servers regime (pools with zero servers), and
    collectors without a ``merge_shards`` hook.
    """
    if not scenario.partitioned:
        raise SimulationError(
            "the sharded engine shards along priority-pool boundaries and "
            "requires partitioned placement; use with_partitions() or run "
            "this scenario on the 'cluster-sim' engine"
        )
    if scenario.checkpoint is not None:
        raise SimulationError(
            "the sharded engine cannot resume a checkpoint: a SimSnapshot "
            "freezes one flat simulator, not per-pool shards — run "
            "checkpointed scenarios on the 'cluster-sim' engine"
        )
    for name in scenario.collectors:
        collector = create("metrics", name)
        if (
            type(collector).merge_shards is MetricsCollector.merge_shards
            or not getattr(collector, "mergeable", True)
        ):
            raise SimulationError(
                f"metrics collector {name!r} does not implement merge_shards; "
                "it cannot observe a sharded replay exactly — drop it or run "
                "on the 'cluster-sim' engine"
            )

    traces = resolve_workload(scenario)
    if scenario.n_servers is not None:
        n_servers = scenario.n_servers
    else:
        target = scenario.overcommitment if scenario.overcommitment is not None else 0.0
        n_servers = servers_for_overcommitment(
            traces, target, cores_per_server=scenario.cores_per_server
        )

    # Per-VM class/priority/capacity — the exact mapping _prepare_vms uses.
    vm_caps, vm_prio, vm_deflatable = vm_class_arrays(traces)
    levels, counts = partition_layout(vm_prio, vm_deflatable, vm_caps, n_servers)
    if np.any(counts == 0):
        raise SimulationError(
            f"cannot shard {len(counts)} pools across {n_servers} servers "
            "(pools outnumber servers, so some pools own no servers); grow "
            "the cluster or run on the 'cluster-sim' engine"
        )
    offsets = np.concatenate(([0], np.cumsum(counts)))
    vm_pool = vm_pool_assignment(vm_prio, vm_deflatable, levels)

    # Failure schedule: generate the flat schedule once, slice per pool.
    # Arrivals route to pool ``ordinal mod n_pools`` — the same static rule
    # ``ClusterSimulator._attach_server`` applies in the flat partitioned
    # replay — and take the next shard-local indices past the shard's base
    # servers, so later events on arrived servers remap through the same
    # table the merger uses to restore global indices.
    sliced: list[tuple[FailureEvent, ...] | None] = [None] * len(counts)
    arrival_globals: list[list[int]] = [[] for _ in counts]
    response, restart_delay = "evacuate", 1.0
    warning_intervals: float | None = None
    evacuation_budget: int | dict | None = None
    if scenario.failures is not None:
        injector = FailureInjector.from_spec(scenario.failures, topology=scenario.topology)
        response, restart_delay = injector.response, injector.restart_delay
        warning_intervals = injector.warning_intervals
        evacuation_budget = injector.evacuation_budget
        schedule = injector.schedule(n_servers, float(traces.horizon()))
        local_of: dict[int, tuple[int, int]] = {}  # arrived global -> (pool, local)
        arrived = sorted(ev.server for ev in schedule if ev.action == "arrive")
        for g in arrived:  # ascending global == arrival (time) order
            k = (g - n_servers) % len(counts)
            local = int(counts[k]) + len(arrival_globals[k])
            arrival_globals[k].append(g)
            local_of[g] = (k, local)
        per_pool: list[list[FailureEvent]] = [[] for _ in counts]
        for ev in schedule:
            if ev.server >= n_servers:
                k, local = local_of[ev.server]
            else:
                k = int(np.searchsorted(offsets, ev.server, side="right")) - 1
                local = ev.server - int(offsets[k])
            per_pool[k].append(dataclasses.replace(ev, server=local))
        sliced = [tuple(evs) for evs in per_pool]

    specs = []
    for k, count in enumerate(counts.tolist()):
        idx = np.nonzero(vm_pool == k)[0]
        config = ClusterSimConfig(
            n_servers=int(count),
            cores_per_server=scenario.cores_per_server,
            memory_per_server_mb=scenario.memory_per_server_mb,
            policy=scenario.policy,
            partitioned=False,
            min_fraction=scenario.min_fraction,
            admission=scenario.admission,
            scorer=scenario.scorer,
            collectors=scenario.collectors,
        )
        specs.append(
            ShardSpec(
                shard_id=k,
                traces=VMTraceSet([traces.records[i] for i in idx.tolist()]),
                config=config,
                vm_global=idx,
                server_offset=int(offsets[k]),
                failures=sliced[k],
                response=response,
                restart_delay=restart_delay,
                warning_intervals=warning_intervals,
                evacuation_budget=evacuation_budget,
                arrival_globals=tuple(arrival_globals[k]),
            )
        )
    return ShardPlan(n_servers=n_servers, specs=specs)


# -- shard execution -----------------------------------------------------------------


class _PresetSchedule(FailureModel):
    """Replays a pre-sliced failure schedule verbatim (shard-internal).

    Deliberately not registered and deliberately *not* horizon-filtered: a
    shard's local horizon can end before a late global failure event that
    the flat run still counts (revoking an idle server bumps the summary
    counters), so the slice must pass through untouched.
    """

    name = "preset-schedule"

    def __init__(self, events: tuple[FailureEvent, ...]) -> None:
        self._events = tuple(events)

    def events(self, n_servers, horizon, rng):
        return list(self._events)


class _ShardSimulator(ClusterSimulator):
    """One pool's replay, with the event recording the merger needs.

    Identical to :class:`ClusterSimulator` except it (a) accepts empty
    trace sets (a pool may own servers but no VMs — they still count
    toward capacity and still receive failure events), (b) stashes the
    per-VM metric terms computed during collection, and (c) logs
    ``(t, kind, vm, committed_after)`` whenever committed cores change, so
    the merger can reconstruct the *global* committed-cores trajectory —
    and therefore the flat run's exact peak — by replaying shard deltas in
    global event order.
    """

    _allow_empty = True

    def __init__(self, traces: VMTraceSet, config: ClusterSimConfig) -> None:
        super().__init__(traces, config)
        self.event_log: list[tuple] = []
        self.terms: VMMetricTerms | None = None

    def _metric_terms(self) -> VMMetricTerms:
        self.terms = super()._metric_terms()
        return self.terms

    def run(self) -> ClusterSimResult:
        if self._injector is not None:
            # The recording injector logs events itself.
            return super().run()
        self._refresh_derived()
        n = len(self.traces)
        events = np.empty(
            2 * n, dtype=[("t", np.float64), ("kind", np.int8), ("vm", np.int64)]
        )
        events["t"][:n] = self.vm_end
        events["kind"][:n] = 0
        events["vm"][:n] = np.arange(n)
        events["t"][n:] = self.vm_start
        events["kind"][n:] = 1
        events["vm"][n:] = np.arange(n)
        events.sort(order=("t", "kind", "vm"))

        peak = prev = 0.0
        log = self.event_log
        handle_start, handle_end = self._handle_start, self._handle_end
        for t, kind, vm in zip(
            events["t"].tolist(), events["kind"].tolist(), events["vm"].tolist()
        ):
            if kind == 0:
                handle_end(t, vm)
            else:
                handle_start(t, vm)
                if self._committed_cores > peak:
                    peak = self._committed_cores
            committed = self._committed_cores
            if committed != prev:
                # Log the injector's ordering codes, not the structured
                # array's local 0/1 — the merger's (t, kind, key) sort and
                # its server-vs-VM key remap assume one shared code space.
                log.append((t, _END if kind == 0 else _START, vm, committed, ()))
                prev = committed
        return self._collect(peak)


class _RecordingInjector(FailureInjector):
    """Failure injector that logs per-event state for the shard merger.

    Each logged entry is ``(t, kind, local_key, committed_after, terms)``
    where ``terms`` are the ``(metric, value)`` accruals of that event, in
    accrual order.  Entries are only logged when something order-sensitive
    happened (committed cores changed, or a float summary term accrued);
    everything else merges by integer summation and needs no replay.
    """

    def _reset(self) -> None:
        super()._reset()
        self.event_log: list[tuple] = []
        self._pending: list[tuple[str, float]] = []
        self._last_committed = 0.0

    def _accrue(self, metric: str, value: float) -> None:
        super()._accrue(metric, value)
        self._pending.append((metric, value))

    def _after_event(self, sim, t: float, kind: int, key: int) -> None:
        committed = sim._committed_cores
        if self._pending or committed != self._last_committed:
            self.event_log.append((t, kind, key, committed, tuple(self._pending)))
            self._pending = []
            self._last_committed = committed


@dataclass
class ShardOutput:
    """What one worker ships back: shard result + merge ingredients."""

    shard_id: int
    result: ClusterSimResult
    terms: VMMetricTerms  # sel remapped to *global* VM indices
    ev_t: np.ndarray  # event times
    ev_kind: np.ndarray  # event kinds (the injector's global ordering codes)
    ev_key: np.ndarray  # global VM/server index of each event
    ev_delta: np.ndarray  # committed-cores delta of each event
    ev_terms: list[tuple[int, tuple]]  # sparse (event idx, ((metric, value), ...))
    failure_summary: dict | None


#: Kinds whose event key is a server index (remapped through the shard
#: map's base-range offset or arrival table); all other kinds key by VM
#: index (remapped through ``vm_global``).
_SERVER_KEYED_KINDS = (_ARRIVAL, _REVOKE, _DIP_START, _DIP_END, _EVAC, _DEADLINE)


def _run_shard(spec: ShardSpec) -> ShardOutput:
    """Replay one shard; runs in a worker process (or inline)."""
    sim = _ShardSimulator(spec.traces, spec.config)
    if spec.failures is not None:
        sim.attach_failures(
            _RecordingInjector(
                _PresetSchedule(spec.failures),
                response=spec.response,
                restart_delay=spec.restart_delay,
                warning_intervals=spec.warning_intervals,
                evacuation_budget=spec.evacuation_budget,
            )
        )
    result = sim.run()

    terms = sim.terms._replace(sel=spec.vm_global[sim.terms.sel])
    log = sim._injector.event_log if sim._injector is not None else sim.event_log
    shard_map = spec.map
    m = len(log)
    ev_t = np.empty(m, dtype=np.float64)
    ev_kind = np.empty(m, dtype=np.int8)
    ev_key = np.empty(m, dtype=np.int64)
    committed = np.empty(m, dtype=np.float64)
    ev_terms: list[tuple[int, tuple]] = []
    for i, (t, kind, key, after, accrued) in enumerate(log):
        ev_t[i] = t
        ev_kind[i] = kind
        ev_key[i] = (
            shard_map.to_global_server(key)
            if kind in _SERVER_KEYED_KINDS
            else spec.vm_global[key]
        )
        committed[i] = after
        if accrued:
            ev_terms.append((i, accrued))
    # Committed-cores values are integer-valued floats, so the deltas (and
    # the merger's cumulative replay) are exact.
    ev_delta = np.diff(committed, prepend=0.0)
    return ShardOutput(
        shard_id=spec.shard_id,
        result=result,
        terms=terms,
        ev_t=ev_t,
        ev_kind=ev_kind,
        ev_key=ev_key,
        ev_delta=ev_delta,
        ev_terms=ev_terms,
        failure_summary=sim._injector.summary() if sim._injector is not None else None,
    )


# -- merging -------------------------------------------------------------------------


def _merge_terms(terms: list[VMMetricTerms]) -> VMMetricTerms:
    """Concatenate shard terms and reorder them by global VM index.

    The reordered arrays match what a flat run's ``_metric_terms`` would
    produce, so :func:`reduce_vm_terms` then reproduces the flat float
    accumulations exactly.
    """
    sel = np.concatenate([t.sel for t in terms])
    order = np.argsort(sel)  # VM indices are unique: total, deterministic order
    return VMMetricTerms(
        sel=sel[order],
        demanded=np.concatenate([t.demanded for t in terms])[order],
        lost=np.concatenate([t.lost for t in terms])[order],
        deflation=np.concatenate([t.deflation for t in terms])[order],
        alloc_integral=np.concatenate([t.alloc_integral for t in terms])[order],
        cores=np.concatenate([t.cores for t in terms])[order],
        lifetimes=np.concatenate([t.lifetimes for t in terms])[order],
        priorities=np.concatenate([t.priorities for t in terms])[order],
    )


def _replay_events(outputs: list[ShardOutput]) -> tuple[float, dict[str, float]]:
    """Replay shard event streams in global order: peak + summary scalars.

    The global order is ``(t, kind, key)`` with globally-remapped keys —
    exactly the sort key of both the flat array loop and the injector
    heap.  The committed-cores trajectory is the cumulative sum of shard
    deltas in that order (exact: integer-valued), and its running maximum
    is the flat run's peak.  Float summary terms are re-accumulated
    left-to-right in the same order, reproducing the flat accumulation bit
    for bit.
    """
    t = np.concatenate([o.ev_t for o in outputs])
    scalars = dict.fromkeys(_FLOAT_SUMMARY_METRICS, 0.0)
    if t.size == 0:
        return 0.0, scalars
    kind = np.concatenate([o.ev_kind for o in outputs])
    key = np.concatenate([o.ev_key for o in outputs])
    delta = np.concatenate([o.ev_delta for o in outputs])
    order = np.lexsort((key, kind, t))
    trajectory = np.cumsum(delta[order])
    peak = max(0.0, float(trajectory.max()))

    term_map: dict[int, tuple] = {}
    base = 0
    for o in outputs:
        for i, accrued in o.ev_terms:
            term_map[base + i] = accrued
        base += o.ev_t.size
    if term_map:
        for pos in order.tolist():
            accrued = term_map.get(pos)
            if accrued:
                for metric, value in accrued:
                    scalars[metric] = scalars[metric] + value
    return peak, scalars


_INT_RESULT_FIELDS = (
    "n_vms",
    "n_deflatable",
    "n_placed",
    "n_rejected_deflatable",
    "n_rejected_on_demand",
    "n_preempted",
    "n_reclaim_failures",
)


def merge_shard_outputs(
    scenario: Scenario, plan: ShardPlan, outputs: list[ShardOutput]
) -> ClusterSimResult:
    """Fold shard outputs into the flat run's :class:`ClusterSimResult`."""
    config = scenario.sim_config(plan.n_servers)
    counts = {
        f: sum(getattr(o.result, f) for o in outputs) for f in _INT_RESULT_FIELDS
    }
    peak, scalars = _replay_events(outputs)
    agg = reduce_vm_terms(_merge_terms([o.terms for o in outputs]))

    # The exact expression the flat simulator evaluates (nominal capacity;
    # same array layout, same pairwise reduction), plus the arrival cores
    # replayed term-by-term in global event order — the same decomposition
    # ``FailureInjector.nominal_total_cores`` uses, so the sum is exact.
    total_capacity = (
        float(
            np.tile(
                np.array([config.cores_per_server, config.memory_per_server_mb]),
                (plan.n_servers, 1),
            )[:, 0].sum()
        )
        + scalars["arrived_nominal_cores"]
    )

    collected: dict[str, object] = {}
    maps = [spec.map for spec in plan.specs]
    for name in scenario.collectors:
        collector = create("metrics", name)
        collected[name] = collector.merge_shards(
            [o.result.collected[name] for o in outputs], maps
        )
    if scenario.failures is not None:
        summary: dict = {}
        for o in outputs:
            for k, v in (o.failure_summary or {}).items():
                if k not in _FLOAT_SUMMARY_METRICS:
                    summary[k] = summary.get(k, 0) + v
        summary.update(scalars)
        collected["failure-injection"] = summary

    demanded, lost = agg["demanded_work"], agg["lost_work"]
    deflation_sum, deflation_weight = agg["deflation_sum"], agg["deflation_weight"]
    revenue = agg["revenue"]
    return ClusterSimResult(
        config=config,
        peak_committed_cores=peak,
        total_capacity_cores=total_capacity,
        throughput_loss=(lost / demanded) if demanded > 0 else 0.0,
        mean_deflation=(deflation_sum / deflation_weight) if deflation_weight else 0.0,
        revenue=revenue,
        revenue_per_server={
            name: rev / config.n_servers for name, rev in revenue.items()
        },
        collected=collected,
        **counts,
    )


# -- the engine ----------------------------------------------------------------------


@register("engine", "sharded")
class ShardedEngine(Engine):
    """Scale-out backend: per-pool shards on parallel worker processes.

    Select it per scenario (``Scenario.with_engine("sharded")``) or per
    run (``scenario.run(engine="sharded")``).  Results are bit-identical
    to ``cluster-sim`` on every supported scenario, for any worker count —
    workers only change wall-clock time, never floats — so cached results
    and cross-engine comparisons stay trustworthy.

    ``workers`` defaults to the ``REPRO_SHARDED_WORKERS`` environment
    variable, then to the machine's CPU count, and is always capped by
    both the shard count and the CPU count (oversubscribing cores with
    CPU-bound shard replays only adds overhead).  Inside an
    already-parallel ``run_sweep`` worker (a daemon process, which cannot
    fork children) the shards simply run serially — same results, no
    nested pools.

    Shards execute on the supervised runtime
    (:func:`repro.runtime.supervised_map`, ``docs/robustness.md``): a
    crashed shard worker is replaced and its shard retried (deterministic,
    so the retry is bit-identical), and with the fork start method the
    workers inherit the (large) shard specs instead of unpickling them —
    only shard indices cross the pipe.  A shard still failing after its
    retries aborts the run with :class:`~repro.errors.SweepError`: a
    merged result is only ever built from every shard.
    """

    name = "sharded"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers

    def plan(self, scenario: Scenario) -> ShardPlan:
        """The shard split this engine would execute (validates eagerly)."""
        return plan_shards(scenario)

    def run(self, scenario: Scenario) -> ScenarioResult:
        plan = plan_shards(scenario)
        outputs = self._execute(plan.specs)
        return ScenarioResult(
            scenario=scenario, sim=merge_shard_outputs(scenario, plan, outputs)
        )

    def _resolve_workers(self, n_shards: int) -> int:
        workers = self.workers
        if workers is None:
            env = os.environ.get("REPRO_SHARDED_WORKERS", "")
            try:
                workers = int(env) if env else (os.cpu_count() or 1)
            except ValueError:
                raise SimulationError(
                    f"REPRO_SHARDED_WORKERS must be an integer, got {env!r}"
                ) from None
        # Cap at the CPU count: shard replays are pure CPU-bound work, so
        # more processes than cores can never go faster and measurably go
        # slower (scheduler thrash + fork copy-on-write faults).  Requests
        # are capped, never padded.
        return max(1, min(int(workers), n_shards, os.cpu_count() or 1))

    def _execute(self, specs: list[ShardSpec]) -> list[ShardOutput]:
        # supervised_map dispatches shards one at a time (the old
        # chunksize=1) and falls back to in-process execution for daemonic
        # callers (a scenario already inside a run_sweep worker) and
        # workers <= 1 — same results either way.
        outcomes = supervised_map(
            _run_shard, specs, workers=self._resolve_workers(len(specs))
        )
        raise_on_failures(outcomes, what="shard")
        return [o.value for o in outcomes]
