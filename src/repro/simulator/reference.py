"""Pinned pre-optimization cluster simulator (golden reference).

This is a verbatim snapshot of :mod:`repro.simulator.cluster_sim` as it
stood *before* the fast-path rework (incremental committed-cores scalar,
cached candidate arrays, rebalance skip, vectorized ``_collect``), kept for
two purposes:

* the golden-equivalence test suite asserts the optimized simulator's
  :class:`~repro.simulator.cluster_sim.ClusterSimResult` is **bit-identical**
  to this implementation across every policy, flat and partitioned;
* ``benchmarks/bench_scale_cluster.py`` times this implementation as the
  baseline the optimized path is measured against.

It intentionally shares :class:`ClusterSimConfig` / :class:`ClusterSimResult`
with the optimized module (so results compare with plain ``==``) but keeps
its own per-VM ``VMOutcome`` with the old tuple-list ``alloc_history``.

Known deliberate divergence: the optimized simulator fixed the partition
trim loop (``_assign_partitions``), so when partitioning is enabled with
more pools than servers the two implementations assign different pools —
this snapshot preserves the old (buggy, lowest-index-starved) behaviour.
Golden comparisons therefore use ``n_servers >= n_pools``.

Do not optimize this module; it is the yardstick.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.deflation import DeflationPolicy, get_policy
from repro.core.vm import VMClass, priority_from_p95
from repro.errors import SimulationError
from repro.pricing.models import PRICING_MODELS
from repro.registry import create
from repro.simulator.cluster_sim import ClusterSimConfig, ClusterSimResult
from repro.simulator.components import (
    AdmissionController,
    MetricsCollector,
    PlacementScorer,
)
from repro.traces.schema import VMTraceRecord, VMTraceSet

#: Resource dimensions used for bin-packing and deflation (paper: "We
#: consider each VM's CPU core count and memory size").
_DIMS = 2  # 0 = cpu cores, 1 = memory MB


@dataclass
class VMOutcome:
    """Per-VM bookkeeping for the metrics (pre-optimization shape)."""

    vm_index: int
    deflatable: bool
    priority: float
    cores: float
    placed: bool = False
    rejected: bool = False
    preempted: bool = False
    reclaim_failure: bool = False
    end_interval: float = 0.0  # actual end (may be early if preempted)
    #: Piecewise-constant CPU allocation fraction: list of (interval, frac).
    alloc_history: list[tuple[float, float]] = field(default_factory=list)


class ReferenceClusterSimulator:
    """The pre-optimization event loop, preserved exactly as it was."""

    def __init__(self, traces: VMTraceSet, config: ClusterSimConfig) -> None:
        if len(traces) == 0:
            raise SimulationError("empty trace set")
        self.traces = traces
        self.config = config
        self._policy: DeflationPolicy | None = (
            None if config.policy == "preemption" else get_policy(config.policy)
        )
        self._admission: AdmissionController = create("admission", config.admission)
        self._scorer: PlacementScorer = create("scorer", config.scorer)
        self._collectors: tuple[MetricsCollector, ...] = tuple(
            create("metrics", name) for name in config.collectors
        )
        self._prepare_vms()
        self._prepare_servers()

    # -- setup ---------------------------------------------------------------------

    def _prepare_vms(self) -> None:
        n = len(self.traces)
        self.vm_caps = np.zeros((n, _DIMS))
        self.vm_prio = np.ones(n)
        self.vm_deflatable = np.zeros(n, dtype=bool)
        #: Hosting server per VM (-1 = not placed).
        self.vm_server = np.full(n, -1, dtype=np.int64)
        self.outcomes: list[VMOutcome] = []
        for i, rec in enumerate(self.traces):
            self.vm_caps[i, 0] = rec.cores
            self.vm_caps[i, 1] = rec.memory_mb
            deflatable = rec.vm_class == VMClass.INTERACTIVE
            self.vm_deflatable[i] = deflatable
            self.vm_prio[i] = priority_from_p95(rec.p95_cpu) if deflatable else 1.0
            self.outcomes.append(
                VMOutcome(
                    vm_index=i,
                    deflatable=deflatable,
                    priority=float(self.vm_prio[i]),
                    cores=float(rec.cores),
                    end_interval=float(rec.end_interval),
                )
            )
        # Policy floors: priority/deterministic deflate only to pi*M; every
        # policy additionally respects the configured QoS minimum fraction.
        base_floor = self.vm_caps * self.config.min_fraction
        if self.config.policy in ("priority", "deterministic"):
            self.vm_floor = np.maximum(base_floor, self.vm_caps * self.vm_prio[:, None])
        else:
            self.vm_floor = base_floor
        self.vm_floor[~self.vm_deflatable] = 0.0

    def _prepare_servers(self) -> None:
        cfg = self.config
        s = cfg.n_servers
        self.server_cap = np.tile(
            np.array([cfg.cores_per_server, cfg.memory_per_server_mb]), (s, 1)
        )
        self.committed = np.zeros((s, _DIMS))
        self.reclaimed = np.zeros((s, _DIMS))  # from deflatable VMs
        self.defl_cap = np.zeros((s, _DIMS))  # sum of deflatable capacities
        self.defl_floor = np.zeros((s, _DIMS))  # sum of policy floors
        # Resident sets are insertion-ordered dicts keyed by VM index: O(1)
        # removal (the old lists paid an O(n) ``list.remove`` per departure)
        # while preserving the arrival order that deterministic policies use
        # for tie-breaking.
        self.residents: list[dict[int, None]] = [{} for _ in range(s)]
        self.resident_deflatable: list[dict[int, None]] = [{} for _ in range(s)]
        # Partition assignment: deflatable pools 0..n_partitions-1 by
        # priority level, plus one on-demand pool.  Server shares follow the
        # paper's advice to size pools by the workload mix (we use committed
        # capacity shares of each class in the trace).
        self.server_pool = np.full(s, -1, dtype=np.int64)
        if cfg.partitioned:
            self._assign_partitions()

    def _assign_partitions(self) -> None:
        cfg = self.config
        levels = sorted(set(np.round(self.vm_prio[self.vm_deflatable], 6)))
        # Demand share per pool (deflatable levels + on-demand pool).
        shares = []
        for lvl in levels:
            mask = self.vm_deflatable & (np.abs(self.vm_prio - lvl) < 1e-6)
            shares.append(self.vm_caps[mask, 0].sum())
        shares.append(self.vm_caps[~self.vm_deflatable, 0].sum())
        shares = np.asarray(shares, dtype=np.float64)
        shares = shares / shares.sum() if shares.sum() > 0 else np.ones_like(shares) / len(shares)
        counts = np.maximum(1, np.round(shares * cfg.n_servers).astype(int))
        # Trim/extend to exactly n_servers.
        while counts.sum() > cfg.n_servers:
            counts[np.argmax(counts)] -= 1
        while counts.sum() < cfg.n_servers:
            counts[np.argmax(shares)] += 1
        pools = np.repeat(np.arange(len(counts)), counts)
        self.server_pool = pools[: cfg.n_servers]
        self._pool_of_level = {lvl: k for k, lvl in enumerate(levels)}
        self._on_demand_pool = len(levels)

    # -- main loop -----------------------------------------------------------------

    def run(self) -> ClusterSimResult:
        events: list[tuple[float, int, int, int]] = []
        for i, rec in enumerate(self.traces):
            # Ends sort before starts at the same interval (kind 0 < 1).
            events.append((float(rec.start_interval), 1, i, i))
            events.append((float(rec.end_interval), 0, i, i))
        events.sort(key=lambda e: (e[0], e[1], e[2]))

        peak_committed = 0.0
        for t, kind, _, vm in events:
            if kind == 0:
                self._handle_end(t, vm)
            else:
                self._handle_start(t, vm)
                peak_committed = max(peak_committed, float(self.committed[:, 0].sum()))
        return self._collect(peak_committed)

    # -- event handlers -----------------------------------------------------------

    def _candidate_servers(self, vm: int) -> np.ndarray:
        if not self.config.partitioned:
            return np.arange(self.config.n_servers)
        if self.vm_deflatable[vm]:
            lvl = float(np.round(self.vm_prio[vm], 6))
            pool = self._pool_of_level.get(lvl, 0)
        else:
            pool = self._on_demand_pool
        return np.nonzero(self.server_pool == pool)[0]

    def _handle_start(self, t: float, vm: int) -> None:
        out = self.outcomes[vm]
        demand = self.vm_caps[vm]
        candidates = self._candidate_servers(vm)
        if candidates.size == 0:
            self._reject(t, vm, out)
            return

        if self._policy is None:
            self._place_preemption(t, vm, candidates)
            return

        feas_idx = self._admission.feasible(self, vm, candidates)
        if feas_idx.size == 0:
            self._reject(t, vm, out)
            return

        # Prefer servers that can host the VM without deflating anyone —
        # "when there is surplus capacity in the cluster, the cloud manager
        # allocates these resources to lower priority VMs (without deflating
        # them)" (Section 5).  Only under genuine pressure do we fall back
        # to deflation-requiring servers.
        no_deflation = np.all(
            self.committed[feas_idx] + demand <= self.server_cap[feas_idx] + 1e-9,
            axis=1,
        )
        pool_idx = feas_idx[no_deflation] if np.any(no_deflation) else feas_idx

        # Availability vector (Section 5.2): free + deflatable/overcommitment.
        used = self.committed[pool_idx] - self.reclaimed[pool_idx]
        free = np.maximum(self.server_cap[pool_idx] - used, 0.0)
        headroom = np.maximum(
            (self.defl_cap[pool_idx] - self.reclaimed[pool_idx])
            - self.defl_floor[pool_idx],
            0.0,
        )
        oc = np.maximum(self.committed[pool_idx] / self.server_cap[pool_idx], 1.0)
        availability = free + headroom / oc
        server = self._choose_server(vm, pool_idx, availability)

        self._admit(t, vm, server)
        self._rebalance(t, server)

    def _choose_server(
        self, vm: int, pool_idx: np.ndarray, availability: np.ndarray
    ) -> int:
        """Rank candidate servers with the configured scorer; argmax wins.

        Both vectors are normalized into capacity fractions so scorers
        compare shapes, not raw units (memory MB would dwarf CPU cores).
        """
        avail_norm = availability / self.server_cap[pool_idx]
        demand_norm = self.vm_caps[vm] / self.server_cap[0]
        scores = self._scorer.score(demand_norm, avail_norm)
        return int(pool_idx[int(np.argmax(scores))])

    def _admit(self, t: float, vm: int, server: int) -> None:
        out = self.outcomes[vm]
        out.placed = True
        self.committed[server] += self.vm_caps[vm]
        self.residents[server][vm] = None
        self.vm_server[vm] = server
        if self.vm_deflatable[vm]:
            self.resident_deflatable[server][vm] = None
            self.defl_cap[server] += self.vm_caps[vm]
            self.defl_floor[server] += self.vm_floor[vm]
            out.alloc_history.append((t, 1.0))
        for c in self._collectors:
            c.on_admit(t, vm, server, self)

    def _reject(self, t: float, vm: int, out: VMOutcome) -> None:
        out.rejected = True
        for c in self._collectors:
            c.on_reject(t, vm, self)

    def _handle_end(self, t: float, vm: int) -> None:
        out = self.outcomes[vm]
        if not out.placed or out.preempted:
            return
        server = int(self.vm_server[vm])
        self.committed[server] -= self.vm_caps[vm]
        del self.residents[server][vm]
        if self.vm_deflatable[vm]:
            del self.resident_deflatable[server][vm]
            self.defl_cap[server] -= self.vm_caps[vm]
            self.defl_floor[server] -= self.vm_floor[vm]
        for c in self._collectors:
            c.on_end(t, vm, server, self)
        if self._policy is not None:
            self._rebalance(t, server)

    def _rebalance(self, t: float, server: int) -> None:
        """Recompute deflatable allocations on one server under its pressure."""
        assert self._policy is not None
        defl = self.resident_deflatable[server]
        required = self.committed[server] - self.server_cap[server]
        if not defl:
            return
        idx = np.fromiter(defl, dtype=np.int64, count=len(defl))
        caps = self.vm_caps[idx]
        floors = self.vm_floor[idx]
        prios = self.vm_prio[idx]
        new_reclaimed = np.zeros((idx.size, _DIMS))
        unsatisfied = False
        for r in range(_DIMS):
            req = float(max(required[r], 0.0))
            result = self._policy.target_allocations(caps[:, r], floors[:, r], prios, req)
            new_reclaimed[:, r] = result.reclaimed
            if not result.satisfied:
                unsatisfied = True
        self.reclaimed[server] = new_reclaimed.sum(axis=0)
        if unsatisfied:
            # Should not happen (feasibility was checked at admission), but a
            # departure race could in principle expose it; count it.
            for j in idx:
                self.outcomes[int(j)].reclaim_failure = True
        # Record CPU allocation fraction changes.
        frac = 1.0 - new_reclaimed[:, 0] / np.maximum(caps[:, 0], 1e-12)
        for k, j in enumerate(idx):
            hist = self.outcomes[int(j)].alloc_history
            if not hist or abs(hist[-1][1] - frac[k]) > 1e-9:
                hist.append((t, float(frac[k])))
        for c in self._collectors:
            c.on_rebalance(t, server, self)

    # -- preemption baseline ---------------------------------------------------------

    def _place_preemption(self, t: float, vm: int, candidates: np.ndarray) -> None:
        out = self.outcomes[vm]
        demand = self.vm_caps[vm]
        free = self.server_cap[candidates] - self.committed[candidates]
        fits = np.all(free >= demand - 1e-9, axis=1)
        fit_idx = candidates[fits]
        if fit_idx.size > 0:
            self._admit(t, vm, self._choose_server(vm, fit_idx, np.maximum(free[fits], 0.0)))
            return
        if self.vm_deflatable[vm]:
            # Low-priority arrivals are not allowed to preempt others.
            self._reject(t, vm, out)
            return
        # On-demand under pressure: preempt deflatable VMs, lowest priority
        # first, on the server needing the fewest preemptions.
        best_server, best_victims = -1, None
        for s in candidates:
            victims = self._preemption_plan(int(s), demand)
            if victims is None:
                continue
            if best_victims is None or len(victims) < len(best_victims):
                best_server, best_victims = int(s), victims
        if best_victims is None:
            self._reject(t, vm, out)
            return
        for victim in best_victims:
            self._preempt(t, victim)
        self._admit(t, vm, best_server)

    def _preemption_plan(self, server: int, demand: np.ndarray) -> list[int] | None:
        """Victims (ascending priority) freeing enough room, or None."""
        free = self.server_cap[server] - self.committed[server]
        need = demand - free
        if np.all(need <= 1e-9):
            return []
        defl = sorted(
            self.resident_deflatable[server], key=lambda v: (self.vm_prio[v], v)
        )
        victims: list[int] = []
        freed = np.zeros(_DIMS)
        for v in defl:
            if np.all(freed >= need - 1e-9):
                break
            victims.append(v)
            freed += self.vm_caps[v]
        if np.all(freed >= need - 1e-9):
            return victims
        return None

    def _preempt(self, t: float, vm: int) -> None:
        out = self.outcomes[vm]
        out.preempted = True
        out.end_interval = t
        server = int(self.vm_server[vm])
        self.committed[server] -= self.vm_caps[vm]
        del self.residents[server][vm]
        del self.resident_deflatable[server][vm]
        self.defl_cap[server] -= self.vm_caps[vm]
        self.defl_floor[server] -= self.vm_floor[vm]
        out.alloc_history.append((t, 0.0))
        for c in self._collectors:
            c.on_preempt(t, vm, server, self)

    # -- metrics -----------------------------------------------------------------------

    def _allocation_series(self, rec: VMTraceRecord, out: VMOutcome) -> np.ndarray:
        """Per-interval CPU allocation fraction over the VM's lifetime."""
        n = rec.lifetime_intervals
        if out.preempted:
            n = max(0, min(n, int(math.ceil(out.end_interval - rec.start_interval))))
        alloc = np.ones(rec.lifetime_intervals)
        if not out.alloc_history:
            return alloc
        times = np.array([h[0] for h in out.alloc_history]) - rec.start_interval
        fracs = np.array([h[1] for h in out.alloc_history])
        grid = np.arange(rec.lifetime_intervals, dtype=np.float64)
        pos = np.searchsorted(times, grid, side="right") - 1
        alloc = np.where(pos >= 0, fracs[np.clip(pos, 0, len(fracs) - 1)], 1.0)
        if out.preempted:
            alloc[n:] = 0.0
        return alloc

    def _collect(self, peak_committed: float) -> ClusterSimResult:
        lost_work = 0.0
        demanded_work = 0.0
        deflation_sum = 0.0
        deflation_weight = 0.0
        revenue = {name: 0.0 for name in PRICING_MODELS}

        for rec, out in zip(self.traces, self.outcomes):
            if not out.deflatable:
                continue
            if not out.placed:
                continue  # rejected: no revenue, no work served or demanded
            alloc = self._allocation_series(rec, out)
            util = rec.cpu_util
            demanded = float(util.sum()) * out.cores
            lost = float(np.maximum(util - alloc, 0.0).sum()) * out.cores
            demanded_work += demanded
            lost_work += lost
            lifetime = rec.lifetime_intervals
            deflation_sum += float((1.0 - alloc).sum()) * out.cores
            deflation_weight += lifetime * out.cores
            alloc_integral = float(alloc.sum())  # in intervals
            for name, model in PRICING_MODELS.items():
                mean_alloc = alloc_integral / lifetime if lifetime else 1.0
                revenue[name] += model.revenue(
                    capacity_units=out.cores,
                    duration=float(lifetime),
                    priority=out.priority,
                    allocation_fraction=min(mean_alloc, 1.0),
                )

        n_defl = int(self.vm_deflatable.sum())
        result = ClusterSimResult(
            config=self.config,
            n_vms=len(self.traces),
            n_deflatable=n_defl,
            n_placed=sum(1 for o in self.outcomes if o.placed),
            n_rejected_deflatable=sum(
                1 for o in self.outcomes if o.rejected and o.deflatable
            ),
            n_rejected_on_demand=sum(
                1 for o in self.outcomes if o.rejected and not o.deflatable
            ),
            n_preempted=sum(1 for o in self.outcomes if o.preempted),
            n_reclaim_failures=sum(
                1 for o in self.outcomes if o.reclaim_failure and not o.rejected
            ),
            peak_committed_cores=peak_committed,
            total_capacity_cores=float(self.server_cap[:, 0].sum()),
            throughput_loss=(lost_work / demanded_work) if demanded_work > 0 else 0.0,
            mean_deflation=(deflation_sum / deflation_weight) if deflation_weight else 0.0,
            revenue=revenue,
            revenue_per_server={
                name: rev / self.config.n_servers for name, rev in revenue.items()
            },
            collected={c.name: c.finalize(self) for c in self._collectors},
        )
        return result
