"""Overcommitment sweeps and derived metrics for Figures 20–22.

One sweep replays the *same* trace against clusters of decreasing size
(increasing overcommitment) for each policy, exactly the paper's method:
"we first find the minimum cluster size capable of running all VMs without
any preemptions or admission-controlled rejections.  We then vary and
increase the overcommitment by reducing the number of servers and use the
same VM-trace throughout."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simulator.cluster_sim import ClusterSimResult
from repro.traces.schema import VMTraceSet

#: The paper's Figure 20-22 x-axis (cluster overcommitment %).
DEFAULT_OVERCOMMIT_LEVELS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)

#: Policies compared in Figures 20 and 21 (preemption is the baseline).
DEFAULT_POLICIES: tuple[str, ...] = (
    "proportional",
    "priority",
    "deterministic",
    "preemption",
)


@dataclass(frozen=True)
class SweepPoint:
    overcommitment_target: float
    n_servers: int
    result: ClusterSimResult


@dataclass
class OvercommitSweep:
    """All (policy, overcommitment) runs over a single trace."""

    trace_size: int
    points: dict[str, list[SweepPoint]]

    def failure_probabilities(self, policy: str) -> list[tuple[float, float]]:
        """(overcommitment %, failure probability) series — Figure 20."""
        return [
            (100 * p.overcommitment_target, p.result.failure_probability)
            for p in self._series(policy)
        ]

    def throughput_losses(self, policy: str) -> list[tuple[float, float]]:
        """(overcommitment %, throughput decrease) series — Figure 21."""
        return [
            (100 * p.overcommitment_target, p.result.throughput_loss)
            for p in self._series(policy)
        ]

    def revenue_increase(
        self, policy: str, pricing: str, baseline_pricing: str = "static"
    ) -> list[tuple[float, float]]:
        """(overcommitment %, revenue-per-server increase %) — Figure 22.

        All pricing schemes are normalized against one *common* baseline:
        the ``baseline_pricing`` revenue at the sweep's lowest
        overcommitment level.  This matches the paper's presentation, where
        priority-based pricing sits ~2x above static at every level (higher
        priority VMs simply pay more) while allocation-based pricing stays
        flat (deflation discounts offset the density gain).
        """
        series = self._series(policy)
        base = series[0].result.revenue_per_server.get(baseline_pricing)
        if base is None:
            raise SimulationError(f"unknown pricing model {baseline_pricing!r}")
        if base <= 0:
            raise SimulationError("baseline revenue is zero; cannot normalize")
        if pricing not in series[0].result.revenue_per_server:
            raise SimulationError(f"unknown pricing model {pricing!r}")
        return [
            (
                100 * p.overcommitment_target,
                100 * (p.result.revenue_per_server[pricing] / base - 1.0),
            )
            for p in series
        ]

    def _series(self, policy: str) -> list[SweepPoint]:
        try:
            return self.points[policy]
        except KeyError:
            raise SimulationError(
                f"policy {policy!r} not in sweep; have {sorted(self.points)}"
            ) from None


def overcommitment_sweep(
    traces: VMTraceSet,
    levels: tuple[float, ...] = DEFAULT_OVERCOMMIT_LEVELS,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    cores_per_server: float = 48.0,
    memory_per_server_mb: float = 128 * 1024,
    partitioned: bool = False,
    workers: int | None = None,
) -> OvercommitSweep:
    """Run the full (policy x overcommitment) grid on one trace.

    Thin shim over the Scenario API: the grid is declared as scenarios and
    executed with :func:`repro.scenario.run_sweep` (in parallel when
    ``workers`` > 1 — bit-identical to the serial path), then folded back
    into the legacy :class:`OvercommitSweep` shape.
    """
    from repro.scenario import Scenario, run_sweep

    if not levels:
        raise SimulationError("need at least one overcommitment level")
    base = (
        Scenario(name="overcommitment-sweep")
        .with_traces(traces)
        .with_server_shape(cores_per_server, memory_per_server_mb)
    )
    if partitioned:
        base = base.with_partitions()
    scenarios = [
        base.with_policy(policy).with_overcommitment(oc)
        for policy in policies
        for oc in levels
    ]
    results = run_sweep(scenarios, workers=workers)
    points: dict[str, list[SweepPoint]] = {policy: [] for policy in policies}
    for res in results:
        points[res.scenario.policy].append(
            SweepPoint(
                overcommitment_target=res.scenario.overcommitment,
                n_servers=res.n_servers,
                result=res.sim,
            )
        )
    return OvercommitSweep(trace_size=len(traces), points=points)
