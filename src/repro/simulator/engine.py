"""Minimal discrete-event simulation core.

Both simulation layers in this repo — the request-level processor-sharing
network (:mod:`repro.queueing`) and the trace-driven cluster simulator
(:mod:`repro.simulator.cluster_sim`) — schedule work on the same primitive: a
time-ordered event queue with stable FIFO ordering for simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from typing import Any

from repro.errors import SimulationError


class EventQueue:
    """A priority queue of timestamped events with deterministic tie-breaks.

    Events scheduled at equal times fire in scheduling order (FIFO), which
    keeps simulations reproducible run-to-run.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, time: float, payload: Any) -> None:
        """Add an event; times in the past are a logic error."""
        if time < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def pop(self) -> tuple[float, Any]:
        """Remove and return the next (time, payload), advancing the clock."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        time, _, payload = heapq.heappop(self._heap)
        self.now = time
        return time, payload

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Callback-style wrapper: schedule callables, run until exhaustion."""

    def __init__(self) -> None:
        self.queue = EventQueue()

    @property
    def now(self) -> float:
        return self.queue.now

    def at(self, time: float, fn: Callable[[], None]) -> None:
        self.queue.schedule(time, fn)

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.queue.schedule(self.now + delay, fn)

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or the horizon is reached."""
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self.queue.now = until
                return
            _, fn = self.queue.pop()
            fn()
