"""Pluggable components of the trace-driven cluster simulator.

:class:`~repro.simulator.cluster_sim.ClusterSimulator` used to inline three
separable decisions in its event loop: *can this VM be admitted at all*
(feasibility), *which feasible server should take it* (scoring — the cosine
ranking was duplicated at two call sites), and *what gets recorded along the
way* (metrics).  Each is now a named component resolved through the unified
registry, so new admission rules, placement heuristics, and measurement
hooks attach to the simulator without editing the event loop:

* ``admission`` — :class:`AdmissionController`; filters candidate servers
  down to those allowed to take the VM;
* ``scorer`` — :class:`PlacementScorer`; scores normalized availability
  vectors against the VM's normalized demand (argmax wins);
* ``metrics`` — :class:`MetricsCollector`; observer hooks called on admit /
  reject / preempt / end / rebalance, with a ``finalize`` payload attached
  to the run's :class:`~repro.simulator.cluster_sim.ClusterSimResult`.

Components receive the simulator itself and read its documented array state
(``committed``, ``server_cap``, ``defl_cap``, ``defl_floor``, ``vm_caps``,
``vm_floor``); they must not mutate it.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.placement import vectorized_cosine_scores
from repro.core.resources import NUM_RESOURCES
from repro.errors import SimulationError
from repro.failures.injector import _ARRIVAL, _DEADLINE, _DIP_END, _DIP_START, _REVOKE
from repro.registry import register

#: Feasibility slack shared with the simulator's float comparisons.
_EPS = 1e-9


# -- admission control -------------------------------------------------------------


class AdmissionController(abc.ABC):
    """Decides which candidate servers may admit an arriving VM."""

    name: str = "abstract"

    @abc.abstractmethod
    def feasible(self, sim, vm: int, candidates: np.ndarray) -> np.ndarray:
        """Subset of ``candidates`` (server indices) that can take VM ``vm``.

        Returning an empty array rejects the VM at admission control.
        """


@register("admission", "deflation-aware")
class DeflationAwareAdmission(AdmissionController):
    """The paper's rule: admit if deflating residents can make room.

    A server is feasible when ``committed + demand - capacity`` fits inside
    its reclaimable pool; an arriving deflatable VM's own pool counts too
    ("a VM can start its execution in a deflated mode", Section 5.1.1).
    """

    name = "deflation-aware"

    def feasible(self, sim, vm, candidates):
        demand = sim.vm_caps[vm]
        extra_pool = (
            (sim.vm_caps[vm] - sim.vm_floor[vm]) if sim.vm_deflatable[vm] else 0.0
        )
        if candidates.shape[0] == sim.committed.shape[0]:
            # Whole cluster: row i is server i, so the per-server gathers
            # (four fancy-indexed copies per arrival) can be skipped.
            reclaimable = sim.defl_cap - sim.defl_floor + extra_pool
            overflow = sim.committed + demand - sim.server_cap
        else:
            reclaimable = (
                sim.defl_cap[candidates] - sim.defl_floor[candidates] + extra_pool
            )
            overflow = sim.committed[candidates] + demand - sim.server_cap[candidates]
        return candidates[(overflow <= reclaimable + _EPS).all(axis=1)]


@register("admission", "rigid")
class RigidAdmission(AdmissionController):
    """Baseline: admit only into genuinely free capacity (no deflation).

    Turns the simulator into a classic no-overcommitment packer — useful for
    ablations isolating how much of the win comes from deflation-aware
    admission rather than from deflation at runtime.
    """

    name = "rigid"

    def feasible(self, sim, vm, candidates):
        demand = sim.vm_caps[vm]
        fits = (
            sim.committed[candidates] + demand <= sim.server_cap[candidates] + _EPS
        ).all(axis=1)
        return candidates[fits]


# -- placement scoring -------------------------------------------------------------


class PlacementScorer(abc.ABC):
    """Scores candidate servers; the simulator picks the argmax."""

    name: str = "abstract"

    @abc.abstractmethod
    def score(self, demand_norm: np.ndarray, avail_norm: np.ndarray) -> np.ndarray:
        """Score each availability row against the demand.

        ``demand_norm`` has shape ``(dims,)`` and ``avail_norm`` has shape
        ``(n_candidates, dims)``; both are expressed as capacity fractions so
        scorers compare shapes, not raw units.  Higher is better; ties break
        toward the lower server index (``np.argmax`` semantics).
        """


@register("scorer", "cosine")
class CosineScorer(PlacementScorer):
    """The paper's Tetris-style cosine fitness (Section 5.2).

    This is the ranking previously inlined at both the deflation and the
    preemption call sites of the event loop; the vectors are padded to
    ``NUM_RESOURCES`` dimensions to reuse the shared scoring kernel.
    """

    name = "cosine"

    def __init__(self) -> None:
        # Reused padding buffers: scoring runs once per arrival, and the
        # per-call np.zeros + np.concatenate used to dominate its cost.  The
        # padded layout itself is kept — BLAS results are bit-sensitive to
        # the operand width, and the golden tests pin the padded scores.
        self._demand_buf = np.zeros(NUM_RESOURCES)
        self._avail_buf = np.zeros((0, NUM_RESOURCES))

    def score(self, demand_norm, avail_norm):
        dims = demand_norm.shape[0]
        demand_full = self._demand_buf
        demand_full[:] = 0.0
        demand_full[:dims] = demand_norm
        rows = avail_norm.shape[0]
        if self._avail_buf.shape[0] < rows:
            self._avail_buf = np.zeros((rows, NUM_RESOURCES))
        mat = self._avail_buf[:rows]
        mat[:, :dims] = avail_norm
        mat[:, dims:] = 0.0
        return vectorized_cosine_scores(demand_full, mat)


@register("scorer", "most-available")
class MostAvailableScorer(PlacementScorer):
    """Worst-fit baseline: prefer the server with the most total availability."""

    name = "most-available"

    def score(self, demand_norm, avail_norm):
        return avail_norm.sum(axis=1)


@register("scorer", "least-available")
class LeastAvailableScorer(PlacementScorer):
    """Best-fit baseline: pack tightly by preferring the least availability."""

    name = "least-available"

    def score(self, demand_norm, avail_norm):
        return -avail_norm.sum(axis=1)


# -- metrics collection ------------------------------------------------------------


class MetricsCollector:
    """Observer hooks over the simulation event loop.

    Subclasses override only the hooks they need; ``finalize`` returns the
    payload stored under the collector's name in
    ``ClusterSimResult.collected``.  Hooks are called *after* the
    simulator's own bookkeeping for the event, so the ``sim`` argument
    already reflects the event's effect (e.g. ``on_admit`` sees the VM in
    ``sim.residents[server]``).  Collectors read the simulator's
    documented array state but must never mutate it, and must not assume a
    particular engine: under the ``sharded`` engine each shard drives its
    own collector instance over shard-local indices, and the per-shard
    ``finalize`` payloads are folded together by :meth:`merge_shards`.
    """

    name: str = "abstract"
    #: Merge-discipline declaration (enforced statically by repro-lint):
    #: a concrete collector either overrides :meth:`merge_shards` or sets
    #: ``mergeable = False`` to state — in code, not prose — that its
    #: payload has no exact per-shard fold.  The sharded engine rejects
    #: ``mergeable = False`` collectors eagerly.
    mergeable: bool = True
    #: Snapshot-discipline declaration (enforced statically by repro-lint,
    #: ``collector-snapshot-discipline``): a concrete collector either
    #: overrides :meth:`snapshot` *and* :meth:`restore` or sets
    #: ``snapshottable = False`` to state that its run cannot be
    #: checkpointed.  ``ClusterSimulator.snapshot()`` rejects
    #: ``snapshottable = False`` collectors eagerly.
    snapshottable: bool = True

    def on_admit(self, t: float, vm: int, server: int, sim) -> None:
        """VM ``vm`` was admitted onto ``server`` at interval ``t``.

        Fires for trace arrivals and for failure-driven placements
        (evacuations off revoked servers, requeued restarts).
        """

    def on_reject(self, t: float, vm: int, sim) -> None:
        """Arriving VM ``vm`` was rejected at admission control.

        Only trace arrivals can be rejected; a failed evacuation or
        restart surfaces as :meth:`on_preempt` of the victim instead.
        """

    def on_preempt(self, t: float, vm: int, server: int, sim) -> None:
        """VM ``vm`` was terminated early on ``server``.

        Covers baseline preemptions (an on-demand arrival evicting
        deflatable residents), failure kills, lost evacuees, and dip-driven
        evictions under the preemption baseline.
        """

    def on_end(self, t: float, vm: int, server: int, sim) -> None:
        """VM ``vm`` reached its natural end of life on ``server``."""

    def on_rebalance(self, t: float, server: int, sim) -> None:
        """``server``'s deflatable allocations were recomputed.

        Fires after every admission and departure on a server hosting
        deflatable VMs — including the zero-pressure fast path, where the
        allocations are provably unchanged but observers still run.
        """

    def on_revocation(self, t: float, server: int, sim) -> None:
        """Transient ``server`` was revoked at interval ``t`` (failure injection).

        The server's capacity is already zeroed and it will never return;
        resident handling (evacuation or kill) follows this call, so the
        residents are still attached when the hook observes them.  Never
        fires on failure-free scenarios.
        """

    def on_capacity_dip(self, t: float, server: int, scale: float, sim) -> None:
        """``server``'s capacity was scaled to ``scale`` (failure injection).

        ``scale`` is the remaining capacity fraction in ``(0, 1)`` when a
        dip starts, and exactly ``1.0`` when it ends and full capacity is
        restored.  ``sim.server_cap[server]`` already reflects the new
        capacity; the squeeze/reinflate rebalance follows this call.
        Never fires on failure-free scenarios.
        """

    def on_server_arrival(self, t: float, server: int, sim) -> None:
        """A new ``server`` joined the cluster at interval ``t`` (elastic pools).

        The simulator's per-server arrays already include the arrival
        (``sim.server_cap[server]`` is its nominal shape) and it is a
        normal placement candidate from this instant.  Never fires on
        failure-free scenarios.
        """

    def on_evacuation_deadline(self, t: float, server: int, sim) -> None:
        """A draining ``server``'s warning window closed (failure injection).

        Fires after the stragglers that budgeted evacuation could not move
        were killed and the server's capacity was zeroed for good.  Only
        warned revocations (``warning_intervals``) produce deadlines; the
        preceding warning fired :meth:`on_revocation`.
        """

    def finalize(self, sim) -> object:
        """Payload stored under this collector's name in ``collected``."""
        return None

    def merge_shards(self, payloads: list, shards: list) -> object:
        """Fold per-shard ``finalize`` payloads into the flat-run payload.

        The ``sharded`` engine gives every shard its own collector
        instance; this hook must combine their payloads into exactly what
        one instance observing the flat run would have produced —
        remapping shard-local VM/server indices through ``shards`` (one
        map per payload, with ``vm_global``, ``server_offset`` and
        ``n_servers`` attributes) and restoring the global event order
        where the payload is order-sensitive.

        The default raises: a collector without an exact merge (e.g.
        ``timeline``, whose payload samples the *cluster-wide* committed
        series with no per-entry ordering key) is rejected by the sharded
        engine up front rather than silently mis-merged.
        """
        raise SimulationError(
            f"metrics collector {self.name!r} does not support sharded "
            "merging; run this scenario on the 'cluster-sim' engine"
        )

    def snapshot(self) -> object:
        """Image of the collector's mutable state, for a mid-run checkpoint.

        Called by :meth:`ClusterSimulator.snapshot` at an event boundary.
        The returned object must be a *copy* (never alias live state — the
        simulator keeps running after the snapshot) and must round-trip
        through :meth:`restore` on a fresh instance such that the restored
        collector's ``finalize`` is bit-identical to an uninterrupted run.

        The default raises: a collector holding mutable state without an
        exact snapshot (declared via ``snapshottable = False``) is rejected
        at snapshot time rather than silently resumed with reset state.
        """
        raise SimulationError(
            f"metrics collector {self.name!r} does not support snapshots; "
            "run this scenario without checkpoints"
        )

    def restore(self, state: object) -> None:
        """Reinstate a :meth:`snapshot` payload on a fresh instance."""
        raise SimulationError(
            f"metrics collector {self.name!r} does not support snapshots; "
            "run this scenario without checkpoints"
        )


@register("metrics", "event-counts")
class EventCountCollector(MetricsCollector):
    """Counts every event type the loop emits."""

    name = "event-counts"

    def __init__(self) -> None:
        self.counts = {
            "admit": 0,
            "reject": 0,
            "preempt": 0,
            "end": 0,
            "rebalance": 0,
        }

    def on_admit(self, t, vm, server, sim):
        self.counts["admit"] += 1

    def on_reject(self, t, vm, sim):
        self.counts["reject"] += 1

    def on_preempt(self, t, vm, server, sim):
        self.counts["preempt"] += 1

    def on_end(self, t, vm, server, sim):
        self.counts["end"] += 1

    def on_rebalance(self, t, server, sim):
        self.counts["rebalance"] += 1

    def finalize(self, sim):
        return dict(self.counts)

    def merge_shards(self, payloads, shards):
        """Integer counts over disjoint event partitions: sum per key."""
        merged = dict.fromkeys(self.counts, 0)
        for payload in payloads:
            for key, value in payload.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def snapshot(self):
        return dict(self.counts)

    def restore(self, state):
        self.counts = dict(state)


@register("metrics", "timeline")
class CommittedTimelineCollector(MetricsCollector):
    """Records the cluster's committed-CPU time series at every change.

    Payload: list of ``(interval, committed_cores)`` points, suitable for
    plotting utilization over the replay.

    Deliberately does **not** implement ``merge_shards``: each point
    samples the cluster-*wide* committed sum, and the entries carry no
    per-event ordering key, so per-shard series cannot be interleaved back
    into the flat run's exact point sequence.  ``mergeable = False``
    declares that (the collector-merge-discipline lint rule insists every
    collector choose); scenarios using it must run on the ``cluster-sim``
    engine — the sharded engine rejects it eagerly.
    """

    name = "timeline"
    mergeable = False

    def __init__(self) -> None:
        self.points: list[tuple[float, float]] = []

    def _record(self, t: float, sim) -> None:
        # The optimized simulator maintains the committed-cores total
        # incrementally; read it instead of re-summing the per-server column
        # on every event (this collector fires on each admit/end, so the
        # O(n_servers) sum was the last per-event scan).  Core counts are
        # integers, so the running float64 total is exact and bit-identical
        # to the column sum — the golden suite pins that, because the
        # reference simulator lacks the scalar and takes the fallback.
        committed = getattr(sim, "_committed_cores", None)
        if committed is None:
            committed = float(sim.committed[:, 0].sum())
        self.points.append((t, float(committed)))

    def on_admit(self, t, vm, server, sim):
        self._record(t, sim)

    def on_preempt(self, t, vm, server, sim):
        self._record(t, sim)

    def on_end(self, t, vm, server, sim):
        self._record(t, sim)

    def finalize(self, sim):
        return list(self.points)

    def snapshot(self):
        # Unlike merging (no per-entry ordering key across shards), a
        # checkpoint is a clean temporal cut: the recorded prefix plus the
        # resumed suffix is exactly the uninterrupted series.
        return list(self.points)

    def restore(self, state):
        self.points = list(state)


@register("metrics", "failure-log")
class FailureLogCollector(MetricsCollector):
    """Records every injected infrastructure event, in event order.

    Payload: list of ``(interval, event, server, scale)`` tuples where
    ``event`` is ``"revoke"`` (for a warned revocation this is the warning
    instant), ``"dip"``, ``"arrive"``, or ``"deadline"`` (``scale`` is the
    remaining capacity fraction: a dip ending or an arrival reports
    ``1.0``, a revocation or deadline ``0.0``).  Only meaningful on
    scenarios with a ``failures`` spec — without injection the payload is
    an empty list.
    """

    name = "failure-log"

    #: The injector's intra-interval ordering codes per entry type (see
    #: ``repro.failures.injector``); used to restore the global event
    #: order when merging shard payloads.
    _KINDS = {"arrive": _ARRIVAL, "revoke": _REVOKE, "deadline": _DEADLINE}

    def __init__(self) -> None:
        self.events: list[tuple[float, str, int, float]] = []

    def on_revocation(self, t, server, sim):
        self.events.append((t, "revoke", server, 0.0))

    def on_capacity_dip(self, t, server, scale, sim):
        self.events.append((t, "dip", server, float(scale)))

    def on_server_arrival(self, t, server, sim):
        self.events.append((t, "arrive", server, 1.0))

    def on_evacuation_deadline(self, t, server, sim):
        self.events.append((t, "deadline", server, 0.0))

    def finalize(self, sim):
        return list(self.events)

    def merge_shards(self, payloads, shards):
        """Remap servers to global indices, restore the global event order.

        Failure events sort by ``(t, kind, server)`` in the injector's
        merged stream; the kind is recoverable from the entry itself
        (``_KINDS`` plus the dip-end/dip-start split on ``scale == 1.0``),
        so the flat run's exact ordering can be reconstructed.  Server
        remapping goes through :meth:`ShardMap.to_global_server` because
        arrived servers live past the shard's contiguous base range.
        """
        entries = []
        for payload, shard in zip(payloads, shards):
            for t, event, server, scale in payload:
                entries.append((t, event, shard.to_global_server(server), scale))

        def sort_key(entry):
            t, event, _server, scale = entry
            kind = self._KINDS.get(event, _DIP_END if scale == 1.0 else _DIP_START)
            return (t, kind, entry[2])

        entries.sort(key=sort_key)
        return entries

    def snapshot(self):
        return list(self.events)

    def restore(self, state):
        self.events = list(state)


@register("metrics", "rejection-log")
class RejectionLogCollector(MetricsCollector):
    """Records each rejection as ``(interval, vm_index, deflatable)``."""

    name = "rejection-log"

    def __init__(self) -> None:
        self.rejections: list[tuple[float, int, bool]] = []

    def on_reject(self, t, vm, sim):
        self.rejections.append((t, vm, bool(sim.vm_deflatable[vm])))

    def finalize(self, sim):
        return list(self.rejections)

    def merge_shards(self, payloads, shards):
        """Remap VMs to global indices, restore the global event order.

        Rejections only happen at arrival (START) events, which sort by
        ``(t, vm)`` within one interval, so the merged order is exact.
        """
        entries = []
        for payload, shard in zip(payloads, shards):
            for t, vm, deflatable in payload:
                entries.append((t, int(shard.vm_global[vm]), deflatable))
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return entries

    def snapshot(self):
        return list(self.rejections)

    def restore(self, state):
        self.rejections = list(state)
