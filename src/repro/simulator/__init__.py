"""Discrete-event simulation: engine, trace-driven cluster replay, sweeps."""

from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimResult,
    ClusterSimulator,
    VMOutcome,
    servers_for_overcommitment,
)
from repro.simulator.engine import EventQueue, Simulator
from repro.simulator.metrics import (
    DEFAULT_OVERCOMMIT_LEVELS,
    DEFAULT_POLICIES,
    OvercommitSweep,
    SweepPoint,
    overcommitment_sweep,
)

__all__ = [
    "ClusterSimConfig",
    "ClusterSimResult",
    "ClusterSimulator",
    "VMOutcome",
    "servers_for_overcommitment",
    "EventQueue",
    "Simulator",
    "DEFAULT_OVERCOMMIT_LEVELS",
    "DEFAULT_POLICIES",
    "OvercommitSweep",
    "SweepPoint",
    "overcommitment_sweep",
]
