"""Discrete-event simulation: engine, trace-driven cluster replay, sweeps.

The cluster replay's pluggable pieces (admission controllers, placement
scorers, metrics collectors) live in :mod:`repro.simulator.components` and
are resolved by name through :mod:`repro.registry`.
"""

from repro.simulator.cluster_sim import (
    ClusterSimConfig,
    ClusterSimResult,
    ClusterSimulator,
    VMOutcome,
    servers_for_overcommitment,
)
from repro.simulator.components import (
    AdmissionController,
    MetricsCollector,
    PlacementScorer,
)
from repro.simulator.engine import EventQueue, Simulator
from repro.simulator.metrics import (
    DEFAULT_OVERCOMMIT_LEVELS,
    DEFAULT_POLICIES,
    OvercommitSweep,
    SweepPoint,
    overcommitment_sweep,
)

__all__ = [
    "AdmissionController",
    "MetricsCollector",
    "PlacementScorer",
    "ClusterSimConfig",
    "ClusterSimResult",
    "ClusterSimulator",
    "VMOutcome",
    "servers_for_overcommitment",
    "EventQueue",
    "Simulator",
    "DEFAULT_OVERCOMMIT_LEVELS",
    "DEFAULT_POLICIES",
    "OvercommitSweep",
    "SweepPoint",
    "overcommitment_sweep",
]
