"""Trace-driven cluster simulation (Section 7.4 of the paper).

Replays an Azure-style VM trace against a cluster of identical servers under
a deflation policy (or the preemption baseline), measuring:

* **failure probability** (Figure 20) — the probability that a deflatable
  VM is either refused at admission because no server can reclaim enough
  resources, or (baseline) preempted during its lifetime;
* **throughput loss** (Figure 21) — lost work as a fraction of demanded
  work, where a VM loses work whenever its CPU usage exceeds its deflated
  allocation (the area above the allocation in Figure 4);
* **revenue** (Figure 22) — deflatable-VM revenue under the static /
  priority / allocation pricing models, normalized per server so shrinking
  the cluster (raising overcommitment) shows up as a revenue-density gain.

Following the paper's setup (Section 7.1.2): interactive VMs are deflatable,
batch/unknown VMs are on-demand; priorities come from the 95th-percentile
CPU usage (4 levels); bin-packing and deflation consider CPU cores and
memory; the same trace is replayed while the server count shrinks to raise
overcommitment.

Transient-server failures (revocations, capacity dips) attach through
:meth:`ClusterSimulator.attach_failures`: the injector drives a merged
VM + failure event stream through the same handlers (see
:mod:`repro.failures`), while simulators without an injector run the
original loop untouched.

Hot-path design (profiled on 20k-VM traces; every change is bit-identical
to :mod:`repro.simulator.reference`, the pinned pre-optimization snapshot —
see ``tests/simulator/test_golden_equivalence.py``.  One deliberate
exception: when partitioning is enabled with more pools than servers, the
``_assign_partitions`` trim-loop bug fix drops the *smallest-demand* pools
instead of the lowest-index ones, so that regime intentionally diverges
from the reference):

* events are sorted once as a structured NumPy array instead of a Python
  tuple list with a lambda key;
* the cluster's committed CPU is maintained as an incrementally updated
  scalar, so peak tracking no longer scans ``committed[:, 0]`` per start
  event (exact, since core counts are integers);
* candidate-server index arrays are precomputed per pool instead of being
  rebuilt with ``np.arange``/``np.nonzero`` on every event;
* ``_rebalance`` skips the per-dimension policy solves entirely when a
  server has no pressure and nothing reclaimed (the dominant case below
  full subscription), and caches the per-server resident index/capacity
  gathers between membership changes instead of ``np.fromiter`` per call;
* per-VM allocation histories live in growable flat arrays (one bulk append
  per rebalance) rather than per-VM tuple lists, and ``_collect`` is
  vectorized: never-deflated VMs take closed-form fast paths, and all
  pricing models are evaluated over the whole VM population with array ops
  (order-preserving ``cumsum`` reductions keep float accumulation
  bit-identical to the original per-VM loop);
* ``_rebalance`` solves through per-server :meth:`DeflationPolicy.
  reclaim_plan` objects cached alongside the resident gathers, so the
  priority policy's breakpoint sort is paid once per membership change,
  not once per solve;
* the observer-free failure-free ``run`` loop coalesces each timestamp's
  run of departures into one rebalance per touched server
  (``_handle_end_batch`` documents the equivalence argument; every other
  execution mode stays strictly per-event).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.core.deflation import DeflationPolicy, get_policy
from repro.core.vm import VMClass, priority_from_p95
from repro.errors import SimulationError
from repro.pricing.models import PRICING_MODELS, PricingModel
from repro.registry import create, validate
from repro.simulator.components import (
    AdmissionController,
    DeflationAwareAdmission,
    MetricsCollector,
    PlacementScorer,
)
from repro.traces.schema import VMTraceRecord, VMTraceSet

#: Resource dimensions used for bin-packing and deflation (paper: "We
#: consider each VM's CPU core count and memory size").
_DIMS = 2  # 0 = cpu cores, 1 = memory MB


@dataclass(frozen=True)
class ClusterSimConfig:
    """One simulation run's knobs."""

    n_servers: int
    cores_per_server: float = 48.0
    memory_per_server_mb: float = 128 * 1024
    policy: str = "proportional"  # or "deterministic", "priority", "preemption"
    partitioned: bool = False
    #: Number of priority pools when partitioned (matches PRIORITY_LEVELS).
    n_partitions: int = 4
    #: Minimum allocation fraction for every deflatable VM (QoS floor,
    #: Eq. 2): no VM is deflated below this share of its capacity.
    min_fraction: float = 0.05
    #: Registered admission controller deciding server feasibility.
    admission: str = "deflation-aware"
    #: Registered placement scorer ranking feasible servers.
    scorer: str = "cosine"
    #: Registered metrics collectors observing the event loop; their
    #: ``finalize`` payloads land in ``ClusterSimResult.collected``.
    collectors: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise SimulationError("need >= 1 server")
        if not (0.0 <= self.min_fraction < 1.0):
            raise SimulationError("min_fraction must be in [0, 1)")
        if self.policy != "preemption":
            get_policy(self.policy)  # validate eagerly
        elif self.admission != "deflation-aware":
            # The preemption baseline carries its own fixed admission rule
            # (fit-into-free-capacity, else preempt); silently ignoring a
            # configured controller would fake an ablation.
            raise SimulationError(
                "the preemption baseline does not use a pluggable admission "
                f"controller; admission={self.admission!r} would have no effect"
            )
        validate("admission", self.admission)
        validate("scorer", self.scorer)
        object.__setattr__(self, "collectors", tuple(self.collectors))
        for name in self.collectors:
            validate("metrics", name)


@dataclass
class VMOutcome:
    """Per-VM bookkeeping for the metrics.

    The piecewise-constant allocation history formerly stored here as a
    tuple list now lives in the simulator's flat history arrays; fetch it
    with :meth:`ClusterSimulator.allocation_history`.
    """

    vm_index: int
    deflatable: bool
    priority: float
    cores: float
    placed: bool = False
    rejected: bool = False
    preempted: bool = False
    reclaim_failure: bool = False
    end_interval: float = 0.0  # actual end (may be early if preempted)


@dataclass
class ClusterSimResult:
    """Aggregate metrics of one run."""

    config: ClusterSimConfig
    n_vms: int
    n_deflatable: int
    n_placed: int
    n_rejected_deflatable: int
    n_rejected_on_demand: int
    n_preempted: int
    n_reclaim_failures: int
    peak_committed_cores: float
    total_capacity_cores: float
    throughput_loss: float
    mean_deflation: float
    revenue: dict[str, float]
    revenue_per_server: dict[str, float]
    #: ``finalize`` payloads of the configured metrics collectors, by name.
    collected: dict[str, object] = field(default_factory=dict)

    @property
    def overcommitment(self) -> float:
        """Peak committed CPU over capacity, minus one."""
        if self.total_capacity_cores <= 0:
            return 0.0
        return self.peak_committed_cores / self.total_capacity_cores - 1.0

    @property
    def failure_probability(self) -> float:
        """Fraction of deflatable VMs that failed (Figure 20's metric)."""
        if self.n_deflatable == 0:
            return 0.0
        failures = (
            self.n_rejected_deflatable + self.n_preempted + self.n_reclaim_failures
        )
        return failures / self.n_deflatable


class VMMetricTerms(NamedTuple):
    """Per-VM metric terms over the deflatable placed population.

    All arrays are aligned with ``sel`` (the ascending VM indices of
    deflatable placed VMs).  Produced by
    :meth:`ClusterSimulator._metric_terms`, reduced by
    :func:`reduce_vm_terms`; the sharded engine concatenates shard-local
    terms (with ``sel`` mapped to global indices), reorders them by global
    VM index, and runs the *same* reduction, which is what keeps its merged
    metrics bit-identical to a flat run.
    """

    sel: np.ndarray  # global VM indices (ascending)
    demanded: np.ndarray  # demanded work, core-intervals
    lost: np.ndarray  # lost work, core-intervals
    deflation: np.ndarray  # deflation integral, core-intervals
    alloc_integral: np.ndarray  # sum of per-interval allocation fractions
    cores: np.ndarray  # CPU capacity
    lifetimes: np.ndarray  # lifetime, intervals
    priorities: np.ndarray  # admission-time priority snapshot


def reduce_vm_terms(terms: VMMetricTerms) -> dict:
    """Aggregate per-VM terms exactly as the original metrics pass did.

    Returns ``demanded_work`` / ``lost_work`` / ``deflation_sum`` /
    ``deflation_weight`` and the ``revenue`` dict over every registered
    pricing model.  All reductions are order-preserving sequential sums
    (``cumsum``) over the ``sel`` order, so callers feeding the same terms
    in the same order get bit-identical floats — the contract both
    :meth:`ClusterSimulator._collect` and the sharded engine's merger rely
    on.
    """
    sel = terms.sel
    cores_sel = terms.cores
    lifetime_sel = terms.lifetimes
    prio_sel = terms.priorities

    def seq_sum(values: np.ndarray) -> float:
        return float(np.cumsum(values)[-1]) if values.size else 0.0

    demanded_work = seq_sum(terms.demanded)
    lost_work = seq_sum(terms.lost)
    deflation_sum = seq_sum(terms.deflation)
    deflation_weight = seq_sum(lifetime_sel * cores_sel)

    # All pricing models over the whole population at once.  Per-VM rate
    # and revenue terms keep the scalar path's operation order
    # ((cores * lifetime) * rate), so the sums are bit-identical.  A
    # model that overrides the public revenue() hook (minimum billing
    # increments, per-VM fees, ...) must not be silently bypassed by the
    # rate-based vectorization — it falls back to the per-VM calls.
    mean_alloc = np.divide(
        terms.alloc_integral,
        lifetime_sel,
        out=np.ones(sel.size),
        where=lifetime_sel != 0.0,
    )
    alloc_frac = np.minimum(mean_alloc, 1.0)
    base_terms = cores_sel * lifetime_sel
    revenue = {}
    for name, model in PRICING_MODELS.items():
        if type(model).revenue is PricingModel.revenue:
            revenue[name] = seq_sum(base_terms * model.rate_batch(prio_sel, alloc_frac))
        else:
            total = 0.0
            for k in range(sel.size):
                total += model.revenue(
                    capacity_units=float(cores_sel[k]),
                    duration=float(lifetime_sel[k]),
                    priority=float(prio_sel[k]),
                    allocation_fraction=float(alloc_frac[k]),
                )
            revenue[name] = total

    return {
        "demanded_work": demanded_work,
        "lost_work": lost_work,
        "deflation_sum": deflation_sum,
        "deflation_weight": deflation_weight,
        "revenue": revenue,
    }


def vm_class_arrays(traces: VMTraceSet) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-VM ``(caps, priority, deflatable)`` arrays for one trace set.

    The paper's class mapping (Section 7.1.2): interactive VMs are
    deflatable with priorities from the 95th-percentile CPU usage;
    batch/unknown VMs are on-demand at priority 1.  The single source of
    truth shared by :meth:`ClusterSimulator._prepare_vms` and the sharded
    engine's splitter — the two must agree exactly for cross-engine
    bit-equivalence, so neither may reimplement it.
    """
    n = len(traces)
    vm_caps = np.zeros((n, _DIMS))
    vm_prio = np.ones(n)
    vm_deflatable = np.zeros(n, dtype=bool)
    for i, rec in enumerate(traces):
        vm_caps[i, 0] = rec.cores
        vm_caps[i, 1] = rec.memory_mb
        if rec.vm_class == VMClass.INTERACTIVE:
            vm_deflatable[i] = True
            vm_prio[i] = priority_from_p95(rec.p95_cpu)
    return vm_caps, vm_prio, vm_deflatable


def partition_layout(
    vm_prio: np.ndarray,
    vm_deflatable: np.ndarray,
    vm_caps: np.ndarray,
    n_servers: int,
) -> tuple[list[float], np.ndarray]:
    """Priority-pool server layout for partitioned mode (Section 5.2.1).

    Returns ``(levels, counts)``: the sorted distinct deflatable priority
    levels present in the trace (rounded to 6 decimals) and the server
    count of every pool — one pool per level plus a trailing on-demand
    pool — sized by each class's committed-capacity share of the trace.
    Pools are laid out contiguously, so pool ``k`` owns global server
    indices ``[counts[:k].sum(), counts[:k].sum() + counts[k])``.

    Shared by :meth:`ClusterSimulator._assign_partitions` and the sharded
    engine's splitter (:mod:`repro.simulator.sharded`), which relies on the
    contiguous layout as its shard boundary — the two must agree exactly
    for cross-engine bit-equivalence.
    """
    levels = sorted(set(np.round(vm_prio[vm_deflatable], 6)))
    # Demand share per pool (deflatable levels + on-demand pool).
    shares = []
    for lvl in levels:
        mask = vm_deflatable & (np.abs(vm_prio - lvl) < 1e-6)
        shares.append(vm_caps[mask, 0].sum())
    shares.append(vm_caps[~vm_deflatable, 0].sum())
    shares = np.asarray(shares, dtype=np.float64)
    shares = shares / shares.sum() if shares.sum() > 0 else np.ones_like(shares) / len(shares)
    counts = np.maximum(1, np.round(shares * n_servers).astype(int))
    # Trim to exactly n_servers without violating the one-server minimum:
    # shrink the largest pool that still has more than one server.  Only
    # when there are more pools than servers is the minimum infeasible —
    # then drop whole pools, smallest demand share first, so the busiest
    # priority levels keep their servers.
    while counts.sum() > n_servers:
        above_min = counts > 1
        if np.any(above_min):
            candidates = np.where(above_min, counts, -1)
            counts[np.argmax(candidates)] -= 1
        else:
            alive = np.nonzero(counts > 0)[0]
            drop = alive[np.argmin(shares[alive])]
            counts[drop] = 0
    while counts.sum() < n_servers:
        counts[np.argmax(shares)] += 1
    return levels, counts


def vm_pool_assignment(
    vm_prio: np.ndarray, vm_deflatable: np.ndarray, levels: list[float]
) -> np.ndarray:
    """Pool index of every VM under a :func:`partition_layout` of ``levels``.

    Deflatable VMs route to their priority level's pool (unknown levels
    default to pool 0, preserving the original per-event lookup's
    behaviour); on-demand VMs route to the trailing pool ``len(levels)``.
    Shared by :meth:`ClusterSimulator._refresh_derived` and the sharded
    splitter.
    """
    lvls = np.round(vm_prio, 6)
    pool = np.full(vm_prio.size, len(levels), dtype=np.int64)
    pool[vm_deflatable] = 0
    for k, lvl in enumerate(levels):
        pool[vm_deflatable & (lvls == lvl)] = k
    return pool


class ClusterSimulator:
    """Array-backed replay of one trace against one configuration.

    Admission feasibility, server scoring, and metrics collection are
    pluggable components resolved by name from the unified registry (kinds
    ``admission``, ``scorer``, ``metrics``); the event loop itself stays
    fixed.
    """

    #: Subclasses may allow empty trace sets (the sharded engine replays a
    #: VM-less pool so its servers still see failure events and count
    #: toward capacity); the public simulator keeps rejecting them.
    _allow_empty = False

    def __init__(self, traces: VMTraceSet, config: ClusterSimConfig) -> None:
        if len(traces) == 0 and not self._allow_empty:
            raise SimulationError("empty trace set")
        self.traces = traces
        self.config = config
        #: Optional failure injector (see :meth:`attach_failures`); when
        #: None the replay runs the original failure-free loop untouched.
        self._injector = None
        #: Liveness mask over servers, created lazily on the first
        #: revocation (None = everything alive, the failure-free fast path).
        self._server_alive: np.ndarray | None = None
        #: When not None, :meth:`_preempt` appends each victim here — the
        #: injector uses it to attribute preemption cascades triggered by
        #: failure-driven placements.
        self._preempt_log: list[int] | None = None
        #: Open event stream for checkpoint/resume (:meth:`run_until`);
        #: None until a stream is opened — :meth:`run` then executes the
        #: original one-shot loop untouched.
        self._stream: dict | None = None
        #: Per-VM metric terms finalized by :meth:`compact_history` before
        #: their history rows were dropped (streaming bounded-memory mode);
        #: consulted by :meth:`_metric_terms` instead of recomputing.
        self._final_terms: dict[str, np.ndarray] | None = None
        self._policy: DeflationPolicy | None = (
            None if config.policy == "preemption" else get_policy(config.policy)
        )
        self._admission: AdmissionController = create("admission", config.admission)
        self._scorer: PlacementScorer = create("scorer", config.scorer)
        self._collectors: tuple[MetricsCollector, ...] = tuple(
            create("metrics", name) for name in config.collectors
        )
        # Exact type check: a subclass may override feasible(), and the
        # no-deflation admission shortcut is only provably equivalent for
        # the stock rule.
        self._stock_admission = type(self._admission) is DeflationAwareAdmission
        self._prepare_vms()
        self._prepare_servers()

    # -- setup ---------------------------------------------------------------------

    def _prepare_vms(self) -> None:
        n = len(self.traces)
        self.vm_caps, self.vm_prio, self.vm_deflatable = vm_class_arrays(self.traces)
        #: Hosting server per VM (-1 = not placed).
        self.vm_server = np.full(n, -1, dtype=np.int64)
        # Outcome flags mirrored as arrays so _collect can count and slice
        # the population without a Python loop over VMOutcome objects.
        self.vm_placed = np.zeros(n, dtype=bool)
        self.vm_rejected = np.zeros(n, dtype=bool)
        self.vm_preempted = np.zeros(n, dtype=bool)
        self.vm_reclaim_failure = np.zeros(n, dtype=bool)
        self.vm_start = np.zeros(n, dtype=np.int64)
        self.vm_end = np.zeros(n, dtype=np.int64)
        self.vm_lifetime = np.zeros(n, dtype=np.int64)
        self.outcomes: list[VMOutcome] = []
        for i, rec in enumerate(self.traces):
            self.vm_start[i] = rec.start_interval
            self.vm_end[i] = rec.end_interval
            self.vm_lifetime[i] = rec.lifetime_intervals
            self.outcomes.append(
                VMOutcome(
                    vm_index=i,
                    deflatable=bool(self.vm_deflatable[i]),
                    priority=float(self.vm_prio[i]),
                    cores=float(rec.cores),
                    end_interval=float(rec.end_interval),
                )
            )
        # Policy floors: priority/deterministic deflate only to pi*M; every
        # policy additionally respects the configured QoS minimum fraction.
        base_floor = self.vm_caps * self.config.min_fraction
        if self.config.policy in ("priority", "deterministic"):
            self.vm_floor = np.maximum(base_floor, self.vm_caps * self.vm_prio[:, None])
        else:
            self.vm_floor = base_floor
        self.vm_floor[~self.vm_deflatable] = 0.0
        # Growable flat allocation-history log: (vm, interval, frac) triples
        # in event order, bulk-appended per rebalance.  ``_last_frac`` holds
        # each VM's most recently recorded fraction (the old per-VM
        # ``hist[-1][1]`` guard).
        self._hist_vm = np.empty(max(4 * n, 64), dtype=np.int64)
        self._hist_t = np.empty(self._hist_vm.size, dtype=np.float64)
        self._hist_f = np.empty(self._hist_vm.size, dtype=np.float64)
        self._hist_n = 0
        self._hist_sorted: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._last_frac = np.ones(n)

    def _prepare_servers(self) -> None:
        cfg = self.config
        s = cfg.n_servers
        self.server_cap = np.tile(
            np.array([cfg.cores_per_server, cfg.memory_per_server_mb]), (s, 1)
        )
        self.committed = np.zeros((s, _DIMS))
        self.reclaimed = np.zeros((s, _DIMS))  # from deflatable VMs
        self.defl_cap = np.zeros((s, _DIMS))  # sum of deflatable capacities
        self.defl_floor = np.zeros((s, _DIMS))  # sum of policy floors
        # Resident sets are insertion-ordered dicts keyed by VM index: O(1)
        # removal (the old lists paid an O(n) ``list.remove`` per departure)
        # while preserving the arrival order that deterministic policies use
        # for tie-breaking.
        self.residents: list[dict[int, None]] = [{} for _ in range(s)]
        self.resident_deflatable: list[dict[int, None]] = [{} for _ in range(s)]
        #: Provisioned fleet size at construction; server arrivals (elastic
        #: transient pools) grow the live arrays past it but never this.
        self._n_initial_servers = s
        #: Servers currently draining toward an evacuation deadline; while
        #: non-zero, placement filters candidates through the liveness mask
        #: (a draining server keeps its capacity, so capacity checks alone
        #: cannot exclude it).
        self._draining_servers = 0
        #: Incrementally maintained ``committed[:, 0].sum()`` (exact: core
        #: counts are integers, so adds/subtracts never lose bits).
        self._committed_cores = 0.0
        #: Per-server cached (idx, caps, floors, prios) gathers over the
        #: deflatable residents; invalidated on membership changes so
        #: ``_rebalance`` stops paying ``np.fromiter`` + fancy-indexing on
        #: every event.
        self._srv_cache: list[tuple | None] = [None] * s
        #: Per-server cached eviction order (ascending priority) for the
        #: preemption baseline; same invalidation discipline.
        self._srv_victims: list[list[int] | None] = [None] * s
        #: Constant per-event operands, hoisted out of the loop.
        self._cap_eps = self.server_cap + 1e-9
        #: Candidate index arrays, precomputed once (read-only).
        self._all_servers = np.arange(s)
        # Partition assignment: deflatable pools 0..n_partitions-1 by
        # priority level, plus one on-demand pool.  Server shares follow the
        # paper's advice to size pools by the workload mix (we use committed
        # capacity shares of each class in the trace).
        self.server_pool = np.full(s, -1, dtype=np.int64)
        if cfg.partitioned:
            self._assign_partitions()
        self._refresh_derived()

    def _assign_partitions(self) -> None:
        cfg = self.config
        levels, counts = partition_layout(
            self.vm_prio, self.vm_deflatable, self.vm_caps, cfg.n_servers
        )
        pools = np.repeat(np.arange(len(counts)), counts)
        self.server_pool = pools[: cfg.n_servers]
        self._pool_of_level = {lvl: k for k, lvl in enumerate(levels)}
        self._on_demand_pool = len(levels)
        # Precompute pool membership so _candidate_servers stops rebuilding
        # np.nonzero masks per event.
        self._pool_members = [
            np.nonzero(self.server_pool == k)[0] for k in range(len(counts))
        ]

    def _refresh_derived(self) -> None:
        """(Re)build caches derived from the per-VM arrays.

        Called at construction *and* at the top of :meth:`run`: the blessed
        ``engine.build()`` flow mutates ``vm_prio`` / ``vm_floor`` /
        ``vm_caps`` on the built simulator before replaying (e.g. the
        priority-level ablation), and these snapshots must reflect that
        surgery exactly like the reference's live per-event reads did.
        """
        # Scalar-friendly copies for the preemption inner loops (plain
        # Python floats: the victim scan adds two numbers per resident and
        # NumPy scalar overhead dominated it).
        self._vm_cores_list = self.vm_caps[:, 0].tolist()
        self._vm_mem_list = self.vm_caps[:, 1].tolist()
        self._vm_prio_list = self.vm_prio.tolist()
        #: Normalized demand rows for _choose_server.
        self._demand_norm = self.vm_caps / self.server_cap[0]
        self._vm_caps_eps = self.vm_caps - 1e-9
        if self.config.partitioned:
            self._vm_pool = vm_pool_assignment(
                self.vm_prio, self.vm_deflatable, list(self._pool_of_level)
            )

    # -- failure injection -----------------------------------------------------------

    def attach_failures(self, injector) -> None:
        """Attach a :class:`~repro.failures.injector.FailureInjector`.

        With an injector attached, :meth:`run` hands the replay to
        :meth:`FailureInjector.drive`, which merges the injector's
        revocation/capacity-dip schedule (plus dynamically requeued
        restarts) into the VM event stream and calls back into the same
        ``_handle_start`` / ``_handle_end`` handlers.  Without one, the
        original array-sorted loop runs bit-identically to the pinned
        reference.  The engine calls this for scenarios carrying a
        ``failures`` spec; direct simulator users may call it before
        :meth:`run`.
        """
        self._injector = injector

    def _mark_revoked(self, server: int) -> None:
        """Take a server out of service permanently (failure injection).

        Zeroing the capacity makes the server infeasible for every normal
        placement test; the liveness mask additionally guards the one case
        capacity alone cannot — deflation-aware admission of a VM whose
        own reclaimable pool covers its entire demand (a zero floor), which
        would otherwise "fit" on a dead server and poison the scorer's
        capacity-normalized ranking with divisions by zero.
        """
        if self._server_alive is None:
            self._server_alive = np.ones(len(self.residents), dtype=bool)
        self._server_alive[server] = False
        self.server_cap[server] = 0.0
        self._cap_eps[server] = 1e-9

    def _mark_draining(self, server: int) -> None:
        """Stop placements onto a server pending revocation (warning window).

        The server keeps its capacity — residents run and rebalance as
        usual until the evacuation deadline — so exclusion works through
        the liveness mask plus the ``_draining_servers`` placement filter,
        not through zeroed capacity.
        """
        if self._server_alive is None:
            self._server_alive = np.ones(len(self.residents), dtype=bool)
        self._server_alive[server] = False
        self._draining_servers += 1

    def _end_draining(self, server: int) -> None:
        """The drain resolved (deadline reached); the server stays dead."""
        self._draining_servers -= 1

    def _attach_server(self, index: int) -> None:
        """Attach one arriving server at nominal shape (failure injection).

        Grows every per-server array and cache by one row.  Arrivals must
        be contiguous — ``index`` is the current server count — so global
        and shard-local replays agree on numbering.  In partitioned mode
        the arrival joins pool ``arrival-ordinal mod n_pools``, a static
        rule the sharded engine's slicer replicates.
        """
        n = len(self.residents)
        if index != n:
            raise SimulationError(
                f"server arrivals must be contiguous: expected index {n}, got {index}"
            )
        cfg = self.config
        row = np.array([[cfg.cores_per_server, cfg.memory_per_server_mb]])
        self.server_cap = np.vstack([self.server_cap, row])
        self._cap_eps = np.vstack([self._cap_eps, row + 1e-9])
        zero = np.zeros((1, _DIMS))
        self.committed = np.vstack([self.committed, zero])
        self.reclaimed = np.vstack([self.reclaimed, zero])
        self.defl_cap = np.vstack([self.defl_cap, zero])
        self.defl_floor = np.vstack([self.defl_floor, zero])
        self.residents.append({})
        self.resident_deflatable.append({})
        self._srv_cache.append(None)
        self._srv_victims.append(None)
        self._all_servers = np.arange(n + 1)
        if self._server_alive is not None:
            self._server_alive = np.append(self._server_alive, True)
        if cfg.partitioned:
            pool = (index - self._n_initial_servers) % len(self._pool_members)
            self.server_pool = np.append(self.server_pool, pool)
            self._pool_members[pool] = np.append(self._pool_members[pool], index)
        else:
            self.server_pool = np.append(self.server_pool, -1)

    # -- main loop -----------------------------------------------------------------

    def _build_events(self) -> np.ndarray:
        """Structured ``(t, kind, vm)`` event array, globally sorted.

        Ends (kind 0) before starts (kind 1) at the same interval, ties
        broken by VM index — the exact key the old Python
        ``events.sort(key=...)`` used, minus the per-element lambda calls.
        Shared by the one-shot loop and the resumable stream; both iterate
        the same ``tolist()`` scalars, which is what keeps an interrupted
        replay bit-identical to an uninterrupted one.
        """
        n = len(self.traces)
        events = np.empty(
            2 * n, dtype=[("t", np.float64), ("kind", np.int8), ("vm", np.int64)]
        )
        events["t"][:n] = self.vm_end
        events["kind"][:n] = 0
        events["vm"][:n] = np.arange(n)
        events["t"][n:] = self.vm_start
        events["kind"][n:] = 1
        events["vm"][n:] = np.arange(n)
        events.sort(order=("t", "kind", "vm"))
        return events

    def run(self) -> ClusterSimResult:
        if self._stream is not None:
            # A stream is open (run_until / snapshot restore): finish it.
            return self._collect(self._step_stream(None))
        self._refresh_derived()  # pick up any post-build surgery
        if self._injector is not None:
            return self._collect(self._injector.drive(self))
        events = self._build_events()
        peak_committed = 0.0
        handle_start, handle_end = self._handle_start, self._handle_end
        t_list = events["t"].tolist()
        kind_list = events["kind"].tolist()
        vm_list = events["vm"].tolist()
        n = len(t_list)
        # Observer-free failure-free runs coalesce each timestamp's run of
        # departures into one rebalance per touched server — see
        # _handle_end_batch for why this is bit-identical to the strictly
        # per-event loop, which still serves every other execution mode
        # (collectors attached, injector-driven, streaming).
        batch_ends = not self._collectors
        i = 0
        while i < n:
            t = t_list[i]
            if kind_list[i] == 0:
                if batch_ends:
                    j = i + 1
                    while j < n and kind_list[j] == 0 and t_list[j] == t:
                        j += 1
                    if j - i > 1:
                        self._handle_end_batch(t, vm_list[i:j])
                        i = j
                        continue
                handle_end(t, vm_list[i])
            else:
                handle_start(t, vm_list[i])
                if self._committed_cores > peak_committed:
                    peak_committed = self._committed_cores
            i += 1
        return self._collect(peak_committed)

    # -- checkpoint/resume ---------------------------------------------------------

    def _ensure_stream(self) -> None:
        """Open the resumable event stream (idempotent).

        Mirrors the top of :meth:`run` exactly: derived caches refresh
        once, then either the injector's merged heap starts or the
        failure-free event array is staged with a cursor.
        """
        if self._stream is not None:
            return
        self._refresh_derived()  # pick up any post-build surgery
        if self._injector is not None:
            self._injector.start(self)
            self._stream = {"mode": "heap", "at": 0.0}
            return
        events = self._build_events()
        self._stream = {
            "mode": "array",
            "t": events["t"].tolist(),
            "kind": events["kind"].tolist(),
            "vm": events["vm"].tolist(),
            "cursor": 0,
            "peak": 0.0,
            "at": 0.0,
        }

    def _step_stream(self, until: float | None) -> float:
        """Advance the open stream through events ``t < until``; returns peak."""
        stream = self._stream
        if stream["mode"] == "heap":
            self._injector.step(self, until)
            peak = self._injector._peak
        else:
            t_list, kind_list, vm_list = stream["t"], stream["kind"], stream["vm"]
            i, n = stream["cursor"], len(t_list)
            peak = stream["peak"]
            handle_start, handle_end = self._handle_start, self._handle_end
            while i < n and (until is None or t_list[i] < until):
                if kind_list[i] == 0:
                    handle_end(t_list[i], vm_list[i])
                else:
                    handle_start(t_list[i], vm_list[i])
                    if self._committed_cores > peak:
                        peak = self._committed_cores
                i += 1
            stream["cursor"] = i
            stream["peak"] = peak
        if until is not None and until > stream["at"]:
            stream["at"] = until
        return peak

    def run_until(self, t: float) -> None:
        """Advance the replay through every event strictly before ``t``.

        Opens the resumable stream on first use; subsequent calls must not
        move backwards.  After any number of ``run_until`` steps,
        :meth:`run` finishes the remainder and collects — bit-identical to
        one uninterrupted :meth:`run`.  :meth:`snapshot` freezes the state
        at the current boundary.
        """
        t = float(t)
        self._ensure_stream()
        if t < self._stream["at"]:
            raise SimulationError(
                f"run_until({t}) would move backwards (stream is at "
                f"{self._stream['at']}); snapshots, not rewinds, go back in time"
            )
        self._step_stream(t)

    def snapshot(self):
        """Freeze the current :meth:`run_until` boundary as a `SimSnapshot`."""
        from repro.simulator.snapshot import capture

        return capture(self)

    def restore(self, snap) -> None:
        """Reinstate a :meth:`snapshot` into this freshly built simulator."""
        from repro.simulator.snapshot import restore_into

        restore_into(self, snap)

    def _terms_for_vm(self, i: int) -> tuple[float, float, float, float]:
        """One VM's ``(demanded, lost, deflation, alloc_integral)`` terms.

        The same arithmetic :meth:`_metric_terms` applies, including its
        never-deflated fast path, so finalizing a VM early (streaming
        compaction) yields bit-identical floats to computing it at collect
        time.
        """
        rec = self.traces.records[i]
        cores = float(self.vm_caps[i, 0])
        demanded = float(rec.cpu_util.sum()) * cores
        times, _ = self._history_of(i)
        if not self.vm_preempted[i] and times.size <= 1:
            return demanded, 0.0, 0.0, float(rec.lifetime_intervals)
        alloc = self._allocation_series(rec, self.outcomes[i])
        lost = float(np.maximum(rec.cpu_util - alloc, 0.0).sum()) * cores
        deflation = float((1.0 - alloc).sum()) * cores
        return demanded, lost, deflation, float(alloc.sum())

    def compact_history(self, before: float) -> int:
        """Finalize VMs that ended before ``before`` and drop their history.

        The bounded-memory half of streaming: a long trace advances with
        :meth:`run_until` and periodically compacts, keeping the history
        log proportional to the *live* population instead of the whole
        trace.  Per-VM metric terms are pure once a VM's events are behind
        the stream boundary (requeued restarts always fire before the VM's
        own end), so they are computed now, cached in ``_final_terms``, and
        the rows dropped; :meth:`_metric_terms` serves them back verbatim.
        Returns the number of history rows dropped.
        """
        stream = self._stream
        if stream is None:
            raise SimulationError("compact_history requires an open stream (run_until)")
        before = float(before)
        if before > stream["at"]:
            raise SimulationError(
                f"compact_history({before}) is ahead of the stream boundary "
                f"{stream['at']}: only fully processed prefixes can be finalized"
            )
        n = len(self.traces)
        if self._final_terms is None:
            self._final_terms = {
                "mask": np.zeros(n, dtype=bool),
                "demanded": np.zeros(n),
                "lost": np.zeros(n),
                "deflation": np.zeros(n),
                "alloc_integral": np.zeros(n),
            }
        final = self._final_terms
        newly = np.nonzero(
            self.vm_deflatable & self.vm_placed & (self.vm_end < before) & ~final["mask"]
        )[0]
        pending = self._injector._requeue_pending if self._injector is not None else None
        for i in newly.tolist():
            if pending and i in pending:
                continue  # a restart is still in flight; finalize later
            d, lost, defl, alloc = self._terms_for_vm(i)
            final["mask"][i] = True
            final["demanded"][i] = d
            final["lost"][i] = lost
            final["deflation"][i] = defl
            final["alloc_integral"][i] = alloc
        nh = self._hist_n
        keep = ~final["mask"][self._hist_vm[:nh]]
        kept = int(keep.sum())
        dropped = nh - kept
        if dropped:
            for name in ("_hist_vm", "_hist_t", "_hist_f"):
                arr = getattr(self, name)
                arr[:kept] = arr[:nh][keep]
            self._hist_n = kept
            self._hist_sorted = None
        return dropped

    # -- event handlers -----------------------------------------------------------

    def _candidate_servers(self, vm: int) -> np.ndarray:
        """Cached candidate index array for this VM's pool (do not mutate)."""
        if not self.config.partitioned:
            return self._all_servers
        return self._pool_members[self._vm_pool[vm]]

    def _handle_start(self, t: float, vm: int) -> None:
        if not self._place(t, vm):
            self._reject(t, vm, self.outcomes[vm])

    def _place(self, t: float, vm: int) -> bool:
        """Admit ``vm`` onto the best feasible server; False if none can.

        This is the placement path shared by trace arrivals, evacuations
        off revoked servers, and requeued restarts: feasibility filtering
        (admission component), no-deflation preference, scoring, admission
        bookkeeping, and the post-admit rebalance.  Rejection bookkeeping
        stays with the callers — an arrival that fails is *rejected*, an
        evacuee that fails is *lost*.
        """
        demand = self.vm_caps[vm]
        candidates = self._candidate_servers(vm)
        if self._draining_servers:
            # Draining servers keep full capacity until their deadline, so
            # only the liveness mask can exclude them (this also drops
            # already-revoked servers, which zeroed capacity would have
            # excluded anyway).  Gated on the counter: failure-free runs
            # and drain-free failure runs never pay the gather.
            candidates = candidates[self._server_alive[candidates]]
        if candidates.size == 0:
            return False

        if self._policy is None:
            return self._place_preemption(t, vm, candidates)

        # Prefer servers that can host the VM without deflating anyone —
        # "when there is surplus capacity in the cluster, the cloud manager
        # allocates these resources to lower priority VMs (without deflating
        # them)" (Section 5).  Only under genuine pressure do we fall back
        # to deflation-requiring servers.  Under the stock deflation-aware
        # rule a no-deflation server is always feasible (its overflow is
        # <= 0 and reclaimable pools are never negative), so when any exist
        # the admission controller does not need to run at all.
        whole_cluster = candidates is self._all_servers
        if self._stock_admission:
            if whole_cluster:  # gather-free: candidates are rows 0..s-1
                no_deflation = (self.committed + demand <= self._cap_eps).all(axis=1)
            else:
                no_deflation = (
                    self.committed[candidates] + demand <= self._cap_eps[candidates]
                ).all(axis=1)
            if no_deflation.all():
                pool_idx = candidates
            elif no_deflation.any():
                pool_idx = candidates[no_deflation]
            else:
                pool_idx = self._admission.feasible(self, vm, candidates)
                if self._server_alive is not None and pool_idx.size:
                    pool_idx = pool_idx[self._server_alive[pool_idx]]
                if pool_idx.size == 0:
                    return False
        else:
            feas_idx = self._admission.feasible(self, vm, candidates)
            if self._server_alive is not None and feas_idx.size:
                feas_idx = feas_idx[self._server_alive[feas_idx]]
            if feas_idx.size == 0:
                return False
            no_deflation = (
                self.committed[feas_idx] + demand <= self._cap_eps[feas_idx]
            ).all(axis=1)
            pool_idx = feas_idx[no_deflation] if no_deflation.any() else feas_idx

        if pool_idx.size == 1:
            # argmax over one candidate is that candidate; skip the scoring.
            server = int(pool_idx[0])
        else:
            # Availability (Section 5.2): free + deflatable/overcommitment.
            if pool_idx is self._all_servers:
                com, recl = self.committed, self.reclaimed
                dcap, dfloor, scap = self.defl_cap, self.defl_floor, self.server_cap
            else:
                com, recl = self.committed[pool_idx], self.reclaimed[pool_idx]
                dcap, dfloor = self.defl_cap[pool_idx], self.defl_floor[pool_idx]
                scap = self.server_cap[pool_idx]
            used = com - recl
            free = np.maximum(scap - used, 0.0)
            headroom = np.maximum((dcap - recl) - dfloor, 0.0)
            oc = np.maximum(com / scap, 1.0)
            availability = free + headroom / oc
            server = self._choose_server(vm, pool_idx, availability, scap)

        self._admit(t, vm, server)
        self._rebalance(t, server)
        return True

    def _choose_server(
        self,
        vm: int,
        pool_idx: np.ndarray,
        availability: np.ndarray,
        cap_rows: np.ndarray | None = None,
    ) -> int:
        """Rank candidate servers with the configured scorer; argmax wins.

        Both vectors are normalized into capacity fractions so scorers
        compare shapes, not raw units (memory MB would dwarf CPU cores).
        ``cap_rows`` carries ``server_cap[pool_idx]`` when the caller already
        gathered it.
        """
        if cap_rows is None:
            cap_rows = self.server_cap[pool_idx]
        avail_norm = availability / cap_rows
        scores = self._scorer.score(self._demand_norm[vm], avail_norm)
        return int(pool_idx[int(np.argmax(scores))])

    def _admit(self, t: float, vm: int, server: int) -> None:
        out = self.outcomes[vm]
        out.placed = True
        self.vm_placed[vm] = True
        self.committed[server] += self.vm_caps[vm]
        self._committed_cores += float(self.vm_caps[vm, 0])
        self.residents[server][vm] = None
        self.vm_server[vm] = server
        if self.vm_deflatable[vm]:
            self.resident_deflatable[server][vm] = None
            self.defl_cap[server] += self.vm_caps[vm]
            self.defl_floor[server] += self.vm_floor[vm]
            self._srv_cache[server] = None
            self._srv_victims[server] = None
            self._append_history_one(vm, t, 1.0)
            self._last_frac[vm] = 1.0
        for c in self._collectors:
            c.on_admit(t, vm, server, self)

    def _reject(self, t: float, vm: int, out: VMOutcome) -> None:
        out.rejected = True
        self.vm_rejected[vm] = True
        for c in self._collectors:
            c.on_reject(t, vm, self)

    def _detach(self, vm: int, server: int) -> None:
        """Remove a VM from a server's bookkeeping (no outcome changes).

        Shared by normal departures, preemptions, and failure-injected
        evacuations/kills; the caller decides what the removal *means*.
        """
        self.committed[server] -= self.vm_caps[vm]
        self._committed_cores -= float(self.vm_caps[vm, 0])
        del self.residents[server][vm]
        if self.vm_deflatable[vm]:
            del self.resident_deflatable[server][vm]
            self.defl_cap[server] -= self.vm_caps[vm]
            self.defl_floor[server] -= self.vm_floor[vm]
            self._srv_cache[server] = None
            self._srv_victims[server] = None

    def _reattach(self, vm: int, server: int) -> None:
        """Exact inverse of :meth:`_detach` (no collectors, no history).

        Used by the failure injector when a budgeted drain migration finds
        no destination: the VM never left the (still-running) source, so
        its bookkeeping is restored verbatim and the evacuation retries at
        the next tick.
        """
        self.committed[server] += self.vm_caps[vm]
        self._committed_cores += float(self.vm_caps[vm, 0])
        self.residents[server][vm] = None
        if self.vm_deflatable[vm]:
            self.resident_deflatable[server][vm] = None
            self.defl_cap[server] += self.vm_caps[vm]
            self.defl_floor[server] += self.vm_floor[vm]
            self._srv_cache[server] = None
            self._srv_victims[server] = None

    def _handle_end(self, t: float, vm: int) -> None:
        out = self.outcomes[vm]
        if not out.placed or out.preempted:
            return
        server = int(self.vm_server[vm])
        self._detach(vm, server)
        for c in self._collectors:
            c.on_end(t, vm, server, self)
        if self._policy is not None:
            self._rebalance(t, server)

    def _handle_end_batch(self, t: float, vms: list) -> None:
        """One timestamp's departures with a single rebalance per server.

        Only the observer-free, failure-free array path in :meth:`run` calls
        this; everything else stays strictly per-event.  Equivalence with the
        sequential loop, in full:

        * Detaches are independent per-VM bookkeeping, applied in the same
          event order, so the post-batch membership and committed totals are
          identical.
        * Rebalance recomputes targets from capacities and the server's
          *current* pressure (recompute-from-capacity semantics), so one
          rebalance over the final membership lands on exactly the state the
          sequential loop's *last* rebalance of that server produced —
          **provided that final rebalance runs at all**.  The one exception
          is a batch that detaches *every* deflatable resident of a server:
          ``_rebalance`` early-returns on an empty deflatable set without
          touching ``self.reclaimed[server]``, so in the sequential loop the
          residue left behind comes from the last rebalance that still saw a
          deflatable resident — an *intermediate* membership this batch
          never visits.  That residue feeds the availability score of later
          placements (``used = committed - reclaimed``), so the whole
          timestamp falls back to strict per-event processing whenever a
          touched server's deflatable population would be emptied.
        * The skipped intermediate rebalances could only have appended
          allocation-history rows at this same timestamp; the piecewise-
          constant allocation series reads the last row at or before each
          grid point (``searchsorted(..., side="right")``), so those rows
          were invisible to every metric, and ``_last_frac`` converges to
          the same final value either way.
        * In a failure-free run a departure can never flip a satisfiable
          server to unsatisfied: the required reclaim drops by the full
          departing capacity while the reclaimable pool drops by at most
          that, so no intermediate rebalance could have raised a
          ``reclaim_failure`` the final one misses.

        Collectors force the per-event path because their hooks observe the
        sequential intermediate states; the golden and randomized
        equivalence suites pin all of the above against the unbatched
        reference simulator and stream/resume replays, and
        ``tests/simulator/test_batched_ends.py`` pins the emptied-server
        residue case directly.
        """
        outcomes = self.outcomes
        vm_server = self.vm_server
        departing: list[tuple[int, int]] = []
        defl_departing: dict[int, int] = {}
        for vm in vms:
            out = outcomes[vm]
            if not out.placed or out.preempted:
                continue
            server = int(vm_server[vm])
            departing.append((vm, server))
            if self.vm_deflatable[vm]:
                defl_departing[server] = defl_departing.get(server, 0) + 1
        if self._policy is not None and any(
            n == len(self.resident_deflatable[s]) for s, n in defl_departing.items()
        ):
            # A server's deflatable population empties this timestamp: its
            # reclaimed residue depends on intermediate memberships (see
            # docstring), so replay the batch exactly as the sequential
            # loop would.  Rare, and correctness beats the batching win.
            for vm, server in departing:
                self._detach(vm, server)
                self._rebalance(t, server)
            return
        touched: dict[int, None] = {}
        for vm, server in departing:
            self._detach(vm, server)
            touched[server] = None
        if self._policy is not None:
            for server in touched:
                self._rebalance(t, server)

    def _rebalance(self, t: float, server: int) -> None:
        """Recompute deflatable allocations on one server under its pressure."""
        assert self._policy is not None
        defl = self.resident_deflatable[server]
        if not defl:
            return
        committed = self.committed[server]
        r0 = committed[0] - self.server_cap[server, 0]
        r1 = committed[1] - self.server_cap[server, 1]
        # Fast path: no pressure and nothing reclaimed.  The policy solves
        # would return all-zero reclaims with every resident at its last
        # recorded full allocation (the ``reclaimed == 0`` invariant implies
        # every resident's last recorded fraction is 1.0), so the whole
        # per-dimension evaluation is a no-op; only observers run.
        if (
            r0 <= 0.0
            and r1 <= 0.0
            and self.reclaimed[server, 0] == 0.0
            and self.reclaimed[server, 1] == 0.0
        ):
            for c in self._collectors:
                c.on_rebalance(t, server, self)
            return
        required = (r0, r1)
        cache = self._srv_cache[server]
        if cache is None:
            idx = np.fromiter(defl, dtype=np.int64, count=len(defl))
            caps = self.vm_caps[idx]
            cache = (
                idx,
                # Contiguous per-dimension columns for the policy solves.
                (caps[:, 0].copy(), caps[:, 1].copy()),
                (self.vm_floor[idx, 0], self.vm_floor[idx, 1]),
                self.vm_prio[idx],
                np.maximum(caps[:, 0], 1e-12),  # frac denominator
                # Per-dimension reclaim plans, built lazily on first solve:
                # the plan hoists membership-dependent work (the priority
                # policy's breakpoint sort) out of the rebalance storm, and
                # its lifetime is exactly the cache's — any membership change
                # drops both.  Results are bit-identical to the one-shot
                # trusted entry (tests/core/test_deflation_trusted.py).
                [None] * _DIMS,
            )
            self._srv_cache[server] = cache
        idx, caps_dim, floors_dim, prios, frac_denom, plans = cache
        new_reclaimed = np.zeros((idx.size, _DIMS))
        unsatisfied = False
        for r in range(_DIMS):
            req = float(required[r])
            if req <= 0.0:
                # The policy short-circuits required <= 0 into an all-zero,
                # satisfied reclaim; keep the zero rows without paying its
                # input validation (typically the memory dimension).
                continue
            solve = plans[r]
            if solve is None:
                solve = plans[r] = self._policy.reclaim_plan(
                    caps_dim[r], floors_dim[r], prios
                )
            result = solve(req)
            new_reclaimed[:, r] = result.reclaimed
            if not result.satisfied:
                unsatisfied = True
        self.reclaimed[server] = new_reclaimed.sum(axis=0)
        if unsatisfied:
            # Should not happen (feasibility was checked at admission), but a
            # departure race could in principle expose it; count it.
            self.vm_reclaim_failure[idx] = True
            for j in idx:
                self.outcomes[int(j)].reclaim_failure = True
        # Record CPU allocation fraction changes (bulk append).
        frac = 1.0 - new_reclaimed[:, 0] / frac_denom
        changed = np.abs(frac - self._last_frac[idx]) > 1e-9
        if changed.any():
            sel = idx[changed]
            fsel = frac[changed]
            self._append_history_bulk(sel, t, fsel)
            self._last_frac[sel] = fsel
        for c in self._collectors:
            c.on_rebalance(t, server, self)

    # -- preemption baseline ---------------------------------------------------------

    def _place_preemption(self, t: float, vm: int, candidates: np.ndarray) -> bool:
        demand = self.vm_caps[vm]
        if candidates is self._all_servers:
            free = self.server_cap - self.committed
        else:
            free = self.server_cap[candidates] - self.committed[candidates]
        fits = (free >= self._vm_caps_eps[vm]).all(axis=1)
        fit_idx = candidates[fits]
        if fit_idx.size > 0:
            self._admit(t, vm, self._choose_server(vm, fit_idx, np.maximum(free[fits], 0.0)))
            return True
        if self.vm_deflatable[vm]:
            # Low-priority arrivals are not allowed to preempt others.
            return False
        # On-demand under pressure: preempt deflatable VMs, lowest priority
        # first, on the server needing the fewest preemptions.  Plans longer
        # than the best one found so far can never win (strictly-fewer
        # tie-breaking), so later servers abandon their scans early.
        d0, d1 = float(demand[0]), float(demand[1])
        best_server, best_victims = -1, None
        limit = None
        for s in candidates.tolist():
            victims = self._plan_victims(s, d0, d1, limit)
            if victims is None:
                continue
            if best_victims is None or len(victims) < len(best_victims):
                best_server, best_victims = s, victims
                limit = len(best_victims)
        if best_victims is None:
            return False
        for victim in best_victims:
            self._preempt(t, victim)
        self._admit(t, vm, best_server)
        return True

    def _preemption_plan(self, server: int, demand: np.ndarray) -> list[int] | None:
        """Victims (ascending priority) freeing enough room, or None."""
        return self._plan_victims(server, float(demand[0]), float(demand[1]), None)

    def _plan_victims(
        self, server: int, d0: float, d1: float, limit: int | None
    ) -> list[int] | None:
        """Scalar-math preemption planner.

        ``limit`` prunes plans that already match the caller's best length —
        they lose the strictly-fewer comparison regardless of how they end.
        """
        need0 = d0 - (self.server_cap[server, 0] - self.committed[server, 0])
        need1 = d1 - (self.server_cap[server, 1] - self.committed[server, 1])
        if need0 <= 1e-9 and need1 <= 1e-9:
            return []
        # Evicting every deflatable resident frees defl_cap, so servers far
        # short of the need can skip the victim scan.  The margin is kept
        # three orders looser than the scan's 1e-9 tolerance so float noise
        # between the incremental defl_cap sum and the scan's running sum
        # can never prune a server the scan would accept; gray-zone servers
        # fall through and the scan decides exactly.
        if self.defl_cap[server, 0] < need0 - 1e-6 or self.defl_cap[server, 1] < need1 - 1e-6:
            return None
        order = self._srv_victims[server]
        if order is None:
            prio = self._vm_prio_list
            order = sorted(self.resident_deflatable[server], key=lambda v: (prio[v], v))
            self._srv_victims[server] = order
        cores, mem = self._vm_cores_list, self._vm_mem_list
        victims: list[int] = []
        freed0 = freed1 = 0.0
        for v in order:
            if freed0 >= need0 - 1e-9 and freed1 >= need1 - 1e-9:
                break
            victims.append(v)
            if limit is not None and len(victims) >= limit:
                return None
            freed0 += cores[v]
            freed1 += mem[v]
        if freed0 >= need0 - 1e-9 and freed1 >= need1 - 1e-9:
            return victims
        return None

    def _preempt(self, t: float, vm: int) -> None:
        if self._preempt_log is not None:
            self._preempt_log.append(vm)
        out = self.outcomes[vm]
        out.preempted = True
        self.vm_preempted[vm] = True
        out.end_interval = t
        server = int(self.vm_server[vm])
        self._detach(vm, server)
        self._append_history_one(vm, t, 0.0)
        self._last_frac[vm] = 0.0
        for c in self._collectors:
            c.on_preempt(t, vm, server, self)

    # -- allocation-history log --------------------------------------------------------

    def _hist_reserve(self, extra: int) -> None:
        need = self._hist_n + extra
        if need <= self._hist_vm.size:
            return
        size = max(need, 2 * self._hist_vm.size)
        for name in ("_hist_vm", "_hist_t", "_hist_f"):
            old = getattr(self, name)
            grown = np.empty(size, dtype=old.dtype)
            grown[: self._hist_n] = old[: self._hist_n]
            setattr(self, name, grown)

    def _append_history_one(self, vm: int, t: float, frac: float) -> None:
        self._hist_reserve(1)
        i = self._hist_n
        self._hist_vm[i] = vm
        self._hist_t[i] = t
        self._hist_f[i] = frac
        self._hist_n = i + 1
        self._hist_sorted = None

    def _append_history_bulk(self, vms: np.ndarray, t: float, fracs: np.ndarray) -> None:
        k = vms.size
        self._hist_reserve(k)
        i = self._hist_n
        self._hist_vm[i : i + k] = vms
        self._hist_t[i : i + k] = t
        self._hist_f[i : i + k] = fracs
        self._hist_n = i + k
        self._hist_sorted = None

    def _history_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The log grouped by VM (stable, so per-VM order stays event order)."""
        if self._hist_sorted is None:
            n = self._hist_n
            order = np.argsort(self._hist_vm[:n], kind="stable")
            self._hist_sorted = (
                self._hist_vm[:n][order],
                self._hist_t[:n][order],
                self._hist_f[:n][order],
            )
        return self._hist_sorted

    def _history_of(self, vm: int) -> tuple[np.ndarray, np.ndarray]:
        """(intervals, fractions) recorded for one VM, in event order."""
        svm, st, sf = self._history_arrays()
        lo = int(np.searchsorted(svm, vm, side="left"))
        hi = int(np.searchsorted(svm, vm, side="right"))
        return st[lo:hi], sf[lo:hi]

    def allocation_history(self, vm: int) -> list[tuple[float, float]]:
        """Piecewise-constant ``(interval, frac)`` history of one VM."""
        times, fracs = self._history_of(vm)
        return list(zip(times.tolist(), fracs.tolist()))

    # -- metrics -----------------------------------------------------------------------

    def _allocation_series(self, rec: VMTraceRecord, out: VMOutcome) -> np.ndarray:
        """Per-interval CPU allocation fraction over the VM's lifetime."""
        n = rec.lifetime_intervals
        if out.preempted:
            n = max(0, min(n, int(math.ceil(out.end_interval - rec.start_interval))))
        alloc = np.ones(rec.lifetime_intervals)
        times, fracs = self._history_of(out.vm_index)
        if times.size == 0:
            return alloc
        times = times - rec.start_interval
        grid = np.arange(rec.lifetime_intervals, dtype=np.float64)
        pos = np.searchsorted(times, grid, side="right") - 1
        alloc = np.where(pos >= 0, fracs[np.clip(pos, 0, len(fracs) - 1)], 1.0)
        if out.preempted:
            alloc[n:] = 0.0
        return alloc

    def _metric_terms(self) -> "VMMetricTerms":
        """Per-VM metric terms over the deflatable placed population.

        The terms are pure per-VM quantities (no cross-VM accumulation), so
        they can be computed shard-locally and re-reduced in global VM order
        by the sharded engine; :func:`reduce_vm_terms` performs the exact
        reductions :meth:`_collect` applies to them.
        """
        records = self.traces.records
        sel = np.nonzero(self.vm_deflatable & self.vm_placed)[0]

        # Per-VM metric terms, later reduced with cumsum (sequential, so the
        # float accumulation order matches the original per-VM `+=` loop).
        demanded_t = np.zeros(sel.size)
        lost_t = np.zeros(sel.size)
        deflation_t = np.zeros(sel.size)
        alloc_integral = np.zeros(sel.size)
        cores_sel = self.vm_caps[sel, 0] if sel.size else np.zeros(0)
        lifetime_sel = self.vm_lifetime[sel].astype(np.float64)

        # A VM whose history is just its admission entry (fraction 1.0) was
        # never deflated nor preempted: its allocation series is identically
        # 1.0, so lost work and deflation are exactly 0.0 and the allocation
        # integral is exactly its lifetime — no series reconstruction needed.
        if sel.size:
            svm, _, _ = self._history_arrays()
            hist_len = np.searchsorted(svm, sel, side="right") - np.searchsorted(
                svm, sel, side="left"
            )
            trivial = ~self.vm_preempted[sel] & (hist_len <= 1)
        else:
            trivial = np.zeros(0, dtype=bool)

        final = self._final_terms
        for k, i in enumerate(sel.tolist()):
            if final is not None and final["mask"][i]:
                # Finalized during streaming compaction (its history rows
                # are gone); serve the cached terms back verbatim.
                demanded_t[k] = final["demanded"][i]
                lost_t[k] = final["lost"][i]
                deflation_t[k] = final["deflation"][i]
                alloc_integral[k] = final["alloc_integral"][i]
                continue
            rec = records[i]
            cores = float(cores_sel[k])
            u_sum = float(rec.cpu_util.sum())
            demanded_t[k] = u_sum * cores
            if trivial[k]:
                alloc_integral[k] = float(rec.lifetime_intervals)
                continue
            alloc = self._allocation_series(rec, self.outcomes[i])
            lost_t[k] = float(np.maximum(rec.cpu_util - alloc, 0.0).sum()) * cores
            deflation_t[k] = float((1.0 - alloc).sum()) * cores
            alloc_integral[k] = float(alloc.sum())

        # Bill at the admission-time priority snapshot (VMOutcome.priority),
        # exactly as the reference does — post-build surgery on vm_prio
        # affects deflation decisions, not the agreed price.
        prio_sel = np.array(
            [self.outcomes[i].priority for i in sel.tolist()], dtype=np.float64
        )
        return VMMetricTerms(
            sel=sel,
            demanded=demanded_t,
            lost=lost_t,
            deflation=deflation_t,
            alloc_integral=alloc_integral,
            cores=cores_sel,
            lifetimes=lifetime_sel,
            priorities=prio_sel,
        )

    def _collect(self, peak_committed: float) -> ClusterSimResult:
        terms = self._metric_terms()
        agg = reduce_vm_terms(terms)
        demanded_work = agg["demanded_work"]
        lost_work = agg["lost_work"]
        deflation_sum = agg["deflation_sum"]
        deflation_weight = agg["deflation_weight"]
        revenue = agg["revenue"]

        collected = {c.name: c.finalize(self) for c in self._collectors}
        total_capacity = float(self.server_cap[:, 0].sum())
        if self._injector is not None:
            # The injector's aggregate revocation/dip metrics ride along
            # with the collector payloads (plain scalars, cache-friendly).
            collected["failure-injection"] = self._injector.summary()
            # Revoked/dipped servers have mutated server_cap rows; report
            # the nominal provisioned capacity, not what survived.
            total_capacity = self._injector.nominal_total_cores()

        result = ClusterSimResult(
            config=self.config,
            n_vms=len(self.traces),
            n_deflatable=int(self.vm_deflatable.sum()),
            n_placed=int(self.vm_placed.sum()),
            n_rejected_deflatable=int((self.vm_rejected & self.vm_deflatable).sum()),
            n_rejected_on_demand=int((self.vm_rejected & ~self.vm_deflatable).sum()),
            n_preempted=int(self.vm_preempted.sum()),
            n_reclaim_failures=int(
                (self.vm_reclaim_failure & ~self.vm_rejected).sum()
            ),
            peak_committed_cores=peak_committed,
            total_capacity_cores=total_capacity,
            throughput_loss=(lost_work / demanded_work) if demanded_work > 0 else 0.0,
            mean_deflation=(deflation_sum / deflation_weight) if deflation_weight else 0.0,
            revenue=revenue,
            revenue_per_server={
                name: rev / self.config.n_servers for name, rev in revenue.items()
            },
            collected=collected,
        )
        return result


def servers_for_overcommitment(
    traces: VMTraceSet,
    overcommitment: float,
    cores_per_server: float = 48.0,
) -> int:
    """Server count placing the cluster at a target peak overcommitment.

    The paper's methodology: find the minimum cluster that fits the peak
    committed load (overcommitment 0), then shrink it.  Peak committed load
    is computed directly from the trace (all VMs placed).
    """
    if overcommitment < 0:
        raise SimulationError("overcommitment must be >= 0")
    horizon = traces.horizon()
    load = np.zeros(horizon + 1)
    for rec in traces:
        load[rec.start_interval] += rec.cores
        load[rec.end_interval] -= rec.cores
    peak = float(np.cumsum(load).max())
    n = math.ceil(peak / (cores_per_server * (1.0 + overcommitment)))
    return max(1, n)
