"""Versioned, deterministic simulator checkpoints (snapshot/restore/fork).

A :class:`SimSnapshot` freezes a :class:`~repro.simulator.cluster_sim.
ClusterSimulator` at an event boundary — everything the replay needs to
continue bit-identically: the per-VM and per-server arrays, the
committed-cores scalar, the allocation-history log, collector state (via
the ``snapshot()/restore()`` hooks on
:class:`~repro.simulator.components.MetricsCollector`), and the injector's
accruals plus its remaining event heap.  ``save → restore → run`` equals an
uninterrupted run bit-for-bit (``tests/simulator/test_snapshot_roundtrip.py``
pins this across every policy and failure regime).

Restores come in two flavours, decided per injector state:

* **resume** — the target drives the *same* failure stream the snapshot was
  taken under (same spec + topology, or both failure-free): the stored
  event cursor/heap is reinstated verbatim.
* **fork** — the target carries a *different* failure spec (what-if
  branching, :func:`~repro.scenario.sweep.fork_sweep`): only legal when the
  snapshot prefix is *pristine* (saw no failure activity), so the prefix is
  shared by every regime; the VM-event remainder is merged with the
  target's own schedule, and schedules with events before the boundary are
  rejected rather than silently dropped.

Pure derived caches (per-server gathers, the sorted history view, scorer
normalization rows) are deliberately *not* stored: restore resets them and
they rebuild to the same values, which keeps the snapshot small and the
format honest about what is state versus what is cache.

Snapshots pickle (multiprocessing fork *and* spawn), and
:meth:`SimSnapshot.fingerprint` gives a canonical sha256 over the exact
bit patterns — the key :func:`~repro.scenario.cache.scenario_key` mixes in
for checkpoint-carrying scenarios.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import SimulationError
from repro.failures.injector import _END, _START, FailureInjector
from repro.simulator.cluster_sim import VMOutcome, vm_pool_assignment

#: Bump on any layout change; a snapshot from another version is refused,
#: never misread.
SNAPSHOT_VERSION = 1

#: Array fields captured/restored verbatim (attribute name, snapshot key).
_VM_ARRAYS = (
    "vm_caps",
    "vm_prio",
    "vm_deflatable",
    "vm_floor",
    "vm_server",
    "vm_placed",
    "vm_rejected",
    "vm_preempted",
    "vm_reclaim_failure",
    "vm_start",
    "vm_end",
    "vm_lifetime",
)
_SERVER_ARRAYS = ("server_cap", "committed", "reclaimed", "defl_cap", "defl_floor", "server_pool")

#: VMOutcome flags are stored separately from the mirror arrays: they can
#: legitimately diverge (an on-demand evacuation victim is ``preempted`` in
#: its outcome but not in ``vm_preempted``, which only counts deflatable
#: failures), so neither can be rebuilt from the other.
_OUTCOME_FIELDS = ("placed", "rejected", "preempted", "reclaim_failure")


@dataclass(frozen=True)
class SimSnapshot:
    """One simulator's full state at the event boundary ``at``.

    Produced by :meth:`ClusterSimulator.snapshot` (via :func:`capture`),
    consumed by :meth:`ClusterSimulator.restore` (via :func:`restore_into`)
    and :meth:`Scenario.with_checkpoint`.  Treat as opaque and immutable.
    """

    version: int
    #: The ``run_until`` boundary: every event strictly before it has been
    #: processed, none at or after it.
    at: float
    config: object  # ClusterSimConfig (frozen dataclass; compared with ==)
    n_traces: int
    state: dict
    stream: dict
    injector: dict | None
    collectors: tuple
    #: Reserved: no live RNG exists during a replay today (failure models
    #: expand their whole schedule up front), but the slot keeps the format
    #: stable if one ever does.
    rng_state: object = None

    def fingerprint(self) -> str:
        """Canonical sha256 over the snapshot's exact bit patterns."""
        h = hashlib.sha256()
        _hash_into(h, ("repro-sim-snapshot", self.version, self.at, self.n_traces))
        _hash_into(h, asdict(self.config))
        _hash_into(h, self.state)
        _hash_into(h, self.stream)
        _hash_into(h, self.injector)
        _hash_into(h, self.collectors)
        _hash_into(h, self.rng_state)
        return h.hexdigest()


def _hash_into(h, obj) -> None:
    """Feed one payload into a hash with explicit type/length framing.

    Floats hash by their float64 bit pattern and arrays by dtype + shape +
    raw bytes, so two snapshots fingerprint equal iff every stored value is
    bit-identical — the same discipline the equivalence suites assert.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I%d;" % int(obj))
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F")
        h.update(np.float64(obj).tobytes())
    elif isinstance(obj, str):
        h.update(b"S")
        h.update(obj.encode())
        h.update(b"\x00")
    elif isinstance(obj, np.ndarray):
        h.update(b"A")
        h.update(str(obj.dtype).encode())
        h.update(repr(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"L%d;" % len(obj))
        for item in obj:
            _hash_into(h, item)
    elif isinstance(obj, dict):
        h.update(b"D%d;" % len(obj))
        for key in sorted(obj, key=repr):
            _hash_into(h, key)
            _hash_into(h, obj[key])
    else:
        raise SimulationError(
            f"snapshot fingerprint cannot hash a {type(obj).__name__} payload"
        )


# -- capture ---------------------------------------------------------------------------


def capture(sim) -> SimSnapshot:
    """Freeze ``sim`` at its current :meth:`run_until` boundary."""
    stream = sim._stream
    if stream is None:
        raise SimulationError(
            "snapshot requires an open event stream: call run_until(t) first"
        )
    state: dict = {}
    for name in _VM_ARRAYS:
        state[name] = getattr(sim, name).copy()
    for name in _SERVER_ARRAYS:
        state[name] = getattr(sim, name).copy()
    state["last_frac"] = sim._last_frac.copy()
    n = len(sim.traces)
    state["out_priority"] = np.array([o.priority for o in sim.outcomes], dtype=np.float64)
    state["out_cores"] = np.array([o.cores for o in sim.outcomes], dtype=np.float64)
    state["out_deflatable"] = np.array([o.deflatable for o in sim.outcomes], dtype=bool)
    state["out_end_interval"] = np.array(
        [o.end_interval for o in sim.outcomes], dtype=np.float64
    )
    for fld in _OUTCOME_FIELDS:
        state[f"out_{fld}"] = np.array([getattr(o, fld) for o in sim.outcomes], dtype=bool)
    state["residents"] = tuple(tuple(d) for d in sim.residents)
    state["resident_deflatable"] = tuple(tuple(d) for d in sim.resident_deflatable)
    alive = sim._server_alive
    state["server_alive"] = None if alive is None else alive.copy()
    state["draining_servers"] = int(sim._draining_servers)
    state["committed_cores"] = float(sim._committed_cores)
    state["n_initial_servers"] = int(sim._n_initial_servers)
    nh = sim._hist_n
    state["hist_vm"] = sim._hist_vm[:nh].copy()
    state["hist_t"] = sim._hist_t[:nh].copy()
    state["hist_f"] = sim._hist_f[:nh].copy()
    if sim.config.partitioned:
        state["pool_members"] = tuple(m.copy() for m in sim._pool_members)
    else:
        state["pool_members"] = None
    final = sim._final_terms
    state["final_terms"] = (
        None if final is None else {k: v.copy() for k, v in final.items()}
    )

    injector_state = None
    if stream["mode"] == "heap":
        injector_state = sim._injector.state_snapshot()
        stream_state = {"mode": "heap", "peak": float(sim._injector._peak)}
    else:
        stream_state = {
            "mode": "array",
            "cursor": int(stream["cursor"]),
            "peak": float(stream["peak"]),
        }

    collectors = []
    for c in sim._collectors:
        if not c.snapshottable:
            raise SimulationError(
                f"metrics collector {c.name!r} declares snapshottable = False; "
                "run this scenario without checkpoints"
            )
        collectors.append((c.name, c.snapshot()))

    return SimSnapshot(
        version=SNAPSHOT_VERSION,
        at=float(stream["at"]),
        config=sim.config,
        n_traces=n,
        state=state,
        stream=stream_state,
        injector=injector_state,
        collectors=tuple(collectors),
    )


# -- restore ---------------------------------------------------------------------------


def restore_into(sim, snap: SimSnapshot) -> None:
    """Reinstate ``snap`` into a freshly built ``sim`` (same config/trace).

    After this the simulator behaves exactly as if it had processed the
    prefix itself: ``run()`` finishes the replay, ``run_until`` keeps
    stepping, ``snapshot()`` re-freezes.
    """
    if not isinstance(snap, SimSnapshot):
        raise SimulationError(f"not a SimSnapshot: {type(snap).__name__}")
    if snap.version != SNAPSHOT_VERSION:
        raise SimulationError(
            f"snapshot format v{snap.version} is not supported (expected v{SNAPSHOT_VERSION})"
        )
    if sim._stream is not None:
        raise SimulationError("restore requires a fresh simulator (its stream is already open)")
    if sim.config != snap.config:
        raise SimulationError(
            "snapshot/simulator config mismatch: a checkpoint only restores into "
            "the exact configuration it was taken under"
        )
    n = len(sim.traces)
    if n != snap.n_traces:
        raise SimulationError(
            f"snapshot was taken over {snap.n_traces} VMs but this trace set has {n}"
        )

    st = snap.state
    for name in _VM_ARRAYS:
        setattr(sim, name, st[name].copy())
    for name in _SERVER_ARRAYS:
        setattr(sim, name, st[name].copy())
    sim._last_frac = st["last_frac"].copy()
    sim.outcomes = [
        VMOutcome(
            vm_index=i,
            deflatable=bool(st["out_deflatable"][i]),
            priority=float(st["out_priority"][i]),
            cores=float(st["out_cores"][i]),
            placed=bool(st["out_placed"][i]),
            rejected=bool(st["out_rejected"][i]),
            preempted=bool(st["out_preempted"][i]),
            reclaim_failure=bool(st["out_reclaim_failure"][i]),
            end_interval=float(st["out_end_interval"][i]),
        )
        for i in range(n)
    ]
    s = len(st["residents"])
    sim.residents = [dict.fromkeys(r) for r in st["residents"]]
    sim.resident_deflatable = [dict.fromkeys(r) for r in st["resident_deflatable"]]
    alive = st["server_alive"]
    sim._server_alive = None if alive is None else alive.copy()
    sim._draining_servers = int(st["draining_servers"])
    sim._committed_cores = float(st["committed_cores"])
    sim._n_initial_servers = int(st["n_initial_servers"])
    sim._preempt_log = None
    # ``_cap_eps`` is an invariant of ``server_cap`` (+1e-9 everywhere:
    # nominal rows, dip-scaled rows, and revoked rows where 0 + 1e-9
    # matches what ``_mark_revoked`` wrote), so recompute instead of store.
    sim._cap_eps = sim.server_cap + 1e-9
    sim._all_servers = np.arange(s)
    # Pure caches: reset, they rebuild bit-identically on demand.
    sim._srv_cache = [None] * s
    sim._srv_victims = [None] * s
    sim._hist_sorted = None
    nh = st["hist_vm"].size
    cap = max(4 * n, 64, nh)
    sim._hist_vm = np.empty(cap, dtype=np.int64)
    sim._hist_t = np.empty(cap, dtype=np.float64)
    sim._hist_f = np.empty(cap, dtype=np.float64)
    sim._hist_vm[:nh] = st["hist_vm"]
    sim._hist_t[:nh] = st["hist_t"]
    sim._hist_f[:nh] = st["hist_f"]
    sim._hist_n = nh
    final = st["final_terms"]
    sim._final_terms = None if final is None else {k: v.copy() for k, v in final.items()}
    cfg = sim.config
    if cfg.partitioned:
        sim._pool_members = [m.copy() for m in st["pool_members"]]

    # Derived per-VM caches, exactly as ``_refresh_derived`` builds them at
    # the top of a cold ``run()`` — except ``_demand_norm`` divides by the
    # *nominal* server shape rather than live row 0, which a revocation or
    # dip in the prefix may have zeroed or scaled.  A cold run computes it
    # from the pristine row before any failure event fires, so the nominal
    # shape is the bit-identical value.
    sim._vm_cores_list = sim.vm_caps[:, 0].tolist()
    sim._vm_mem_list = sim.vm_caps[:, 1].tolist()
    sim._vm_prio_list = sim.vm_prio.tolist()
    sim._demand_norm = sim.vm_caps / np.array([cfg.cores_per_server, cfg.memory_per_server_mb])
    sim._vm_caps_eps = sim.vm_caps - 1e-9
    if cfg.partitioned:
        sim._vm_pool = vm_pool_assignment(
            sim.vm_prio, sim.vm_deflatable, list(sim._pool_of_level)
        )

    # Collectors: positional restore against the configured set.
    names = tuple(c.name for c in sim._collectors)
    snap_names = tuple(name for name, _ in snap.collectors)
    if names != snap_names:
        raise SimulationError(
            f"snapshot collectors {snap_names!r} do not match configured {names!r}"
        )
    for collector, (_, payload) in zip(sim._collectors, snap.collectors):
        collector.restore(copy.deepcopy(payload))

    _restore_stream(sim, snap)


def _restore_stream(sim, snap: SimSnapshot) -> None:
    """Reinstate the event stream: resume verbatim or fork the remainder."""
    at = snap.at
    mode = snap.stream["mode"]
    if sim._injector is None:
        if mode == "array":
            events = sim._build_events()
            sim._stream = {
                "mode": "array",
                "t": events["t"].tolist(),
                "kind": events["kind"].tolist(),
                "vm": events["vm"].tolist(),
                "cursor": int(snap.stream["cursor"]),
                "peak": float(snap.stream["peak"]),
                "at": at,
            }
            return
        # Heap-mode snapshot forked into a failure-free run ("what if no
        # failures"): only a pristine prefix is shared; the VM remainder
        # replays through the array stepper, whose (t, end-before-start,
        # vm) order matches the heap's (t, _END < _START, vm) order.
        inj_state = snap.injector
        if not FailureInjector.state_is_pristine(inj_state):
            raise SimulationError(
                "cannot fork this snapshot into a failure-free run: its prefix "
                "already saw failure activity (take the checkpoint earlier)"
            )
        entries = [e for e in inj_state["heap"] if e[1] in (_END, _START)]
        entries.sort()
        sim._stream = {
            "mode": "array",
            "t": [e[0] for e in entries],
            "kind": [0 if e[1] == _END else 1 for e in entries],
            "vm": [e[2] for e in entries],
            "cursor": 0,
            "peak": float(inj_state["peak"]),
            "at": at,
        }
        return

    injector = sim._injector
    if mode == "array":
        # Failure-free prefix forked under a failure spec: rebuild the
        # merged heap from the VM remainder plus the target's own schedule.
        events = sim._build_events()
        cursor = int(snap.stream["cursor"])
        vm_entries = [
            (t, _END if k == 0 else _START, v, 0.0)
            for t, k, v in zip(
                events["t"].tolist()[cursor:],
                events["kind"].tolist()[cursor:],
                events["vm"].tolist()[cursor:],
            )
        ]
        injector.start(sim, vm_entries=vm_entries)
        _check_schedule_clear(injector, at)
        injector._peak = float(snap.stream["peak"])
    else:
        inj_state = snap.injector
        same_stream = (
            inj_state["spec"] is not None
            and injector.spec is not None
            and inj_state["spec"] == injector.spec
            and inj_state["topology"] == injector.topology
        )
        if same_stream:
            injector.restore_state(inj_state)
        elif FailureInjector.state_is_pristine(inj_state):
            vm_entries = sorted(e for e in inj_state["heap"] if e[1] in (_END, _START))
            injector.start(sim, vm_entries=vm_entries)
            _check_schedule_clear(injector, at)
            injector._peak = float(inj_state["peak"])
        else:
            raise SimulationError(
                "cannot fork this snapshot into a different failure spec: its "
                "prefix already saw failure activity under the original spec "
                "(fork at an earlier boundary, or resume under the same spec)"
            )
    sim._stream = {"mode": "heap", "at": at}


def _check_schedule_clear(injector, at: float) -> None:
    """Refuse a fork whose target schedule fires before the boundary.

    The warm prefix was simulated without those events; silently dropping
    them would diverge from a cold run of the forked scenario, which is
    exactly the bit-equivalence ``fork_sweep`` promises.
    """
    early = sum(1 for e in injector._heap if e[1] not in (_END, _START) and e[0] < at)
    if early:
        raise SimulationError(
            f"cannot fork at t={at}: the target failure schedule has {early} "
            "event(s) before the checkpoint boundary; fork earlier or align "
            "the schedule after the boundary"
        )
