"""Processor-sharing queueing substrate: network DES + analytic checks."""

from repro.queueing.mm import (
    erlang_c,
    mg1_ps_mean_sojourn,
    mmc_mean_sojourn,
    mmc_ps_mean_sojourn,
)
from repro.queueing.network import Fork, NetworkResult, PSNetwork, Visit
from repro.queueing.ps_server import PSServer

__all__ = [
    "erlang_c",
    "mg1_ps_mean_sojourn",
    "mmc_mean_sojourn",
    "mmc_ps_mean_sojourn",
    "Fork",
    "NetworkResult",
    "PSNetwork",
    "Visit",
    "PSServer",
]
