"""Analytic queueing formulas used to validate the simulator.

The PS network has well-known special cases:

* M/G/1-PS mean sojourn time depends only on the mean service time:
  ``E[T] = E[S] / (1 - rho)`` (insensitivity property);
* M/M/c (FCFS) via Erlang-C gives mean waits the multi-core PS station can
  be sanity-checked against at low-to-moderate load;
* Little's law must hold for any stable run.
"""

from __future__ import annotations

import math

from repro.errors import SimulationError


def mg1_ps_mean_sojourn(arrival_rate: float, mean_service: float) -> float:
    """Mean sojourn of M/G/1-PS (insensitive to the service distribution)."""
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        raise SimulationError(f"unstable queue: rho={rho:.3f} >= 1")
    return mean_service / (1.0 - rho)


def erlang_c(c: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/c).

    ``offered_load`` is ``lambda/mu`` in Erlangs; requires ``offered_load < c``.
    """
    if c < 1:
        raise SimulationError("need >= 1 server")
    if offered_load >= c:
        raise SimulationError("unstable system: offered load >= servers")
    a = offered_load
    # Sum_{k<c} a^k/k! computed stably in log space is unnecessary for the
    # small c used in tests; direct evaluation suffices.
    summation = sum(a**k / math.factorial(k) for k in range(c))
    top = a**c / math.factorial(c) * (c / (c - a))
    return top / (summation + top)


def mmc_mean_sojourn(arrival_rate: float, mean_service: float, c: int) -> float:
    """Mean sojourn time of M/M/c (FCFS)."""
    a = arrival_rate * mean_service
    pw = erlang_c(c, a)
    mean_wait = pw * mean_service / (c - a)
    return mean_wait + mean_service


def mmc_ps_mean_sojourn(arrival_rate: float, mean_service: float, c: int) -> float:
    """Mean sojourn of the *limited* PS discipline our stations implement.

    With per-task rate ``min(1, c/n)`` the system behaves like M/M/c with
    processor sharing among excess tasks; its mean sojourn equals the M/M/c
    FCFS value by work conservation and the memoryless property (both
    disciplines are non-anticipating and work-conserving, and mean sojourn
    under exponential service is discipline-invariant within that class).
    """
    return mmc_mean_sojourn(arrival_rate, mean_service, c)
