"""Event-driven processor-sharing queueing network with fork-join requests.

This is the workhorse behind the paper's application-level experiments:

* a single station models the Wikipedia VM (Figures 16/17);
* replicated stations behind a load balancer model the web cluster
  (Figure 19);
* a 30-station network models the DeathStarBench social-network application
  (Figure 18).

**Station model.**  Each station is an egalitarian processor-sharing server
with (possibly fractional, possibly deflated) capacity ``c`` cores: with
``n`` resident tasks, every task progresses at rate ``min(1, c/n)`` — a task
can use at most one core, and capacity is split evenly under contention.
This is the standard model of a multi-core server running many
request-handler threads, and it is what CPU deflation actually does to a VM:
fewer cores, same threads, each thread slower under load.

The implementation uses the virtual-time trick: all resident tasks progress
at the same rate, so completion order equals the order of
``V(arrival) + demand`` where ``dV/dt = min(1, c/n)``.  Station wake-ups are
scheduled lazily and re-validated when they fire, so arrivals and departures
that change the rate never require rescheduling existing events.

**Request model.**  A request executes a *plan*: a sequence of
:class:`Visit` steps (run ``demand`` CPU-seconds at a station) and
:class:`Fork` steps (run several sub-plans in parallel; the request proceeds
when all branches finish — fork-join, the pattern that gives microservice
applications their latency-amplifying tails).  Requests may carry a
deadline; timed-out requests are *dropped*: their active tasks are removed
from all stations (an abandoned HTTP request stops consuming CPU once the
proxy kills it).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.errors import SimulationError
from repro.simulator.engine import EventQueue


@dataclass(frozen=True)
class Visit:
    """Run ``demand`` CPU-seconds of work at ``station``."""

    station: str
    demand: float


@dataclass(frozen=True)
class Fork:
    """Execute branches in parallel; join before the plan continues."""

    branches: tuple[tuple["Plan", ...], ...]


Step = Union[Visit, Fork]
Plan = tuple


@dataclass
class _Context:
    """One sequential frame of a request's execution (a plan + position)."""

    plan: tuple
    index: int
    parent: "_Context | None"
    pending_children: int = 0


@dataclass
class _Request:
    req_id: int
    arrival: float
    deadline: float | None
    root: _Context
    done: bool = False
    dropped: bool = False
    active_tasks: set = field(default_factory=set)  # (station, task_id)


class _Station:
    """Egalitarian PS station with virtual-time bookkeeping."""

    __slots__ = (
        "name",
        "capacity",
        "vtime",
        "last_update",
        "targets",
        "heap",
        "busy_time",
        "completed_work",
        "wake_seq",
        "wake_time",
    )

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"station {name} needs capacity > 0")
        self.name = name
        self.capacity = float(capacity)
        self.vtime = 0.0
        self.last_update = 0.0
        self.targets: dict[int, float] = {}  # task_id -> target virtual time
        self.heap: list[tuple[float, int]] = []
        self.busy_time = 0.0  # integral of occupied capacity, for utilization
        self.completed_work = 0.0
        # Wake dedup: only the wake carrying the current wake_seq is live, so
        # each station has at most one actionable wake pending at a time.
        self.wake_seq = 0
        self.wake_time: float | None = None

    @property
    def n_active(self) -> int:
        return len(self.targets)

    def rate(self) -> float:
        n = self.n_active
        if n == 0:
            return 0.0
        return min(1.0, self.capacity / n)

    def advance(self, now: float) -> None:
        """Bring virtual time forward to wall-clock ``now``."""
        dt = now - self.last_update
        if dt < -1e-9:
            raise SimulationError("time went backwards in station.advance")
        if dt > 0:
            n = self.n_active
            if n:
                r = self.rate()
                self.vtime += dt * r
                self.busy_time += dt * min(self.capacity, n)
            self.last_update = now

    def add_task(self, now: float, task_id: int, demand: float) -> None:
        self.advance(now)
        target = self.vtime + max(demand, 1e-12)
        self.targets[task_id] = target
        heapq.heappush(self.heap, (target, task_id))

    def remove_task(self, now: float, task_id: int) -> None:
        """Withdraw a task (request timed out); lazily drops heap entries."""
        self.advance(now)
        self.targets.pop(task_id, None)

    def pop_finished(self, now: float) -> list[int]:
        """Complete every resident task whose target vtime has passed."""
        self.advance(now)
        finished = []
        while self.heap and self.heap[0][0] <= self.vtime + 1e-12:
            target, task_id = heapq.heappop(self.heap)
            current = self.targets.get(task_id)
            if current is None or abs(current - target) > 1e-12:
                continue  # stale entry (task removed or re-registered)
            del self.targets[task_id]
            finished.append(task_id)
        return finished

    def next_completion_time(self, now: float) -> float | None:
        """Predicted wall time of the earliest completion, if any."""
        self.advance(now)
        while self.heap:
            target, task_id = self.heap[0]
            current = self.targets.get(task_id)
            if current is None or abs(current - target) > 1e-12:
                heapq.heappop(self.heap)
                continue
            r = self.rate()
            if r <= 0:
                return None
            return now + max(0.0, (target - self.vtime) / r)
        return None


@dataclass
class NetworkResult:
    """Outcome of one simulation run."""

    response_times: np.ndarray  # completed requests only
    arrival_times: np.ndarray  # arrival times of completed requests
    n_arrived: int
    n_completed: int
    n_dropped: int
    duration: float
    station_utilization: dict[str, float]
    #: Integral of occupied capacity (core-seconds) per station; divide by
    #: (capacity * window) for utilization over a window of your choosing —
    #: ``station_utilization`` uses the full drain-out duration, which
    #: understates load for runs with long timeout tails.
    station_busy_time: dict[str, float] = field(default_factory=dict)

    @property
    def served_fraction(self) -> float:
        return self.n_completed / self.n_arrived if self.n_arrived else 1.0

    @property
    def mean_response(self) -> float:
        return float(self.response_times.mean()) if self.response_times.size else float("nan")

    def percentile(self, p: float) -> float:
        if not self.response_times.size:
            return float("nan")
        return float(np.percentile(self.response_times, p))


# Event kinds on the global queue.
_ARRIVAL, _WAKE, _TIMEOUT = 0, 1, 2


class PSNetwork:
    """A processor-sharing network driven by an open arrival stream."""

    def __init__(self, capacities: dict[str, float]) -> None:
        if not capacities:
            raise SimulationError("network needs at least one station")
        self._stations = {name: _Station(name, cap) for name, cap in capacities.items()}
        self._queue = EventQueue()
        self._requests: dict[int, _Request] = {}
        self._task_owner: dict[int, tuple[_Request, _Context]] = {}
        self._next_task_id = 0
        self._completed: list[tuple[float, float]] = []  # (arrival, response)
        self._n_arrived = 0
        self._n_dropped = 0

    # -- public API -------------------------------------------------------------

    def set_capacity(self, station: str, capacity: float, now: float = 0.0) -> None:
        """Change a station's capacity mid-run (deflation/reinflation)."""
        st = self._station(station)
        st.advance(now)
        if capacity <= 0:
            raise SimulationError("capacity must stay > 0")
        st.capacity = float(capacity)
        self._schedule_wake(station, now)

    def offer(self, arrival: float, plan: tuple, deadline: float | None = None) -> None:
        """Register one request: a plan starting at ``arrival``."""
        if not plan:
            raise SimulationError("request plan cannot be empty")
        self._queue.schedule(arrival, (_ARRIVAL, plan, deadline))

    def run(self, until: float | None = None) -> NetworkResult:
        """Process all scheduled work; returns aggregate metrics."""
        while self._queue:
            peek = self._queue.peek_time()
            if until is not None and peek is not None and peek > until:
                break
            now, event = self._queue.pop()
            kind = event[0]
            if kind == _ARRIVAL:
                self._handle_arrival(now, event[1], event[2])
            elif kind == _WAKE:
                self._handle_wake(now, event[1], event[2])
            else:
                self._handle_timeout(now, event[1])
        end = self._queue.now if until is None else max(self._queue.now, until)
        responses = np.array([r for _, r in self._completed])
        arrivals = np.array([a for a, _ in self._completed])
        util = {
            name: (st.busy_time / (st.capacity * end) if end > 0 else 0.0)
            for name, st in self._stations.items()
        }
        return NetworkResult(
            response_times=responses,
            arrival_times=arrivals,
            n_arrived=self._n_arrived,
            n_completed=len(self._completed),
            n_dropped=self._n_dropped,
            duration=end,
            station_utilization=util,
            station_busy_time={n: st.busy_time for n, st in self._stations.items()},
        )

    # -- internals ---------------------------------------------------------------

    def _station(self, name: str) -> _Station:
        try:
            return self._stations[name]
        except KeyError:
            raise SimulationError(f"unknown station {name!r}") from None

    def _handle_arrival(self, now: float, plan: tuple, deadline: float | None) -> None:
        self._n_arrived += 1
        req = _Request(
            req_id=self._n_arrived,
            arrival=now,
            deadline=(now + deadline) if deadline is not None else None,
            root=_Context(plan=tuple(plan), index=0, parent=None),
        )
        self._requests[req.req_id] = req
        if req.deadline is not None:
            self._queue.schedule(req.deadline, (_TIMEOUT, req.req_id))
        self._advance_context(now, req, req.root)

    def _advance_context(self, now: float, req: _Request, ctx: _Context) -> None:
        """Execute steps of a context until it blocks on a visit or fork."""
        while True:
            if req.done or req.dropped:
                return
            if ctx.index >= len(ctx.plan):
                parent = ctx.parent
                if parent is None:
                    self._complete_request(now, req)
                    return
                parent.pending_children -= 1
                if parent.pending_children > 0:
                    return  # sibling branches still running
                ctx = parent
                continue
            step = ctx.plan[ctx.index]
            ctx.index += 1
            if isinstance(step, Visit):
                self._start_task(now, req, ctx, step)
                return
            if isinstance(step, Fork):
                branches = [b for b in step.branches if b]
                if not branches:
                    continue
                ctx.pending_children = len(branches)
                for branch in branches:
                    child = _Context(plan=tuple(branch), index=0, parent=ctx)
                    self._advance_context(now, req, child)
                return
            raise SimulationError(f"unknown plan step {step!r}")

    def _start_task(self, now: float, req: _Request, ctx: _Context, visit: Visit) -> None:
        task_id = self._next_task_id
        self._next_task_id += 1
        self._task_owner[task_id] = (req, ctx)
        req.active_tasks.add((visit.station, task_id))
        station = self._station(visit.station)
        station.add_task(now, task_id, visit.demand)
        self._schedule_wake(visit.station, now)

    def _schedule_wake(self, station_name: str, now: float) -> None:
        """(Re)arm the station's single pending wake if the prediction moved.

        Keeping at most one live wake per station bounds the event count at
        O(arrivals + completions) — naive rescheduling accumulates no-op
        wake chains under overload.
        """
        station = self._station(station_name)
        when = station.next_completion_time(now)
        if when is None:
            station.wake_seq += 1  # cancel any pending wake
            station.wake_time = None
            return
        when = max(when, now)
        if station.wake_time is not None and station.wake_time <= when + 1e-12:
            return  # the pending wake fires early enough; it will re-arm
        station.wake_seq += 1
        station.wake_time = when
        self._queue.schedule(when, (_WAKE, station_name, station.wake_seq))

    def _handle_wake(self, now: float, station_name: str, seq: int) -> None:
        station = self._station(station_name)
        if seq != station.wake_seq:
            return  # superseded by a newer wake
        station.wake_time = None
        for task_id in station.pop_finished(now):
            owner = self._task_owner.pop(task_id, None)
            if owner is None:
                continue
            req, ctx = owner
            req.active_tasks.discard((station_name, task_id))
            station.completed_work += 1
            if not (req.done or req.dropped):
                self._advance_context(now, req, ctx)
        self._schedule_wake(station_name, now)

    def _handle_timeout(self, now: float, req_id: int) -> None:
        req = self._requests.get(req_id)
        if req is None or req.done or req.dropped:
            return
        req.dropped = True
        self._n_dropped += 1
        for station_name, task_id in list(req.active_tasks):
            self._station(station_name).remove_task(now, task_id)
            self._task_owner.pop(task_id, None)
            # Removing a task raises everyone else's rate: re-predict.
            self._schedule_wake(station_name, now)
        req.active_tasks.clear()
        del self._requests[req_id]

    def _complete_request(self, now: float, req: _Request) -> None:
        req.done = True
        self._completed.append((req.arrival, now - req.arrival))
        self._requests.pop(req.req_id, None)
