"""Single multi-core processor-sharing server — a one-station facade.

Models one VM serving an open request stream, with optional per-request
response-time deadlines (dropped requests model HTTP timeouts, as in the
paper's Wikipedia experiment: "We set the request time out period to 15
seconds, and consider that requests that take longer are dropped").
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.queueing.network import NetworkResult, PSNetwork, Visit
from repro.traces.workload_gen import RequestTrace


class PSServer:
    """Convenience wrapper for single-station simulations."""

    STATION = "server"

    def __init__(self, cores: float) -> None:
        if cores <= 0:
            raise SimulationError("server needs > 0 cores")
        self.cores = float(cores)

    def simulate(
        self,
        workload: RequestTrace,
        timeout_s: float | None = None,
        extra_latency: np.ndarray | None = None,
    ) -> NetworkResult:
        """Run the open-loop workload through the PS server.

        ``extra_latency`` (one entry per request) models non-CPU response
        components — DB waits, network transfer of large pages — that add to
        the CPU sojourn but do not consume this server's CPU.  It is
        implemented as a zero-rate visit at an infinite-capacity delay
        station, so deadlines still apply to the *total* response time.
        """
        capacities = {self.STATION: self.cores}
        use_delay = extra_latency is not None
        if use_delay:
            if len(extra_latency) != workload.n_requests:
                raise SimulationError("extra_latency must align with the workload")
            capacities["delay"] = float(workload.n_requests + 1)  # never contended

        net = PSNetwork(capacities)
        for i in range(workload.n_requests):
            plan: tuple = (Visit(self.STATION, float(workload.service_demands[i])),)
            if use_delay:
                plan = (Visit("delay", float(extra_latency[i])),) + plan
            net.offer(float(workload.arrivals[i]), plan, deadline=timeout_s)
        return net.run()

    def utilization(self, workload: RequestTrace) -> float:
        """Offered load as a fraction of capacity (rho)."""
        duration = workload.duration
        if duration <= 0:
            return 0.0
        return workload.offered_load_cpu_seconds / (self.cores * duration)
