"""Core types for the ``repro-lint`` static-analysis subsystem.

The checker mirrors the component-registry idiom the rest of the repo
uses: every rule is a small class registered under kind ``lint``
(``@register("lint", name)``), discovered through
:mod:`repro.registry`, and runnable by name.  This module holds the
pieces every rule shares:

* :class:`Finding` — one diagnostic, with a stable content fingerprint
  (rule + path + source line, line-number independent) so baselines
  survive unrelated edits;
* :class:`ModuleSource` — a lazily-parsed source file with its
  suppression table (``# repro-lint: disable=<rule>`` comments);
* :class:`LintRule` — the rule base class (file scope or repo scope);
* :class:`LintContext` — what a rule may see: the repo root, every
  collected module, and the docs tree.

Rules must be *pure readers*: they parse and report, never import the
code under analysis (importing would execute it and drag in heavyweight
dependencies — the whole point of a static pass is to check code no test
runs).
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path

#: Path fragments (as consecutive directory pairs) that mark the
#: determinism-critical simulation core: all randomness there must flow
#: from an explicitly seeded, passed-in generator, and no wall-clock or
#: unordered-set iteration may influence results (ROADMAP: serial ==
#: parallel == sharded, warm == cold).
SIM_PATH_PARTS: tuple[tuple[str, str], ...] = (
    ("repro", "simulator"),
    ("repro", "failures"),
    ("repro", "scenario"),
)

#: Superset of :data:`SIM_PATH_PARTS` covered by the whole-program
#: ``rng-taint`` dataflow rule: the runtime's fan-out machinery also
#: threads rngs (retry jitter, shard spawning) and is held to the same
#: seeded-and-threaded discipline, traced through calls rather than
#: lexically.
TAINT_PATH_PARTS: tuple[tuple[str, str], ...] = SIM_PATH_PARTS + (
    ("repro", "runtime"),
)

_SUPPRESS = re.compile(r"#\s*repro-lint:\s*disable=([\w\-, ]+)")
_SUPPRESS_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([\w\-, ]+)")


def _contains_pair(parts: tuple[str, ...], pair: tuple[str, str]) -> bool:
    return any(parts[i : i + 2] == pair for i in range(len(parts) - 1))


def in_sim_path(rel: str) -> bool:
    """True for files inside the determinism-critical simulation core."""
    parts = tuple(Path(rel).parts)
    return any(_contains_pair(parts, pair) for pair in SIM_PATH_PARTS)


def in_taint_path(rel: str) -> bool:
    """True for files the whole-program rng-taint rule is responsible for."""
    parts = tuple(Path(rel).parts)
    return any(_contains_pair(parts, pair) for pair in TAINT_PATH_PARTS)


def is_test_path(rel: str) -> bool:
    return "tests" in Path(rel).parts


def is_benchmark_path(rel: str) -> bool:
    return "benchmarks" in Path(rel).parts


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    ``snippet`` is the stripped source line the finding anchors to; the
    fingerprint hashes ``rule + path + snippet`` (never the line number),
    so a baseline entry keeps matching when unrelated edits shift the
    file.
    """

    rule: str
    path: str  # posix, relative to the lint root
    line: int
    message: str
    snippet: str = ""
    #: When False, neither suppression comments nor baselines silence this
    #: finding (used where the violation *is* an illegitimate suppression).
    suppressible: bool = True

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            f"{self.rule}::{self.path}::{self.snippet}".encode()
        ).hexdigest()
        return digest[:16]

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


class ModuleSource:
    """One python source file, parsed lazily and at most once.

    Exposes the raw text, split lines, the AST (``tree`` is ``None`` when
    the file does not parse — the runner reports a ``syntax-error``
    finding instead of every rule tripping over it), and the suppression
    table parsed from ``# repro-lint: disable=...`` comments.
    """

    def __init__(self, path: Path, rel: str, text: str | None = None) -> None:
        self.path = path
        self.rel = rel
        self.text = path.read_text(encoding="utf-8") if text is None else text
        self.lines = self.text.splitlines()
        self._tree: ast.AST | None = None
        self._parsed = False
        self.syntax_error: SyntaxError | None = None
        self._suppressions: dict[int, set[str]] | None = None
        self._file_suppressions: set[str] | None = None

    @property
    def tree(self) -> ast.AST | None:
        if not self._parsed:
            self._parsed = True
            try:
                self._tree = ast.parse(self.text, filename=str(self.path))
            except SyntaxError as exc:  # reported once by the runner
                self.syntax_error = exc
                self._tree = None
        return self._tree

    def _parse_suppressions(self) -> None:
        line_table: dict[int, set[str]] = {}
        file_table: set[str] = set()
        for lineno, line in enumerate(self.lines, 1):
            m = _SUPPRESS_FILE.search(line)
            if m:
                file_table.update(r.strip() for r in m.group(1).split(",") if r.strip())
                continue
            m = _SUPPRESS.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                line_table.setdefault(lineno, set()).update(rules)
        self._suppressions = line_table
        self._file_suppressions = file_table

    def suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled on ``line`` (or file-wide)."""
        if self._suppressions is None:
            self._parse_suppressions()
        assert self._suppressions is not None and self._file_suppressions is not None
        if rule in self._file_suppressions:
            return True
        return rule in self._suppressions.get(line, set())

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule: str,
        node_or_line: ast.AST | int,
        message: str,
        *,
        suppressible: bool = True,
    ) -> Finding:
        """Build a finding anchored at an AST node (or explicit line)."""
        line = (
            node_or_line
            if isinstance(node_or_line, int)
            else getattr(node_or_line, "lineno", 1)
        )
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            message=message,
            snippet=self.snippet(line),
            suppressible=suppressible,
        )


@dataclass
class LintContext:
    """Everything a rule may inspect: the root, the modules, the docs.

    Repo-scope rules additionally get :attr:`project` — the whole-program
    :class:`~repro.analysis.project.ProjectIndex` built lazily on first
    access and shared across rules for the rest of the run.
    """

    root: Path
    modules: list[ModuleSource] = field(default_factory=list)
    _project: object | None = field(default=None, repr=False, compare=False)

    @property
    def project(self):
        """The shared :class:`ProjectIndex` over every collected module."""
        if self._project is None:
            from repro.analysis.project import ProjectIndex

            self._project = ProjectIndex(self.modules)
        return self._project

    def doc_path(self, rel: str) -> Path:
        return self.root / rel

    def read_doc(self, rel: str) -> str | None:
        """A docs file's text, or None when it does not exist."""
        p = self.root / rel
        if not p.exists():
            return None
        return p.read_text(encoding="utf-8")


class LintRule:
    """Base class for lint rules (register subclasses under kind ``lint``).

    ``scope`` picks the entry point the runner calls:

    * ``"file"`` — :meth:`check` runs once per collected module;
    * ``"repo"`` — :meth:`check_repo` runs once per lint invocation, for
      cross-file contracts (docs catalogues, schema round-trips).

    Both yield :class:`Finding`; suppression and baseline filtering
    happen in the runner, so rules stay oblivious to them.
    """

    name: str = "abstract"
    scope: str = "file"
    description: str = ""

    def check(self, module: ModuleSource, ctx: LintContext):
        """Findings for one module (file-scope rules)."""
        return ()

    def check_repo(self, ctx: LintContext):
        """Findings for the whole tree (repo-scope rules)."""
        return ()


class ImportMap(ast.NodeVisitor):
    """Which local names are bound to determinism-relevant modules.

    Rules resolve attribute chains against this map instead of guessing:
    ``import numpy as np`` makes ``np.random.rand`` recognisable, as do
    ``import numpy.random as npr`` / ``from numpy.random import rand`` /
    ``from random import randint`` / ``import time as clock`` — the
    aliasing games a naive grep cannot follow.
    """

    def __init__(self, tree: ast.AST | None) -> None:
        self.random_aliases: set[str] = set()  # names bound to stdlib `random`
        self.random_funcs: dict[str, str] = {}  # local name -> random.<fn>
        self.numpy_aliases: set[str] = set()  # names bound to `numpy`
        self.npr_aliases: set[str] = set()  # names bound to `numpy.random`
        self.npr_funcs: dict[str, str] = {}  # local name -> numpy.random.<fn>
        self.time_aliases: set[str] = set()
        self.time_funcs: dict[str, str] = {}
        self.datetime_mod_aliases: set[str] = set()  # names bound to `datetime`
        self.datetime_cls_aliases: set[str] = set()  # names bound to datetime.datetime/date
        self.registry_funcs: dict[str, str] = {}  # local name -> repro.registry.<fn>
        self.registry_mod_aliases: set[str] = set()  # names bound to repro.registry
        if tree is not None:
            self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.npr_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_mod_aliases.add(bound)
            elif alias.name == "repro.registry" and alias.asname:
                self.registry_mod_aliases.add(alias.asname)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if mod == "random":
                self.random_funcs[bound] = f"random.{alias.name}"
            elif mod == "numpy" and alias.name == "random":
                self.npr_aliases.add(bound)
            elif mod == "numpy.random":
                self.npr_funcs[bound] = f"numpy.random.{alias.name}"
            elif mod == "time":
                self.time_funcs[bound] = f"time.{alias.name}"
            elif mod == "datetime" and alias.name in ("datetime", "date"):
                self.datetime_cls_aliases.add(bound)
            elif mod == "repro.registry":
                self.registry_funcs[bound] = alias.name
            elif mod == "repro" and alias.name == "registry":
                self.registry_mod_aliases.add(bound)

    # -- chain resolution helpers ------------------------------------------------

    def numpy_random_attr(self, node: ast.expr) -> str | None:
        """``numpy.random.<fn>`` attribute name when ``node`` is one."""
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id in self.npr_aliases:
                return node.attr
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self.numpy_aliases
            ):
                return node.attr
        elif isinstance(node, ast.Name) and node.id in self.npr_funcs:
            return self.npr_funcs[node.id].rpartition(".")[2]
        return None

    def stdlib_random_attr(self, node: ast.expr) -> str | None:
        """``random.<fn>`` attribute name when ``node`` is one."""
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id in self.random_aliases:
                return node.attr
        elif isinstance(node, ast.Name) and node.id in self.random_funcs:
            return self.random_funcs[node.id].rpartition(".")[2]
        return None

    def registry_call(self, node: ast.expr) -> str | None:
        """The registry function name when ``node`` calls into it.

        Recognises ``register(...)`` (from ``from repro.registry import
        register``) and ``registry.register(...)`` (module alias).
        """
        if isinstance(node, ast.Name) and node.id in self.registry_funcs:
            return self.registry_funcs[node.id]
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.registry_mod_aliases
        ):
            return node.attr
        return None
