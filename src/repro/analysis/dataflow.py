"""Intraprocedural dataflow: a reusable taint engine + RNG classifiers.

The whole-program rules need one recurring primitive: *which names in
this function carry a value derived from X?*  :func:`taint_function`
answers that with a flow-insensitive fixpoint over the function body —
names (and ``self.attr`` pseudo-names) become tainted when assigned from
a source expression or from an already-tainted expression, iterated until
stable.  Flow-insensitivity is deliberately conservative: a name tainted
on *any* path counts as tainted, which for the lint use cases (is an rng
threaded here? does this worker touch that global?) errs exactly the
right way.

On top of the generic engine sit the RNG-specific classifiers the
``rng-taint`` rule composes: recognising ``np.random.default_rng`` /
``Generator`` constructions and classifying their seeding
(:func:`rng_call_kind`), and recognising rng-typed parameters and
dataclass fields (:func:`rng_params`, :func:`class_rng_fields`).  The
cross-function propagation lives in the call graph
(:meth:`repro.analysis.project.ProjectIndex.reachable_from`); this module
is strictly per-function.
"""

from __future__ import annotations

import ast
from collections.abc import Callable

from repro.analysis.core import ImportMap

#: Upper bound on fixpoint sweeps; taint chains longer than this are
#: pathological (each sweep propagates one assignment hop).
_MAX_PASSES = 10

#: numpy.random constructors that yield generator objects.
RNG_CONSTRUCTORS = frozenset({"default_rng", "Generator"})


def _target_names(target: ast.expr) -> list[str]:
    """Assignable names (and ``self.attr`` pseudo-names) in a target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return [f"self.{target.attr}"]
    return []


def taint_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
    is_source: Callable[[ast.expr], str | None],
    seeds: dict[str, str] | None = None,
) -> dict[str, str]:
    """Tainted name -> label after a flow-insensitive fixpoint.

    ``is_source`` classifies an expression as an original taint source
    (returning its label) or not (None).  ``seeds`` pre-taints names —
    parameters, ``self.attr`` fields — before the sweep.  Labels
    propagate through assignments, tuple unpacking, conditional
    expressions, subscripts, and ``self`` attribute stores; the *first*
    label a name acquires wins (labels describe provenance, and a value
    with two provenances is already suspicious enough to report under
    either).
    """
    env: dict[str, str] = dict(seeds or {})

    def expr_label(expr: ast.expr) -> str | None:
        label = is_source(expr)
        if label is not None:
            return label
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return env.get(f"self.{expr.attr}")
            return expr_label(expr.value)
        if isinstance(expr, ast.Subscript):
            return expr_label(expr.value)
        if isinstance(expr, ast.IfExp):
            return expr_label(expr.body) or expr_label(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                label = expr_label(elt)
                if label is not None:
                    return label
            return None
        if isinstance(expr, ast.Call):
            # A method call on a tainted object stays tainted (rng.spawn(),
            # copy.deepcopy(rng) does not resolve, but rng.x() does).
            if isinstance(expr.func, ast.Attribute):
                return expr_label(expr.func.value)
            return None
        if isinstance(expr, ast.NamedExpr):
            return expr_label(expr.value)
        return None

    body = node.body if isinstance(node, ast.Module) else node.body
    for _ in range(_MAX_PASSES):
        changed = False
        for stmt in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.NamedExpr):
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                targets, value = [stmt.target], stmt.iter
            if value is None:
                continue
            label = expr_label(value)
            if label is None:
                continue
            for target in targets:
                for name in _target_names(target):
                    if name not in env:
                        env[name] = label
                        changed = True
        if not changed:
            break
    return env


# -- RNG-specific classifiers ----------------------------------------------------


def _is_literal(expr: ast.expr) -> bool:
    """Compile-time constants: literals, negated literals, literal tuples."""
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, (ast.USub, ast.UAdd)):
        return _is_literal(expr.operand)
    if isinstance(expr, (ast.Tuple, ast.List)):
        return all(_is_literal(e) for e in expr.elts)
    return False


def rng_call_kind(call: ast.expr, imports: ImportMap) -> str | None:
    """Classify an rng-constructing call's seeding, or None.

    Returns ``"unseeded"`` (``default_rng()`` — a fresh OS-entropy
    stream, never reproducible), ``"const"`` (every argument is a
    compile-time literal — a *fixed* stream that ignores the scenario's
    seed), or ``"data"`` (seeded from runtime data — the sanctioned
    threading idiom, e.g. ``default_rng(spec["seed"])``).
    """
    if not isinstance(call, ast.Call):
        return None
    fn = imports.numpy_random_attr(call.func)
    if fn not in RNG_CONSTRUCTORS:
        return None
    if fn == "default_rng" and not call.args and not call.keywords:
        return "unseeded"
    exprs = list(call.args) + [k.value for k in call.keywords]
    if exprs and all(_is_literal(e) for e in exprs):
        return "const"
    return "data"


def annotation_mentions_generator(ann: ast.expr | None) -> bool:
    """True when a type annotation names ``Generator`` (numpy's rng type)."""
    if ann is None:
        return False
    for node in ast.walk(ann):
        if isinstance(node, ast.Attribute) and node.attr == "Generator":
            return True
        if isinstance(node, ast.Name) and node.id == "Generator":
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "Generator" in node.value:  # string annotations
                return True
    return False


def rng_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Parameters that carry a threaded rng, by name or annotation."""
    params = [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]
    out = []
    for arg in params:
        if arg.arg == "rng" or arg.arg.endswith("_rng"):
            out.append(arg.arg)
        elif annotation_mentions_generator(arg.annotation):
            out.append(arg.arg)
    return out


def class_rng_fields(cls: ast.ClassDef, imports: ImportMap) -> list[str]:
    """Attributes of ``cls`` that hold an rng.

    Covers both idioms: dataclass-style annotated fields
    (``rng: np.random.Generator``) and ``__init__`` assignments whose
    value is rng-tainted (``self._rng = rng`` / ``= default_rng(seed)``).
    """
    fields: list[str] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if annotation_mentions_generator(stmt.annotation):
                fields.append(stmt.target.id)
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "__init__":
            seeds = {p: "param" for p in rng_params(stmt)}
            env = taint_function(
                stmt, lambda e: "origin" if rng_call_kind(e, imports) else None, seeds
            )
            fields.extend(
                name[len("self.") :] for name in env if name.startswith("self.")
            )
    return sorted(set(fields))
