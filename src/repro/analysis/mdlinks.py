"""Markdown link checking (stdlib only; no repro imports).

This module is the engine behind two front doors:

* ``scripts/check_links.py`` — the standalone CLI the CI docs job runs
  (it loads this file by path, so the script works without ``PYTHONPATH``);
* the ``docs-links`` lint rule (:mod:`repro.analysis.rules.docs_links`) —
  the same checks folded into the one ``repro-lint`` entry point.

Checks, per markdown file:

* inline links ``[text](target)`` and reference definitions
  ``[label]: target`` — relative file targets must exist (resolved against
  the linking file);
* reference-style uses ``[text][label]`` / ``[text][]`` — the label must
  be defined in the same file;
* ``#anchor`` fragments — standalone or on a relative ``.md`` target —
  must match an anchor in the target file: a GitHub-style heading slug
  (including the ``-1``, ``-2`` suffixes GitHub appends to duplicate
  headings) or an explicit ``<a id="...">`` / ``<a name="...">`` anchor;
* absolute URLs (http/https/mailto) are *not* fetched: external liveness
  is not this checker's job, and CI must not flake on the network.

Links inside fenced code blocks and inline code spans are ignored.

On top of per-file link resolution, :func:`referenced_docs_errors` verifies
that every ``docs/*.md`` page *mentioned* in the repo's top-level pages
(``README.md``, ``ISSUE.md``, ``ROADMAP.md``) exists — mentions in prose
and inline code count too, which plain link checking cannot see.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_FENCE = re.compile(r"^(```|~~~)")
#: Inline links: [text](target) — target captured up to the matching paren.
_LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference-style uses: [text][label] ([text][] collapses onto the text).
_REF_USE = re.compile(r"\[([^\]\[]+)\]\[([^\]\[]*)\]")
#: Reference definitions: [label]: target (up to 3 leading spaces, per spec).
_REF_DEF = re.compile(r"^ {0,3}\[([^\]\[]+)\]:\s*(\S+)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
#: Explicit HTML anchors authors drop for stable deep links.
_HTML_ANCHOR = re.compile(r"<a\s+(?:id|name)\s*=\s*[\"']([^\"']+)[\"']", re.IGNORECASE)
#: Inline code spans (non-greedy; backtick runs of any length).
_CODE_SPAN = re.compile(r"`+[^`]*`+")
#: docs-page mentions anywhere in the text (prose, inline code, links).
_DOCS_MENTION = re.compile(r"docs/[\w\-./]+\.md")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")

#: Top-level pages whose ``docs/`` mentions must resolve (see
#: :func:`referenced_docs_errors`).
TOP_PAGES = ("README.md", "ISSUE.md", "ROADMAP.md")


def strip_code_blocks(text: str) -> list[str]:
    """The file's lines with fenced code blocks blanked out."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return out


def _strip_code_spans(line: str) -> str:
    """Blank out inline code spans (``arr[i][0]`` must not look like a link)."""
    return _CODE_SPAN.sub(lambda m: " " * len(m.group(0)), line)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading occurrence (no duplicate suffix)."""
    # Drop inline code/links markup, then non-word punctuation.
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.replace("`", "").strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchor_slugs(path: Path) -> set[str]:
    """Every anchor a fragment may target in one file.

    Heading slugs carry GitHub's duplicate-disambiguation suffixes (the
    second ``## Setup`` is ``#setup-1``), and explicit ``<a id>`` /
    ``<a name>`` anchors count too.
    """
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    for line in strip_code_blocks(path.read_text(encoding="utf-8")):
        m = _HEADING.match(line)
        if m:
            slug = github_slug(m.group(2))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        for anchor in _HTML_ANCHOR.finditer(line):
            slugs.add(anchor.group(1))
    return slugs


def _iter_clean_lines(path: Path):
    for i, line in enumerate(strip_code_blocks(path.read_text(encoding="utf-8")), 1):
        yield i, _strip_code_spans(line)


def check_file_errors(path: Path) -> list[tuple[int, str]]:
    """Broken links in one file, as ``(lineno, message)`` pairs."""
    errors: list[tuple[int, str]] = []

    def check_target(lineno: int, target: str) -> None:
        if target.startswith(_EXTERNAL):
            return
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            errors.append((lineno, f"broken link target {target!r}"))
            return
        if fragment and dest.suffix == ".md":
            if github_slug(fragment) not in anchor_slugs(dest):
                errors.append((lineno, f"anchor #{fragment} not found in {dest.name}"))

    # Reference definitions: collect the label table, check each target.
    definitions: dict[str, int] = {}
    for lineno, line in _iter_clean_lines(path):
        m = _REF_DEF.match(line)
        if m and not m.group(1).startswith("^"):  # footnotes are not links
            definitions[m.group(1).strip().lower()] = lineno
            check_target(lineno, m.group(2))

    for lineno, line in _iter_clean_lines(path):
        if _REF_DEF.match(line):
            continue
        for m in _LINK.finditer(line):
            check_target(lineno, m.group(1))
        for m in _REF_USE.finditer(line):
            label = (m.group(2) or m.group(1)).strip().lower()
            if label not in definitions:
                errors.append((lineno, f"undefined link reference [{label}]"))
    return errors


def check_file(path: Path) -> list[str]:
    """Broken links in one file, formatted ``path:lineno: message``."""
    return [f"{path}:{lineno}: {msg}" for lineno, msg in check_file_errors(path)]


def referenced_docs_errors(root: Path) -> list[tuple[Path, int, str]]:
    """``docs/*.md`` mentions in the top-level pages that do not exist.

    Scans the *raw* text of :data:`TOP_PAGES` (mentions inside inline code
    and prose count — those never pass through the link checker), and
    resolves each ``docs/...md`` path against ``root``.  Returns
    ``(page, lineno, message)`` triples.
    """
    errors: list[tuple[Path, int, str]] = []
    for name in TOP_PAGES:
        page = root / name
        if not page.exists():
            continue
        for lineno, line in enumerate(page.read_text(encoding="utf-8").splitlines(), 1):
            for m in _DOCS_MENTION.finditer(line):
                if not (root / m.group(0)).exists():
                    errors.append(
                        (page, lineno, f"referenced docs page {m.group(0)!r} does not exist")
                    )
    return errors


def collect(args: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.suffix == ".md":
            files.append(p)
        else:
            print(f"warning: skipping non-markdown argument {arg}", file=sys.stderr)
    return files


def main(argv: list[str]) -> int:
    files = collect(argv or ["README.md", "docs"])
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f))
    errors.extend(
        f"{page}:{lineno}: {msg}"
        for page, lineno, msg in referenced_docs_errors(Path.cwd())
    )
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} broken links")
    return min(len(errors), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
