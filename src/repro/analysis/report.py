"""Reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.analysis.runner import LintReport


def format_text(report: LintReport, *, verbose: bool = False) -> str:
    """``file:line: rule: message`` lines plus a one-line summary."""
    lines = [f.format() for f in report.findings]
    if verbose and report.baselined:
        lines.append("")
        lines.append(f"baselined (not failing the run): {len(report.baselined)}")
        lines.extend(f"  {f.format()}" for f in report.baselined)
    summary = (
        f"checked {report.files} files with {len(report.rules)} rules: "
        f"{len(report.findings)} findings"
    )
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Stable JSON payload (findings sorted by the runner)."""
    payload = {
        "files": report.files,
        "rules": report.rules,
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "suppressed": report.suppressed,
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2)
