"""The ``repro-lint`` command line (also ``python -m repro.analysis``).

Usage::

    repro-lint [paths ...]            # default: src examples, from the root
    repro-lint --list-rules
    repro-lint --format json src
    repro-lint --select no-module-rng,golden-freeze src
    repro-lint --update-baseline src examples

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE, BaselineError, write_baseline
from repro.analysis.report import format_json, format_text
from repro.analysis.runner import build_rules, detect_root, run_lint
from repro.errors import UnknownComponentError


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro codebase: statically "
            "enforces the determinism, registry, golden-freeze, merge-"
            "discipline and docs contracts."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src", "examples"],
        help="files/directories to lint (default: src examples)",
    )
    p.add_argument(
        "--root",
        default=None,
        help="repo root (default: auto-detected from the first path)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--select",
        default=None,
        metavar="RULE[,RULE...]",
        help="run only these rules (default: the whole pack)",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            f"baseline file of grandfathered findings (default: "
            f"<root>/{DEFAULT_BASELINE} when it exists)"
        ),
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report everything)",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan the per-file phase out over N worker processes via "
            "supervised_map (findings are bit-identical to a serial run); "
            "default: serial"
        ),
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list baselined findings in text output",
    )
    return p


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for rule in build_rules():
            print(f"{rule.name} [{rule.scope}]")
            print(f"    {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    root = Path(args.root).resolve() if args.root else detect_root(paths)
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]

    baseline_path: Path | None
    if args.no_baseline:
        baseline_path = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    else:
        candidate = root / DEFAULT_BASELINE
        baseline_path = candidate if candidate.exists() else None

    try:
        if args.update_baseline:
            # Rebuild the baseline from a baseline-free run, keeping notes
            # attached to entries that survive.
            report = run_lint(paths, root=root, select=select, baseline_path=None)
            target = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
            notes: dict[str, str] = {}
            if target.exists():
                from repro.analysis.baseline import load_baseline

                notes = {
                    fp: entry["note"]
                    for fp, entry in load_baseline(target).items()
                    if "note" in entry
                }
            grandfatherable = [f for f in report.findings if f.suppressible]
            write_baseline(target, grandfatherable, notes)
            hard = [f for f in report.findings if not f.suppressible]
            for f in hard:
                print(f.format(), file=sys.stderr)
            print(
                f"wrote {target} with {len(grandfatherable)} entries"
                + (f" ({len(hard)} non-baselinable findings remain)" if hard else "")
            )
            return 1 if hard else 0
        report = run_lint(
            paths,
            root=root,
            select=select,
            baseline_path=baseline_path,
            jobs=args.jobs,
        )
    except (UnknownComponentError, BaselineError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(format_json(report))
    else:
        print(format_text(report, verbose=args.verbose))
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
