"""Determinism rules: all randomness is seeded and passed, no wall-clock.

Every headline guarantee in this repo — serial == parallel == sharded,
warm cache == cold cache, golden bit-equivalence — reduces to one
discipline: results are a pure function of the scenario.  These rules
statically reject the three ways that discipline historically breaks:

* drawing from *module-level* RNG state (``random.random()``,
  ``np.random.rand()``, ``np.random.seed``) or an *unseeded*
  ``default_rng()`` — anywhere in the linted tree;
* reading the wall clock (``time.time()``, ``datetime.now()``) inside the
  simulation core (``repro/simulator``, ``repro/failures``,
  ``repro/scenario``), where it could leak into results;
* iterating an unordered ``set`` in the simulation core, where iteration
  order (hash-seed dependent for str keys) could order events.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ImportMap,
    LintContext,
    LintRule,
    ModuleSource,
    in_sim_path,
    in_taint_path,
)
from repro.registry import register

#: numpy.random attributes that are deterministic plumbing, not draws:
#: constructing an explicitly seeded generator is the *sanctioned* idiom.
_NP_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` attributes that do not touch module-level state.
#: (``random.Random(seed)`` is a private, seeded stream — acceptable;
#: ``SystemRandom`` is OS entropy and therefore never reproducible.)
_STDLIB_ALLOWED = frozenset({"Random"})

_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


@register("lint", "no-module-rng")
class NoModuleRngRule(LintRule):
    """Module-level RNG draws and unseeded generators are forbidden."""

    name = "no-module-rng"
    scope = "file"
    description = (
        "randomness must flow from an explicitly seeded generator "
        "(np.random.default_rng(seed) passed as rng); module-level draws "
        "like np.random.rand()/random.random()/np.random.seed() and "
        "unseeded default_rng() are nondeterministic across runs"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        tree = module.tree
        if tree is None:
            return
        imports = ImportMap(tree)
        if not (
            imports.numpy_aliases
            or imports.npr_aliases
            or imports.npr_funcs
            or imports.random_aliases
            or imports.random_funcs
        ):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = imports.numpy_random_attr(node.func)
            if fn is not None:
                if fn == "default_rng":
                    # Inside the taint-covered tree the whole-program
                    # rng-taint rule owns this check (and more: const
                    # re-seeds, module-level generators); the lexical
                    # gate only covers the rest of the linted tree.
                    if (
                        not node.args
                        and not node.keywords
                        and not in_taint_path(module.rel)
                    ):
                        yield module.finding(
                            self.name,
                            node,
                            "unseeded np.random.default_rng() — pass an explicit "
                            "seed so the stream is reproducible",
                        )
                elif fn not in _NP_ALLOWED:
                    yield module.finding(
                        self.name,
                        node,
                        f"module-level numpy RNG call np.random.{fn}() — draw from "
                        "a passed, seeded np.random.Generator instead",
                    )
                continue
            fn = imports.stdlib_random_attr(node.func)
            if fn is not None and fn not in _STDLIB_ALLOWED:
                yield module.finding(
                    self.name,
                    node,
                    f"stdlib random.{fn}() uses hidden module-level state — use a "
                    "seeded np.random.Generator (or random.Random(seed)) instead",
                )


@register("lint", "no-wallclock")
class NoWallclockRule(LintRule):
    """No wall-clock reads inside the simulation core."""

    name = "no-wallclock"
    scope = "file"
    description = (
        "repro/simulator, repro/failures and repro/scenario must not read "
        "the wall clock (time.time(), datetime.now(), perf counters): "
        "results must be a pure function of the scenario"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        if not in_sim_path(module.rel):
            return
        tree = module.tree
        if tree is None:
            return
        imports = ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # time.<fn>() through a module alias, or `from time import time`.
            if isinstance(func, ast.Attribute):
                value = func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in imports.time_aliases
                    and func.attr in _TIME_FNS
                ):
                    yield module.finding(
                        self.name,
                        node,
                        f"wall-clock read time.{func.attr}() inside the simulation core",
                    )
                    continue
                # datetime.datetime.now() / datetime.date.today() chains,
                # and datetime.now() on an imported class.
                if func.attr in _DATETIME_FNS:
                    if (
                        isinstance(value, ast.Attribute)
                        and value.attr in ("datetime", "date")
                        and isinstance(value.value, ast.Name)
                        and value.value.id in imports.datetime_mod_aliases
                    ) or (
                        isinstance(value, ast.Name)
                        and value.id in imports.datetime_cls_aliases
                    ):
                        yield module.finding(
                            self.name,
                            node,
                            f"wall-clock read datetime .{func.attr}() inside the "
                            "simulation core",
                        )
                    continue
            elif isinstance(func, ast.Name) and func.id in imports.time_funcs:
                canonical = imports.time_funcs[func.id]
                if canonical.rpartition(".")[2] in _TIME_FNS:
                    yield module.finding(
                        self.name,
                        node,
                        f"wall-clock read {canonical}() inside the simulation core",
                    )


def _is_set_expr(node: ast.expr) -> bool:
    """Set displays, set comprehensions, and bare ``set(...)`` calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register("lint", "no-set-iteration")
class NoSetIterationRule(LintRule):
    """No order-sensitive iteration over unordered sets in the sim core."""

    name = "no-set-iteration"
    scope = "file"
    description = (
        "iterating a set in repro/simulator, repro/failures or "
        "repro/scenario orders events by hash-dependent set order; wrap "
        "in sorted(...) to make the order part of the contract"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        if not in_sim_path(module.rel):
            return
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            iter_expr: ast.expr | None = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield module.finding(
                            self.name,
                            gen.iter,
                            "comprehension iterates an unordered set — wrap in sorted(...)",
                        )
                continue
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "enumerate")
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield module.finding(
                    self.name,
                    node,
                    f"{node.func.id}() over an unordered set fixes an arbitrary "
                    "order — wrap the set in sorted(...)",
                )
                continue
            if iter_expr is not None and _is_set_expr(iter_expr):
                yield module.finding(
                    self.name,
                    iter_expr,
                    "for-loop iterates an unordered set — wrap in sorted(...)",
                )
