"""Pool discipline: process fan-out only through the supervised runtime.

``repro/runtime`` (PR 7) exists so that a crashed, hung, or OOM-killed
worker costs one task instead of the whole sweep.  That guarantee only
holds if *every* fan-out goes through it: one new ``pool.map`` call in a
harness quietly reintroduces the all-or-nothing failure mode the runtime
was built to retire.  This rule bans constructing multiprocessing pools,
contexts, worker processes, or process-pool executors anywhere in the
shipped tree except the supervised runtime package itself (tests and
benchmarks may build ad-hoc processes to exercise machinery).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.core import LintContext, LintRule, ModuleSource, is_benchmark_path, is_test_path
from repro.registry import register

#: The only package allowed to construct process fan-out primitives.
_RUNTIME_PAIR = ("repro", "runtime")

#: multiprocessing attributes that create pools/contexts/workers.
_MP_FANOUT = frozenset({"Pool", "Process", "get_context", "Manager"})

#: concurrent.futures process-pool executor (same failure mode, different API).
_CF_FANOUT = frozenset({"ProcessPoolExecutor"})


def _in_runtime(rel: str) -> bool:
    parts = tuple(Path(rel).parts)
    return any(parts[i : i + 2] == _RUNTIME_PAIR for i in range(len(parts) - 1))


class _FanoutImports(ast.NodeVisitor):
    """Local names bound to multiprocessing / concurrent.futures fan-out."""

    def __init__(self, tree: ast.AST) -> None:
        self.mp_aliases: set[str] = set()  # names bound to multiprocessing[.x]
        self.cf_aliases: set[str] = set()  # names bound to concurrent.futures
        self.direct: dict[str, str] = {}  # local name -> canonical fan-out fn
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            if alias.name == "multiprocessing" or alias.name.startswith("multiprocessing."):
                self.mp_aliases.add(bound)
            elif alias.name == "concurrent.futures":
                self.cf_aliases.add(bound if alias.asname else "concurrent")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if mod == "multiprocessing" or mod.startswith("multiprocessing."):
                if alias.name in _MP_FANOUT:
                    self.direct[bound] = f"multiprocessing.{alias.name}"
            elif mod == "concurrent.futures" and alias.name in _CF_FANOUT:
                self.direct[bound] = f"concurrent.futures.{alias.name}"
            elif mod == "concurrent" and alias.name == "futures":
                self.cf_aliases.add(bound)


@register("lint", "pool-discipline")
class PoolDisciplineRule(LintRule):
    """Multiprocessing fan-out may only be constructed in repro/runtime."""

    name = "pool-discipline"
    scope = "file"
    description = (
        "multiprocessing pools, contexts, worker processes, and "
        "ProcessPoolExecutors may only be constructed inside the "
        "supervised runtime (repro/runtime) — unsupervised fan-out "
        "reintroduces the one-crash-kills-the-sweep failure mode; "
        "fan out through repro.runtime.supervised_map instead"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        if _in_runtime(module.rel) or is_test_path(module.rel) or is_benchmark_path(module.rel):
            return
        tree = module.tree
        if tree is None:
            return
        imports = _FanoutImports(tree)
        if not (imports.mp_aliases or imports.cf_aliases or imports.direct):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._fanout_call(node.func, imports)
            if target is not None:
                yield module.finding(
                    self.name,
                    node,
                    f"{target}() constructs process fan-out outside repro/runtime — "
                    "use repro.runtime.supervised_map (supervision, retries, "
                    "timeouts) instead of a bare pool",
                )

    @staticmethod
    def _fanout_call(func: ast.expr, imports: _FanoutImports) -> str | None:
        # Bare names bound by `from multiprocessing import Pool` etc.
        if isinstance(func, ast.Name):
            return imports.direct.get(func.id)
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        # mp.Pool / mp.get_context / ctx.Pool — the ctx case is any
        # `.Pool(...)` attribute call, which in a module importing
        # multiprocessing is a context's pool constructor.
        if isinstance(value, ast.Name) and value.id in imports.mp_aliases:
            if func.attr in _MP_FANOUT:
                return f"multiprocessing.{func.attr}"
            return None
        if imports.mp_aliases and func.attr == "Pool":
            return "<context>.Pool"
        # concurrent.futures.ProcessPoolExecutor, cf.ProcessPoolExecutor,
        # and `concurrent.futures` accessed through the bare package name.
        if func.attr in _CF_FANOUT:
            if isinstance(value, ast.Name) and value.id in imports.cf_aliases:
                return f"concurrent.futures.{func.attr}"
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "futures"
                and isinstance(value.value, ast.Name)
                and value.value.id in imports.cf_aliases
            ):
                return f"concurrent.futures.{func.attr}"
        return None
