"""``hook-conformance``: registered components must match their protocols.

The engine dispatches collector hooks *by name* (``on_admit``,
``on_preempt``, …, ``finalize``, ``merge_shards``, ``snapshot`` /
``restore``), so a misspelled hook on a ``@register("metrics")`` class is
not an error at runtime — it is simply never called, and the collector
silently reports zeros.  The same shape applies to ``engine`` components
(must provide ``run``) and ``failure`` models (must provide ``events`` /
``events_with_topology``).  This rule resolves every registration to its
class definition through the
:class:`~repro.analysis.project.ProjectIndex` and checks, statically:

* **unknown hooks** — an ``on_*`` method the base protocol does not
  define (never dispatched);
* **misspellings** — a method whose name is a near-miss of a protocol
  method (``merge_shard`` vs ``merge_shards``), reported as such;
* **arity** — an overriding method must accept the positional argument
  count the dispatcher calls the base method with.

When a protocol base class is not in the index (a partial lint over a
subtree), the corresponding checks are skipped rather than guessed.
"""

from __future__ import annotations

import ast
import difflib

from repro.analysis.core import LintContext, LintRule
from repro.analysis.project import ClassInfo, ProjectIndex, Registration
from repro.registry import register

RULE = "hook-conformance"

#: registration kind -> (protocol class name, preferred module prefix,
#: methods every component must provide, inherited or not).
_PROTOCOLS = {
    "metrics": ("MetricsCollector", "repro.simulator", ()),
    "engine": ("Engine", "repro.scenario", ("run",)),
    "failure": ("FailureModel", "repro.failures", ("events",)),
}

_CLOSE_MATCH_CUTOFF = 0.8


def _positional_arity(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[int, int | None]:
    """(min, max) positional-argument counts; max None means ``*args``."""
    positional = len(fn.args.posonlyargs) + len(fn.args.args)
    minimum = positional - len(fn.args.defaults)
    maximum = None if fn.args.vararg is not None else positional
    return minimum, maximum


def _protocol_methods(cls: ClassInfo) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """The base class's public (dispatchable) method table."""
    return {
        name: node
        for name, node in cls.methods().items()
        if not name.startswith("_")
    }


@register("lint", "hook-conformance")
class HookConformanceRule(LintRule):
    """Collector/engine/failure registrations conform to their base protocol."""

    name = RULE
    scope = "repo"
    description = (
        "@register('metrics'/'engine'/'failure') classes must match their "
        "protocol base: no unknown or misspelled hook names (silently "
        "never dispatched), required methods present, overriding methods "
        "accept the dispatcher's positional arity"
    )

    def check_repo(self, ctx: LintContext):
        index: ProjectIndex = ctx.project
        bases: dict[str, ClassInfo | None] = {
            kind: index.class_named(cls_name, prefer=prefix)
            for kind, (cls_name, prefix, _) in _PROTOCOLS.items()
        }
        seen: set[tuple[str, str]] = set()
        for reg in index.registrations:
            if reg.kind not in _PROTOCOLS or reg.target is None:
                continue
            resolved = index.resolve(reg.target)
            if not isinstance(resolved, ClassInfo):
                continue
            key = (reg.kind, resolved.qualname)
            if key in seen:
                continue
            seen.add(key)
            base = bases[reg.kind]
            if base is None or resolved.qualname == base.qualname:
                continue  # partial lint, or the protocol registering itself
            yield from self._check_class(index, reg, resolved, base)

    def _check_class(
        self,
        index: ProjectIndex,
        reg: Registration,
        cls: ClassInfo,
        base: ClassInfo,
    ):
        module = cls.module
        protocol = _protocol_methods(base)
        required = _PROTOCOLS[reg.kind][2]
        visible = index.mro_methods(cls)

        for method in required:
            if method not in visible:
                yield module.finding(
                    RULE,
                    cls.node,
                    f"{cls.qualname.rpartition('.')[2]} is registered as "
                    f"{reg.kind} {reg.name!r} but neither defines nor inherits "
                    f"required method {method}()",
                )

        for name, node in sorted(cls.methods().items()):
            if name.startswith("_"):
                continue
            if name in protocol:
                base_min, base_max = _positional_arity(protocol[name])
                own_min, own_max = _positional_arity(node)
                call_arity = base_max if base_max is not None else base_min
                if own_min > call_arity or (own_max is not None and own_max < call_arity):
                    own = f"{own_min}" if own_min == own_max else f"{own_min}..{own_max or '*'}"
                    yield module.finding(
                        RULE,
                        node,
                        f"{name}() takes {own} positional args but the "
                        f"dispatcher calls the {base.qualname.rpartition('.')[2]} "
                        f"hook with {call_arity} — the override will raise "
                        "TypeError when dispatched",
                    )
                continue
            close = difflib.get_close_matches(
                name, sorted(protocol), n=1, cutoff=_CLOSE_MATCH_CUTOFF
            )
            if close:
                yield module.finding(
                    RULE,
                    node,
                    f"{name}() looks like a misspelling of protocol hook "
                    f"{close[0]}() — it will never be dispatched; rename it",
                )
            elif name.startswith("on_"):
                yield module.finding(
                    RULE,
                    node,
                    f"{name}() is not a hook the "
                    f"{base.qualname.rpartition('.')[2]} protocol dispatches — "
                    "it will never be called",
                )
