"""Registry-discipline rules.

The unified component registry (``repro/registry.py``) only keeps the
system coherent if every registration is greppable and catalogued:

* ``registry-call-discipline`` — every ``@register`` / ``@register_value``
  / ``register_instance`` call site names a *known kind* and an *explicit
  string-literal name* (implicit names and computed kinds defeat both the
  docs catalogue and static lookup checking); literal kinds passed to
  ``create`` / ``resolve`` / ``validate`` / ``names`` / ``is_registered``
  must be known too.
* ``registry-docs`` — every statically registered ``(kind, name)`` pair
  appears in ``docs/registry.md``, the catalogue the README points users
  at.  Name lists may use a lexical range (``` `fig03` … `fig22` ```) to
  keep long families readable.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import ImportMap, LintContext, LintRule, ModuleSource, is_test_path
from repro.registry import register

#: The registry kinds this repo defines (ROADMAP "Established
#: architecture" + the ``lint`` kind this subsystem adds).  Downstream
#: plug-ins introducing a genuinely new kind extend this list in the same
#: PR that documents the kind in docs/registry.md.
KNOWN_KINDS = frozenset(
    {
        "policy",
        "placement",
        "pricing",
        "experiment",
        "admission",
        "scorer",
        "metrics",
        "workload",
        "failure",
        "engine",
        "lint",
    }
)

_REGISTER_FNS = frozenset({"register", "register_value", "register_instance"})
_LOOKUP_FNS = frozenset(
    {"create", "resolve", "validate", "is_registered", "names", "unregister"}
)

#: Backticked names in docs tables, and lexical ranges between two of them.
_BACKTICKED = re.compile(r"`([\w\-.]+)`")
_RANGE = re.compile(r"`([\w\-.]+)`\s*(?:…|\.\.\.)\s*`([\w\-.]+)`")


def _literal_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def iter_register_calls(
    tree: ast.AST, imports: ImportMap
) -> Iterator[tuple[ast.Call, str, ast.expr | None, ast.expr | None]]:
    """Yield ``(call, fn, kind_node, name_node)`` for registry call sites.

    ``fn`` is the canonical registry function name; ``kind_node`` /
    ``name_node`` are the positional-or-keyword argument expressions (or
    None when omitted).  Works on decorators and bare calls alike —
    decorators *are* Call nodes in the AST.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = imports.registry_call(node.func)
        if fn is None or fn not in (_REGISTER_FNS | _LOOKUP_FNS):
            continue
        args = list(node.args)
        kwargs = {k.arg: k.value for k in node.keywords if k.arg}
        kind_node = args[0] if args else kwargs.get("kind")
        name_node = args[1] if len(args) > 1 else kwargs.get("name")
        yield node, fn, kind_node, name_node


@register("lint", "registry-call-discipline")
class RegistryCallDisciplineRule(LintRule):
    """Registrations use known kinds and explicit literal names."""

    name = "registry-call-discipline"
    scope = "file"
    description = (
        "@register/@register_value call sites must pass a known kind and "
        "an explicit string-literal name (greppable, docs-checkable); "
        "literal kinds in create/resolve/validate lookups must be known"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        # Tests exercise the registry machinery itself — unknown kinds for
        # error paths, computed kinds in parametrized loops, throwaway
        # names.  The catalogue contract only covers the shipped tree.
        if is_test_path(module.rel):
            return
        tree = module.tree
        if tree is None:
            return
        imports = ImportMap(tree)
        if not imports.registry_funcs and not imports.registry_mod_aliases:
            return
        for node, fn, kind_node, name_node in iter_register_calls(tree, imports):
            kind = _literal_str(kind_node)
            if kind is None:
                yield module.finding(
                    self.name,
                    node,
                    f"{fn}() kind must be a string literal (computed kinds are "
                    "invisible to the docs catalogue and static checks)",
                )
            elif kind not in KNOWN_KINDS:
                yield module.finding(
                    self.name,
                    node,
                    f"{fn}() uses unknown registry kind {kind!r}; known kinds: "
                    f"{sorted(KNOWN_KINDS)} — new kinds are introduced by "
                    "extending KNOWN_KINDS and docs/registry.md together",
                )
            if fn in _REGISTER_FNS and _literal_str(name_node) is None:
                yield module.finding(
                    self.name,
                    node,
                    f"{fn}() name must be an explicit string literal — "
                    "implicit/computed names cannot be catalogued or grepped",
                )


def documented_names(doc_text: str, registered: set[str]) -> set[str]:
    """Names a docs catalogue covers: backticked tokens + lexical ranges.

    A range ``` `a` … `b` ``` documents every registered name that sorts
    between ``a`` and ``b`` inclusive (how the experiment family
    ``fig03`` … ``fig22`` stays a one-cell row).
    """
    covered = {m.group(1) for m in _BACKTICKED.finditer(doc_text)}
    for m in _RANGE.finditer(doc_text):
        lo, hi = m.group(1), m.group(2)
        covered.update(n for n in registered if lo <= n <= hi)
    return covered


def collect_registrations(ctx: LintContext) -> list[tuple[ModuleSource, ast.Call, str, str]]:
    """Every static ``(kind, name)`` registration in the linted tree."""
    out = []
    for module in ctx.modules:
        if is_test_path(module.rel):
            continue
        tree = module.tree
        if tree is None:
            continue
        imports = ImportMap(tree)
        if not imports.registry_funcs and not imports.registry_mod_aliases:
            continue
        for node, fn, kind_node, name_node in iter_register_calls(tree, imports):
            if fn not in _REGISTER_FNS:
                continue
            kind = _literal_str(kind_node)
            name = _literal_str(name_node)
            if kind is not None and name is not None:
                out.append((module, node, kind, name))
    return out


@register("lint", "registry-docs")
class RegistryDocsRule(LintRule):
    """Every registered component appears in docs/registry.md."""

    name = "registry-docs"
    scope = "repo"
    description = (
        "every @register/@register_value (kind, name) in the linted tree "
        "must be catalogued in docs/registry.md (lexical ranges like "
        "`fig03` … `fig22` count)"
    )

    def check_repo(self, ctx: LintContext):
        registrations = collect_registrations(ctx)
        if not registrations:
            return
        doc_text = ctx.read_doc("docs/registry.md")
        if doc_text is None:
            module, node, _, _ = registrations[0]
            yield module.finding(
                self.name,
                node,
                "docs/registry.md is missing — the component catalogue must "
                "exist for registered components to be discoverable",
            )
            return
        registered = {name for _, _, _, name in registrations}
        covered = documented_names(doc_text, registered)
        for module, node, kind, name in registrations:
            if name not in covered:
                yield module.finding(
                    self.name,
                    node,
                    f"{kind} component {name!r} is not catalogued in "
                    "docs/registry.md — add it to the kind's row",
                )
