"""The stock rule pack; importing this package registers every rule.

Mirrors the registry convention (docs/registry.md "Registration is
import-driven"): a new rule module must be imported here to be
discoverable under kind ``lint``.
"""

from repro.analysis.rules import (  # noqa: F401  (imports trigger registration)
    conformance,
    dead_component,
    determinism,
    docs_links,
    golden,
    merge,
    pool_discipline,
    registry_rules,
    rng_taint,
    scenario_schema,
    worker_purity,
)
