"""Merge-discipline rules for the sharded scale-out engine.

The ``sharded`` engine is bit-identical to the flat run only because of
two contracts (docs/engines.md):

* every concrete ``MetricsCollector`` either implements ``merge_shards``
  (an exact fold of per-shard payloads) or *declares itself unmergeable*
  with ``mergeable = False`` — silence is how a collector ends up
  silently mis-merged or rejected at run time deep inside a sweep;
* every ``FailureModel`` draws all randomness from the ``rng`` argument —
  schedules are generated once from the flat seed and *sliced* per shard,
  so a model touching ``np.random`` module state (or constructing its own
  generator) breaks serial == sharded equivalence in a way no golden
  fixture may cover.

Both are enforced at the registration site: any class decorated
``@register("metrics", ...)`` / ``@register("failure", ...)`` is checked,
so new components cannot dodge the contract by living in a new module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ImportMap, LintContext, LintRule, ModuleSource
from repro.registry import register


def _registered_kinds(node: ast.ClassDef, imports: ImportMap) -> set[str]:
    """Registry kinds a class is registered under via its decorators."""
    kinds: set[str] = set()
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        if imports.registry_call(deco.func) not in ("register", "register_value"):
            continue
        if deco.args and isinstance(deco.args[0], ast.Constant):
            value = deco.args[0].value
            if isinstance(value, str):
                kinds.add(value)
    return kinds


def _iter_registered_classes(
    module: ModuleSource, kind: str
) -> Iterator[tuple[ast.ClassDef, ImportMap]]:
    tree = module.tree
    if tree is None:
        return
    imports = ImportMap(tree)
    if not imports.registry_funcs and not imports.registry_mod_aliases:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and kind in _registered_kinds(node, imports):
            yield node, imports


@register("lint", "collector-merge-discipline")
class CollectorMergeDisciplineRule(LintRule):
    """Registered metrics collectors implement merge_shards or opt out."""

    name = "collector-merge-discipline"
    scope = "file"
    description = (
        "every @register('metrics', ...) collector must implement "
        "merge_shards (exact per-shard fold) or declare `mergeable = "
        "False` so the sharded engine rejects it eagerly and documentedly"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        for node, _ in _iter_registered_classes(module, "metrics"):
            has_merge = any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "merge_shards"
                for stmt in node.body
            )
            declares_unmergeable = False
            for stmt in node.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if (
                    any(isinstance(t, ast.Name) and t.id == "mergeable" for t in targets)
                    and isinstance(value, ast.Constant)
                    and value.value is False
                ):
                    declares_unmergeable = True
            if not has_merge and not declares_unmergeable:
                yield module.finding(
                    self.name,
                    node,
                    f"metrics collector {node.name} neither implements "
                    "merge_shards nor declares `mergeable = False` — the "
                    "sharded engine's merge discipline requires one or the other",
                )


@register("lint", "collector-snapshot-discipline")
class CollectorSnapshotDisciplineRule(LintRule):
    """Registered metrics collectors implement snapshot/restore or opt out."""

    name = "collector-snapshot-discipline"
    scope = "file"
    description = (
        "every @register('metrics', ...) collector must implement both "
        "snapshot() and restore() (exact mid-replay state round-trip for "
        "checkpoint/resume) or declare `snapshottable = False` so capture "
        "rejects it eagerly and documentedly"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        for node, _ in _iter_registered_classes(module, "metrics"):
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            has_pair = "snapshot" in methods and "restore" in methods
            opted_out = False
            for stmt in node.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if (
                    any(isinstance(t, ast.Name) and t.id == "snapshottable" for t in targets)
                    and isinstance(value, ast.Constant)
                    and value.value is False
                ):
                    opted_out = True
            if not has_pair and not opted_out:
                missing = sorted({"snapshot", "restore"} - methods)
                yield module.finding(
                    self.name,
                    node,
                    f"metrics collector {node.name} is missing {'/'.join(missing)} "
                    "and does not declare `snapshottable = False` — "
                    "checkpoint/resume needs the exact state round-trip or an "
                    "explicit opt-out",
                )


class _NumpyRandomUseVisitor(ast.NodeVisitor):
    """Collects numpy.random uses in executable positions (not annotations)."""

    def __init__(self, imports: ImportMap) -> None:
        self.imports = imports
        self.hits: list[tuple[ast.AST, str]] = []

    def _scan_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        # Only the body executes; arg/return annotations are type-speak
        # (rng: np.random.Generator is the *sanctioned* signature).
        for stmt in node.body:
            self.visit(stmt)

    visit_FunctionDef = _scan_function
    visit_AsyncFunctionDef = _scan_function

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        fn = self.imports.numpy_random_attr(node)
        if fn is not None and fn != "Generator":
            self.hits.append((node, fn))
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.imports.npr_funcs:
            self.hits.append((node, self.imports.npr_funcs[node.id].rpartition(".")[2]))


@register("lint", "failure-rng-discipline")
class FailureRngDisciplineRule(LintRule):
    """Registered failure models draw only from the passed rng."""

    name = "failure-rng-discipline"
    scope = "file"
    description = (
        "every @register('failure', ...) model must route all randomness "
        "through the rng passed to events()/events_with_topology(); "
        "touching np.random (seeding, default_rng, module draws) breaks "
        "the sliced-schedule determinism serial == sharded relies on"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        for node, imports in _iter_registered_classes(module, "failure"):
            visitor = _NumpyRandomUseVisitor(imports)
            for stmt in node.body:
                visitor.visit(stmt)
            for hit, fn in visitor.hits:
                yield module.finding(
                    self.name,
                    hit,
                    f"failure model {node.name} touches np.random.{fn} — all "
                    "randomness must come from the passed rng (schedules are "
                    "generated once from the flat seed and sliced per shard)",
                )
