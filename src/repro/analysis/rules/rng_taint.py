"""``rng-taint``: whole-program RNG provenance for the seeded core.

The determinism contract (serial == parallel == sharded == resumed)
requires every generator inside ``repro/{simulator,failures,scenario,
runtime}`` to be *seeded from scenario data and threaded through call
boundaries*.  The lexical ``no-module-rng`` rule catches module-level
draws; what it cannot see is provenance — a seeded rng created in one
module and silently replaced by a fresh constant-seeded stream three
calls away still produces the same wrong answer on every run, which is
the worst kind of bug: deterministic, plausible, and decoupled from the
scenario seed.

This rule uses the :class:`~repro.analysis.project.ProjectIndex` call
graph plus the :mod:`~repro.analysis.dataflow` classifiers to flag, in
the covered tree:

* ``default_rng()`` with no seed anywhere (subsuming the retired
  ``no-module-rng`` gate for these paths) — an OS-entropy stream;
* an rng constructed at *module scope* (``RNG = default_rng(42)``) —
  module-level generator state shared across every caller and fork;
* an rng constructed as a *parameter default* — one stream evaluated at
  def time, shared by all calls;
* a *constant-seeded* construction inside a function that already holds
  a threaded rng (an ``rng``/``*_rng``/``Generator``-annotated parameter
  or an rng field on its class) — a re-seed that disconnects the stream
  from the scenario;
* a constant-seeded construction in a helper with no threaded rng of its
  own but reachable through the call graph from a function that has one
  — the cross-module re-seed no per-file rule can observe.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import ImportMap, LintContext, LintRule, in_taint_path
from repro.analysis.dataflow import class_rng_fields, rng_call_kind, rng_params
from repro.analysis.project import FunctionInfo, ProjectIndex
from repro.registry import register

RULE = "rng-taint"


def _own_nodes(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes of a function body, excluding nested def/class subtrees.

    Nested functions are indexed (and scanned) separately; descending
    into them here would report their findings twice.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


def _short(qualname: str) -> str:
    return qualname.rpartition(".")[2]


@register("lint", "rng-taint")
class RngTaintRule(LintRule):
    """Unseeded, module-level, defaulted, or re-seeded rngs in the core."""

    name = RULE
    scope = "repo"
    description = (
        "whole-program rng provenance for repro/{simulator,failures,"
        "scenario,runtime}: generators must be seeded from scenario data "
        "and threaded through calls — no unseeded default_rng(), no "
        "module-level or default-argument generator state, no constant "
        "re-seeds in or below rng-threaded functions"
    )

    def check_repo(self, ctx: LintContext):
        index: ProjectIndex = ctx.project
        covered = {
            name: mod
            for name, mod in index.modules.items()
            if in_taint_path(mod.rel)
        }
        if not covered:
            return
        import_maps = {name: ImportMap(mod.tree) for name, mod in covered.items()}

        # Which functions hold a threaded rng: a recognised rng parameter,
        # or a method on a class with rng-carrying fields.
        rng_fields: dict[str, list[str]] = {}
        threaded: set[str] = set()
        for qual, info in index.functions.items():
            mod_name = index.module_names.get(info.module.rel)
            if mod_name not in covered:
                continue
            if rng_params(info.node):
                threaded.add(qual)
                continue
            if info.class_qualname is not None:
                cls = index.classes.get(info.class_qualname)
                if cls is not None and info.class_qualname not in rng_fields:
                    rng_fields[info.class_qualname] = class_rng_fields(
                        cls.node, import_maps[mod_name]
                    )
                if rng_fields.get(info.class_qualname):
                    threaded.add(qual)

        # BFS from every threaded function, keeping one parent per node so
        # cross-module findings can name the chain that reaches them.
        parent: dict[str, str | None] = {q: None for q in sorted(threaded)}
        queue = sorted(threaded)
        while queue:
            current = queue.pop(0)
            for callee in sorted(index.callees(current)):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)

        def chain(qual: str) -> str:
            hops = [qual]
            while parent.get(hops[-1]) is not None:
                hops.append(parent[hops[-1]])
            return " <- ".join(_short(h) for h in hops)

        for mod_name in sorted(covered):
            module = covered[mod_name]
            imports = import_maps[mod_name]

            # Unseeded constructions, anywhere in the module.
            for node in ast.walk(module.tree):
                if rng_call_kind(node, imports) == "unseeded":
                    yield module.finding(
                        RULE,
                        node,
                        "unseeded np.random.default_rng() — an OS-entropy stream "
                        "can never reproduce; seed from scenario data and thread "
                        "the generator through calls",
                    )

            # Module-scope generator state (seeded or not, it is shared
            # across every caller and duplicated by fork).
            for gname, stmt in sorted(index.module_globals.get(mod_name, {}).items()):
                value = getattr(stmt, "value", None)
                if value is not None and rng_call_kind(value, imports) is not None:
                    yield module.finding(
                        RULE,
                        stmt,
                        f"module-level generator {gname!r} — rng state at module "
                        "scope is shared by every caller and forked into workers; "
                        "construct it inside the seeded entry point instead",
                    )

            for qual in sorted(q for q, i in index.functions.items()
                               if index.module_names.get(i.module.rel) == mod_name):
                info: FunctionInfo = index.functions[qual]
                fn = info.node

                # Generator constructed as a parameter default: evaluated
                # once at def time, silently shared by all calls.
                defaults = list(fn.args.defaults) + [
                    d for d in fn.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if rng_call_kind(default, imports) is not None:
                        yield module.finding(
                            RULE,
                            default,
                            f"{_short(qual)}() constructs an rng as a parameter "
                            "default — one stream is created at def time and "
                            "shared across all calls; require the caller to pass "
                            "a seeded generator",
                        )

                # Constant re-seeds: in a threaded function directly, or in
                # a helper reachable from one through the call graph.
                for node in _own_nodes(fn):
                    if rng_call_kind(node, imports) != "const":
                        continue
                    if qual in threaded:
                        yield module.finding(
                            RULE,
                            node,
                            f"{_short(qual)}() holds a threaded rng but "
                            "constructs a constant-seeded generator — the new "
                            "stream ignores the scenario seed; derive from the "
                            "threaded rng (rng.spawn()) instead",
                        )
                    elif qual in parent:
                        yield module.finding(
                            RULE,
                            node,
                            f"constant-seeded generator in {_short(qual)}(), "
                            f"reachable from rng-threaded code ({chain(qual)}) — "
                            "the fixed stream disconnects results from the "
                            "scenario seed; accept and use the caller's rng",
                        )
