"""Golden-freeze rule: the pinned reference simulator stays a yardstick.

``repro/simulator/reference.py`` is the verbatim pre-optimization
snapshot the golden bit-equivalence suite measures against (ROADMAP:
"don't optimize the reference").  Two statically checkable ways that
discipline erodes:

* production code starts *importing* the reference (coupling the live
  pipeline to the yardstick, so "optimizing" it becomes tempting) — only
  ``tests/`` and ``benchmarks/`` may import it;
* the reference file itself sprouts lint suppressions or loses its
  do-not-optimize sentinel — the usual first signs of somebody editing
  the snapshot instead of the live simulator.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    LintContext,
    LintRule,
    ModuleSource,
    is_benchmark_path,
    is_test_path,
)
from repro.registry import register

_REFERENCE_MODULE = "repro.simulator.reference"
#: The reference docstring's commitment line; losing it in an edit is the
#: tripwire for "someone rewrote the yardstick".
_SENTINEL = "Do not optimize this module"


@register("lint", "golden-freeze")
class GoldenFreezeRule(LintRule):
    """Non-test code must not import (or water down) the golden reference."""

    name = "golden-freeze"
    scope = "file"
    description = (
        "repro/simulator/reference.py is the frozen golden yardstick: only "
        "tests/ and benchmarks/ may import it, and the file itself must "
        "keep its do-not-optimize sentinel and stay free of lint "
        "suppressions"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        rel_posix = module.rel.replace("\\", "/")
        if rel_posix.endswith("repro/simulator/reference.py"):
            yield from self._check_reference_file(module)
            return
        if is_test_path(module.rel) or is_benchmark_path(module.rel):
            return
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _REFERENCE_MODULE or alias.name.startswith(
                        _REFERENCE_MODULE + "."
                    ):
                        yield module.finding(
                            self.name,
                            node,
                            "non-test code imports the frozen golden reference "
                            f"({_REFERENCE_MODULE}); only tests/ and benchmarks/ may",
                        )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == _REFERENCE_MODULE or mod.startswith(_REFERENCE_MODULE + "."):
                    yield module.finding(
                        self.name,
                        node,
                        "non-test code imports from the frozen golden reference "
                        f"({_REFERENCE_MODULE}); only tests/ and benchmarks/ may",
                    )
                elif mod == "repro.simulator" and any(
                    alias.name == "reference" for alias in node.names
                ):
                    yield module.finding(
                        self.name,
                        node,
                        "non-test code imports the frozen golden reference "
                        "(repro.simulator.reference); only tests/ and benchmarks/ may",
                    )

    def _check_reference_file(self, module: ModuleSource):
        # suppressible=False: a suppression comment inside the yardstick is
        # exactly the violation, so it must not be able to silence itself.
        for lineno, line in enumerate(module.lines, 1):
            if "repro-lint:" in line:
                yield module.finding(
                    self.name,
                    lineno,
                    "the golden reference must not carry lint suppressions — "
                    "fix the live simulator instead of silencing the yardstick",
                    suppressible=False,
                )
        if _SENTINEL not in module.text:
            yield module.finding(
                self.name,
                1,
                f"the golden reference lost its {_SENTINEL!r} sentinel — "
                "restore the frozen header (and revert any 'optimization')",
                suppressible=False,
            )
