"""Golden-freeze rule: the pinned references stay yardsticks.

The repo keeps verbatim pre-optimization snapshots that the equivalence
suites measure against (ROADMAP: "don't optimize the reference"):

* ``repro/simulator/reference.py`` — the pre-optimization cluster
  simulator behind the golden bit-equivalence suite;
* ``repro/core/waterfill_reference.py`` — the pre-closed-form water-fill
  bisection behind ``tests/core/test_waterfill_equivalence.py``
  (docs/performance.md, "Deliberate numerical changes").

Two statically checkable ways that discipline erodes, per frozen module:

* production code starts *importing* the reference (coupling the live
  pipeline to the yardstick, so "optimizing" it becomes tempting) — only
  ``tests/`` and ``benchmarks/`` may import it;
* the reference file itself sprouts lint suppressions or loses its
  do-not-optimize sentinel — the usual first signs of somebody editing
  the snapshot instead of the live code.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    LintContext,
    LintRule,
    ModuleSource,
    is_benchmark_path,
    is_test_path,
)
from repro.registry import register

#: Frozen module -> (path suffix identifying the file, parent package that
#: re-exports it as an attribute).  Extending the freeze to a new snapshot
#: is one entry here plus fixture cases in tests/analysis/.
_FROZEN_MODULES: dict[str, tuple[str, str]] = {
    "repro.simulator.reference": ("repro/simulator/reference.py", "repro.simulator"),
    "repro.core.waterfill_reference": (
        "repro/core/waterfill_reference.py",
        "repro.core",
    ),
}
#: The references' docstring commitment line; losing it in an edit is the
#: tripwire for "someone rewrote the yardstick".
_SENTINEL = "Do not optimize this module"


@register("lint", "golden-freeze")
class GoldenFreezeRule(LintRule):
    """Non-test code must not import (or water down) a golden reference."""

    name = "golden-freeze"
    scope = "file"
    description = (
        "repro/simulator/reference.py and repro/core/waterfill_reference.py "
        "are frozen golden yardsticks: only tests/ and benchmarks/ may "
        "import them, and the files themselves must keep their "
        "do-not-optimize sentinel and stay free of lint suppressions"
    )

    def check(self, module: ModuleSource, ctx: LintContext):
        rel_posix = module.rel.replace("\\", "/")
        for suffix, _ in _FROZEN_MODULES.values():
            if rel_posix.endswith(suffix):
                yield from self._check_reference_file(module)
                return
        if is_test_path(module.rel) or is_benchmark_path(module.rel):
            return
        tree = module.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    for frozen in _FROZEN_MODULES:
                        if alias.name == frozen or alias.name.startswith(frozen + "."):
                            yield module.finding(
                                self.name,
                                node,
                                "non-test code imports the frozen golden reference "
                                f"({frozen}); only tests/ and benchmarks/ may",
                            )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                for frozen, (_, parent) in _FROZEN_MODULES.items():
                    if mod == frozen or mod.startswith(frozen + "."):
                        yield module.finding(
                            self.name,
                            node,
                            "non-test code imports from the frozen golden reference "
                            f"({frozen}); only tests/ and benchmarks/ may",
                        )
                    elif mod == parent and any(
                        parent + "." + alias.name == frozen for alias in node.names
                    ):
                        yield module.finding(
                            self.name,
                            node,
                            "non-test code imports the frozen golden reference "
                            f"({frozen}); only tests/ and benchmarks/ may",
                        )

    def _check_reference_file(self, module: ModuleSource):
        # suppressible=False: a suppression comment inside the yardstick is
        # exactly the violation, so it must not be able to silence itself.
        for lineno, line in enumerate(module.lines, 1):
            if "repro-lint:" in line:
                yield module.finding(
                    self.name,
                    lineno,
                    "the golden reference must not carry lint suppressions — "
                    "fix the live code instead of silencing the yardstick",
                    suppressible=False,
                )
        if _SENTINEL not in module.text:
            yield module.finding(
                self.name,
                1,
                f"the golden reference lost its {_SENTINEL!r} sentinel — "
                "restore the frozen header (and revert any 'optimization')",
                suppressible=False,
            )
