"""``worker-purity``: static race detection for the process fan-out.

Everything that crosses a process boundary in this repo goes through
``supervised_map`` (the ``pool-discipline`` rule enforces that).  The
contract its callers rely on — serial == parallel, fork == spawn — holds
only when the worker function is *pure with respect to process-global
state*: under ``fork`` a worker inherits (and can observe or mutate a
copy of) the parent's module globals, while under ``spawn`` it starts
from a fresh import, so any worker that writes module-level state, a
closure cell, or a mutable default argument computes different answers
depending on the start method and on which worker ran first.  The CI
chaos job can only catch that probabilistically; this rule catches it
statically.

For every ``supervised_map(...)`` call site the rule resolves the
callables in its worker slots (the ``fn`` positional/keyword and the
``initializer`` keyword), walks the
:class:`~repro.analysis.project.ProjectIndex` call graph to every
function reachable from the worker body, and flags:

* workers that are lambdas or functions nested inside another function
  (closures do not survive ``spawn`` pickling, and their cells are
  fork-shared state);
* ``global``/``nonlocal`` declarations paired with a write;
* mutation of a name bound (directly or through an import) to a
  *mutable* module-level global — subscript stores, augmented
  assignments, and mutator-method calls (``append``, ``update``, …);
* mutable default arguments (``def f(acc=[])``) that the body writes to.

Findings name the worker chain so a flagged helper three calls below the
fan-out is traceable back to its ``supervised_map`` site.
"""

from __future__ import annotations

import ast

from repro.analysis.core import LintContext, LintRule
from repro.analysis.project import FunctionInfo, ProjectIndex, _dotted
from repro.registry import register

RULE = "worker-purity"

#: The sanctioned fan-out entry point; worker slots are resolved at its
#: call sites.  (``run_sweep`` fans out through it with a fixed internal
#: worker, so its purity is covered transitively.)
_FANOUT = "repro.runtime.supervisor.supervised_map"

#: Keyword slots at a fan-out call site that run *in the worker process*.
#: (``on_complete`` runs in the parent and may mutate freely.)
_WORKER_KWARGS = ("fn", "initializer")

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "insert",
        "appendleft",
        "extendleft",
    }
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)


def _is_mutable_expr(expr: ast.expr | None) -> bool:
    """Displays/constructors whose result is a shared mutable object."""
    if isinstance(expr, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        fn = expr.func
        name = fn.id if isinstance(fn, ast.Name) else fn.attr if isinstance(fn, ast.Attribute) else None
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the function binds locally (params + assignments + loops).

    A write to a locally-bound name shadows any same-named global, so it
    is not a purity violation.  ``global`` declarations re-expose the
    module binding and are handled separately by the caller.
    """
    names = {
        a.arg
        for a in [
            *fn.args.posonlyargs,
            *fn.args.args,
            *fn.args.kwonlyargs,
            *([fn.args.vararg] if fn.args.vararg else []),
            *([fn.args.kwarg] if fn.args.kwarg else []),
        ]
    }
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)) and node is not fn:
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names - declared_global


@register("lint", "worker-purity")
class WorkerPurityRule(LintRule):
    """Workers handed to ``supervised_map`` must not mutate shared state."""

    name = RULE
    scope = "repo"
    description = (
        "callables passed to supervised_map worker slots (and everything "
        "they reach through the call graph) must not write module globals, "
        "closure cells, or mutable default args — such writes diverge "
        "between fork and spawn and between worker schedules"
    )

    def check_repo(self, ctx: LintContext):
        index: ProjectIndex = ctx.project

        # -- 1. collect worker roots from every fan-out call site ---------------
        roots: list[tuple[str, FunctionInfo]] = []  # (site description, worker)
        seen_roots: set[str] = set()
        for mod_name in sorted(index.modules):
            module = index.modules[mod_name]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                if dotted is None or dotted.rpartition(".")[2] != "supervised_map":
                    continue
                fq = index.resolve_in_module(mod_name, dotted)
                if fq != _FANOUT:
                    continue
                slots: list[ast.expr] = []
                if node.args:
                    slots.append(node.args[0])
                for kw in node.keywords:
                    if kw.arg in _WORKER_KWARGS:
                        slots.append(kw.value)
                site = f"{module.rel}:{node.lineno}"
                for slot in slots:
                    if isinstance(slot, ast.Lambda):
                        yield module.finding(
                            RULE,
                            slot,
                            "lambda passed as a supervised_map worker — workers "
                            "must be module-level functions (picklable under "
                            "spawn, no closure cells)",
                        )
                        continue
                    sdotted = _dotted(slot)
                    if sdotted is None:
                        continue
                    sfq = index.resolve_in_module(mod_name, sdotted)
                    resolved = index.resolve(sfq) if sfq else None
                    if not isinstance(resolved, FunctionInfo):
                        # A bare name that did not resolve at module scope
                        # may be a def nested in the enclosing function
                        # (its qualname carries the function's scope).
                        if "." not in sdotted and any(
                            q.startswith(f"{mod_name}.")
                            and q.endswith(f".{sdotted}")
                            and q.rpartition(".")[0] in index.functions
                            for q in index.functions
                        ):
                            yield module.finding(
                                RULE,
                                slot,
                                f"supervised_map worker {sdotted} is defined "
                                "inside another function — closures carry "
                                "enclosing-scope cells that fork shares and "
                                "spawn cannot pickle; move the worker to "
                                "module level",
                            )
                        continue
                    enclosing = resolved.qualname.rpartition(".")[0]
                    if enclosing in index.functions:
                        yield module.finding(
                            RULE,
                            slot,
                            f"supervised_map worker {sdotted} is defined inside "
                            "another function — closures carry enclosing-scope "
                            "cells that fork shares and spawn cannot pickle; "
                            "move the worker to module level",
                        )
                        continue
                    if resolved.qualname not in seen_roots:
                        seen_roots.add(resolved.qualname)
                        roots.append((site, resolved))

        # -- 2. walk the call graph from each root and check purity -------------
        checked: set[str] = set()
        for site, root in sorted(roots, key=lambda r: r[1].qualname):
            for qual in index.reachable_from([root.qualname]):
                if qual in checked or qual not in index.functions:
                    continue
                checked.add(qual)
                info = index.functions[qual]
                label = (
                    f"worker {root.qualname.rpartition('.')[2]}() at {site}"
                    if qual == root.qualname
                    else f"reached from worker "
                    f"{root.qualname.rpartition('.')[2]}() at {site}"
                )
                yield from self._check_function(index, info, label)

    # -- per-function purity checks ----------------------------------------------

    def _check_function(self, index: ProjectIndex, info: FunctionInfo, label: str):
        fn = info.node
        module = info.module
        mod_name = index.module_names.get(module.rel)

        # Names resolving to a *mutable* module-level global, here or in
        # an imported module (whole-program: `from state import CACHE`).
        mutable_globals: dict[str, str] = {}
        own_globals = index.module_globals.get(mod_name, {}) if mod_name else {}
        for gname, stmt in own_globals.items():
            if _is_mutable_expr(getattr(stmt, "value", None)):
                mutable_globals[gname] = f"{mod_name}.{gname}"
        for local, target in index.bindings.get(mod_name, {}).items() if mod_name else ():
            owner = index._binding_module(target)
            if owner is None or target == owner:
                continue
            gname = target[len(owner) + 1 :]
            stmt = index.module_globals.get(owner, {}).get(gname)
            if stmt is not None and _is_mutable_expr(getattr(stmt, "value", None)):
                mutable_globals[local] = target

        locals_ = _local_names(fn)

        declared: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared.update(node.names)
            elif isinstance(node, ast.Nonlocal):
                declared.update(node.names)

        for node in ast.walk(fn):
            # Rebinding a declared global/nonlocal name.
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in declared:
                    yield module.finding(
                        RULE,
                        node,
                        f"writes global {node.id!r} ({label}) — worker-visible "
                        "module state diverges between fork and spawn",
                    )
                continue

            # Subscript store / augmented assignment on a mutable global.
            target: ast.expr | None = None
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Subscript):
                        target = t.value
            elif isinstance(node, ast.AugAssign):
                target = (
                    node.target.value
                    if isinstance(node.target, ast.Subscript)
                    else node.target
                )
            elif isinstance(node, (ast.Delete,)):
                for t in node.targets:
                    if isinstance(t, ast.Subscript):
                        target = t.value
            if (
                isinstance(target, ast.Name)
                and target.id in mutable_globals
                and target.id not in locals_
            ):
                yield module.finding(
                    RULE,
                    node,
                    f"mutates module global {mutable_globals[target.id]} "
                    f"({label}) — shared mutable state is fork/spawn- and "
                    "schedule-dependent",
                )
                continue

            # Mutator-method calls on a mutable global.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutable_globals
                and node.func.value.id not in locals_
            ):
                yield module.finding(
                    RULE,
                    node,
                    f".{node.func.attr}() on module global "
                    f"{mutable_globals[node.func.value.id]} ({label}) — shared "
                    "mutable state is fork/spawn- and schedule-dependent",
                )

        # Mutable default arguments the body writes to.
        params = [*fn.args.posonlyargs, *fn.args.args]
        for param, default in zip(params[len(params) - len(fn.args.defaults) :], fn.args.defaults):
            self_defaults = _is_mutable_expr(default)
            if not self_defaults:
                continue
            for node in ast.walk(fn):
                written = (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == param.arg
                ) or (
                    isinstance(node, (ast.Assign, ast.AugAssign))
                    and any(
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == param.arg
                        for t in (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                    )
                )
                if written:
                    yield module.finding(
                        RULE,
                        node,
                        f"writes to mutable default argument {param.arg!r} "
                        f"({label}) — the default is one shared object across "
                        "calls, accumulating state per process",
                    )
                    break
