"""``dead-component``: every registration must have a living reference.

Components are wired by *name strings* — scenario fields
(``engine="cluster-sim"``, ``failure_model="lunar"``), experiment specs,
CLI arguments, tests, and docs tables all select registry entries by
their registered name.  That indirection means deleting the last
reference to a component is silent: the class still registers, the docs
row (``registry-docs`` *requires* the row) still lists it, and nothing
ever constructs it again.  This rule closes the loop: a registration
whose name appears in no string literal anywhere in the indexed modules,
no quoted token in the repo's ``tests``/``benchmarks``/``scripts``
trees, and no backticked token in the docs (EXCLUDING
``docs/registry.md`` — the mandatory catalogue must not be able to vouch
for its own entries' liveness) is reported as dead.

The reference scan is deliberately generous — any exact string match
counts, including comma-separated scenario lists — so a finding here
means *zero* occurrences outside the registration and its catalogue row.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import LintContext, LintRule
from repro.analysis.project import ProjectIndex
from repro.registry import register

RULE = "dead-component"

#: Quoted tokens in un-indexed text (tests, benchmarks, scripts).
_QUOTED = re.compile(r"[\"']([\w][\w\-./]*)[\"']")
#: Backticked tokens in markdown docs.
_BACKTICKED = re.compile(r"`([^`\n]+)`")

#: Directories (relative to the lint root) scanned textually for name
#: references even when their files are not part of the linted paths.
_EXTRA_DIRS = ("tests", "benchmarks", "scripts", "examples")

#: The one docs file that may NOT vouch for liveness: registry-docs
#: forces a row there for every registration, so counting it would make
#: every component trivially "referenced".
_CATALOGUE = "docs/registry.md"


def _split_tokens(value: str) -> set[str]:
    """A literal plus its comma/whitespace-separated parts."""
    tokens = {value.strip()}
    tokens.update(t for t in re.split(r"[,\s]+", value) if t)
    return tokens


@register("lint", "dead-component")
class DeadComponentRule(LintRule):
    """Registrations with no reference outside their own catalogue row."""

    name = RULE
    scope = "repo"
    description = (
        "every registered component name must be referenced by at least "
        "one string literal, test/benchmark/script token, or docs mention "
        "outside docs/registry.md — an unreferenced registration is dead "
        "code the registry hides"
    )

    def check_repo(self, ctx: LintContext):
        index: ProjectIndex = ctx.project

        # String-constant AST nodes that *are* registration name args: a
        # registration never vouches for itself (nor for a same-named
        # registration of another kind).
        own_name_nodes: set[int] = set()
        for reg in index.registrations:
            args = list(reg.node.args)
            kwargs = {k.arg: k.value for k in reg.node.keywords if k.arg}
            for expr in (*args[:2], kwargs.get("kind"), kwargs.get("name")):
                if expr is not None:
                    own_name_nodes.add(id(expr))

        referenced: set[str] = set()
        indexed_rels = {mod.rel for mod in index.modules.values()}
        for mod in index.modules.values():
            for node in ast.walk(mod.tree):
                if (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and id(node) not in own_name_nodes
                ):
                    referenced.update(_split_tokens(node.value))

        for rel_dir in _EXTRA_DIRS:
            base = ctx.root / rel_dir
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                rel = path.relative_to(ctx.root).as_posix()
                if rel in indexed_rels:
                    continue  # already scanned precisely, as AST
                try:
                    text = path.read_text(encoding="utf-8")
                except OSError:
                    continue
                for m in _QUOTED.finditer(text):
                    referenced.update(_split_tokens(m.group(1)))

        doc_paths = [
            p
            for p in [ctx.root / "README.md", ctx.root / "ROADMAP.md"]
            if p.is_file()
        ]
        docs_dir = ctx.root / "docs"
        if docs_dir.is_dir():
            doc_paths.extend(sorted(docs_dir.rglob("*.md")))
        for path in doc_paths:
            rel = path.relative_to(ctx.root).as_posix()
            if rel == _CATALOGUE:
                continue
            for m in _BACKTICKED.finditer(path.read_text(encoding="utf-8")):
                referenced.update(_split_tokens(m.group(1)))

        reported: set[tuple[str, str]] = set()
        for reg in index.registrations:
            if (reg.kind, reg.name) in reported:
                continue
            reported.add((reg.kind, reg.name))
            if reg.name not in referenced:
                yield reg.module.finding(
                    RULE,
                    reg.node,
                    f"{reg.kind} component {reg.name!r} is registered but "
                    "referenced nowhere — no scenario literal, experiment, "
                    "test, script, or docs mention outside the registry "
                    "catalogue; delete it or use it",
                )
