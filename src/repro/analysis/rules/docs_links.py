"""docs-links rule: the markdown tree resolves, from the one lint door.

Folds the standalone link checker (``scripts/check_links.py``, still the
CI docs job's entry point) into ``repro-lint``:

* every relative link and anchor in ``README.md`` + ``docs/`` (plus
  ``ISSUE.md`` / ``ROADMAP.md`` when present) must resolve
  (:func:`repro.analysis.mdlinks.check_file_errors`);
* every ``docs/*.md`` page *mentioned* in the top-level pages — prose and
  inline code included, which plain link syntax checking cannot see —
  must exist (:func:`repro.analysis.mdlinks.referenced_docs_errors`).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import mdlinks
from repro.analysis.core import Finding, LintContext, LintRule
from repro.registry import register


def _rel(root: Path, path: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return str(path)


def _md_snippet(path: Path, lineno: int) -> str:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return ""
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


@register("lint", "docs-links")
class DocsLinksRule(LintRule):
    """Markdown links, anchors, and referenced docs pages all resolve."""

    name = "docs-links"
    scope = "repo"
    description = (
        "README.md + docs/ (and ISSUE.md/ROADMAP.md when present) must "
        "have no broken relative links or anchors, and every docs/*.md "
        "page mentioned from the top-level pages must exist"
    )

    def check_repo(self, ctx: LintContext):
        root = ctx.root
        targets: list[Path] = []
        for name in ("README.md", "ISSUE.md", "ROADMAP.md"):
            if (root / name).exists():
                targets.append(root / name)
        docs_dir = root / "docs"
        if docs_dir.is_dir():
            targets.extend(sorted(docs_dir.rglob("*.md")))
        for path in targets:
            rel = _rel(root, path)
            for lineno, msg in mdlinks.check_file_errors(path):
                yield Finding(
                    rule=self.name,
                    path=rel,
                    line=lineno,
                    message=msg,
                    snippet=_md_snippet(path, lineno),
                )
        for page, lineno, msg in mdlinks.referenced_docs_errors(root):
            yield Finding(
                rule=self.name,
                path=_rel(root, page),
                line=lineno,
                message=msg,
                snippet=_md_snippet(page, lineno),
            )
