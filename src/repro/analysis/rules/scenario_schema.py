"""Scenario round-trip rule: fields, wire format, and docs stay in sync.

``Scenario.to_dict`` / ``from_dict`` are generic over the dataclass
fields, so the wire format cannot drift from the fields themselves — but
two things still can:

* the special-case key lists inside ``to_dict`` / ``from_dict`` (the
  nested-payload deep copies for ``workload`` / ``failures`` /
  ``topology``) can reference keys that are no longer fields, silently
  becoming dead special-cases when a field is renamed;
* ``docs/scenario-schema.md`` — the contract sweep-cache keys are derived
  from — can miss a newly added field entirely, which is how a cache-key
  change ships undocumented.

This rule parses the ``Scenario`` dataclass statically (never imports
it) and checks both.
"""

from __future__ import annotations

import ast

from repro.analysis.core import LintContext, LintRule, ModuleSource
from repro.registry import register

_SCENARIO_REL = "repro/scenario/scenario.py"
_SCHEMA_DOC = "docs/scenario-schema.md"


def _scenario_module(ctx: LintContext) -> ModuleSource | None:
    for module in ctx.modules:
        if module.rel.replace("\\", "/").endswith(_SCENARIO_REL):
            return module
    return None


def _scenario_class(module: ModuleSource) -> ast.ClassDef | None:
    tree = module.tree
    if tree is None:
        return None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Scenario":
            return node
    return None


def scenario_fields(cls: ast.ClassDef) -> dict[str, int]:
    """Dataclass field name -> line, from annotated class-level assigns."""
    fields: dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not stmt.target.id.startswith("_"):
                fields[stmt.target.id] = stmt.lineno
    return fields


def _string_literals(node: ast.AST) -> list[tuple[str, int]]:
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            out.append((sub.value, sub.lineno))
    return out


@register("lint", "scenario-schema-docs")
class ScenarioSchemaDocsRule(LintRule):
    """Scenario fields are documented; serialization special-cases are real."""

    name = "scenario-schema-docs"
    scope = "repo"
    description = (
        "every Scenario dataclass field must have a row in "
        "docs/scenario-schema.md (cache keys are derived from to_dict, so "
        "an undocumented field is an undocumented cache-key change), and "
        "the key lists special-cased in to_dict/from_dict must name real "
        "fields"
    )

    def check_repo(self, ctx: LintContext):
        module = _scenario_module(ctx)
        if module is None:
            return  # tree under lint does not contain the scenario layer
        cls = _scenario_class(module)
        if cls is None:
            yield module.finding(
                self.name, 1, "repro/scenario/scenario.py no longer defines class Scenario"
            )
            return
        fields = scenario_fields(cls)

        doc_text = ctx.read_doc(_SCHEMA_DOC)
        if doc_text is None:
            yield module.finding(
                self.name,
                cls,
                f"{_SCHEMA_DOC} is missing — the Scenario wire format must stay "
                "documented (cache keys are derived from it)",
            )
        else:
            for name, lineno in sorted(fields.items(), key=lambda kv: kv[1]):
                if f"`{name}`" not in doc_text:
                    yield module.finding(
                        self.name,
                        lineno,
                        f"Scenario field {name!r} has no row in {_SCHEMA_DOC} — "
                        "document the field (it feeds to_dict and therefore "
                        "sweep-cache keys, or must be consciously exempted there)",
                    )

        # The serialization methods special-case nested-payload keys; each
        # literal key they name must still be a field.
        for stmt in cls.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if stmt.name not in ("to_dict", "from_dict", "__post_init__"):
                continue
            for value, lineno in _string_literals(stmt):
                if value in ("workload", "failures", "topology", "collectors", "traces"):
                    if value not in fields:
                        yield module.finding(
                            self.name,
                            lineno,
                            f"{stmt.name} special-cases key {value!r} which is not "
                            "a Scenario field — dead special-case after a rename?",
                        )
