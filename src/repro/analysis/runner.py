"""Collect sources, run rules, filter suppressions and baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import rules as _rules  # noqa: F401  (registers the rule pack)
from repro.analysis.baseline import load_baseline, split_baselined
from repro.analysis.core import Finding, LintContext, LintRule, ModuleSource
from repro.errors import UnknownComponentError
from repro.registry import create, names

#: Directory names never descended into when collecting sources.
_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", ".pytest_cache", ".benchmarks"}


def detect_root(paths: list[Path]) -> Path:
    """The repo root the lint run is anchored to.

    Walks up from the first path looking for the repo shape (a directory
    holding ``docs/`` and ``src/``, or a ``.git``); falls back to the
    current directory.  Repo-scope rules read docs relative to this root,
    and finding paths are reported relative to it.
    """
    start = paths[0].resolve() if paths else Path.cwd()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "docs").is_dir() and (candidate / "src").is_dir():
            return candidate
        if (candidate / ".git").exists():
            return candidate
    return Path.cwd()


def collect_sources(paths: list[Path], root: Path) -> list[ModuleSource]:
    """Every ``*.py`` under ``paths``, as :class:`ModuleSource` (sorted)."""
    files: list[Path] = []
    for p in paths:
        p = p.resolve()
        if p.is_dir():
            files.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not (_SKIP_DIRS & set(f.relative_to(p).parts))
            )
        elif p.suffix == ".py":
            files.append(p)
    modules = []
    seen: set[Path] = set()
    for f in files:
        if f in seen:
            continue
        seen.add(f)
        try:
            rel = f.relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = str(f)
        modules.append(ModuleSource(f, rel))
    return modules


@dataclass
class LintReport:
    """Outcome of one lint run (before formatting)."""

    findings: list[Finding] = field(default_factory=list)  # failing the run
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    rules: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def build_rules(select: list[str] | None = None) -> list[LintRule]:
    """Instantiate the rule pack (optionally a named subset)."""
    available = names("lint")
    wanted = available if select is None else select
    rules: list[LintRule] = []
    for name in wanted:
        if name not in available:
            raise UnknownComponentError(
                f"unknown lint rule {name!r}; available: {available}"
            )
        rules.append(create("lint", name))
    return rules


def _file_findings(
    module: ModuleSource, rules: list[LintRule], ctx: LintContext
) -> list[Finding]:
    """The serial per-file phase for one module: syntax + file-scope rules."""
    out: list[Finding] = []
    if module.tree is None and module.syntax_error is not None:
        err = module.syntax_error
        out.append(
            Finding(
                rule="syntax-error",
                path=module.rel,
                line=err.lineno or 1,
                message=f"file does not parse: {err.msg}",
                snippet=(err.text or "").strip(),
                suppressible=False,
            )
        )
    for rule in rules:
        if rule.scope == "file":
            out.extend(rule.check(module, ctx))
    return out


def _file_phase_task(item: tuple[str, str, tuple[str, ...] | None, str]) -> list[Finding]:
    """Worker for ``--jobs``: re-read one file, run the file-scope rules.

    Module-level and argument-picklable by construction (the
    ``worker-purity`` contract this package itself enforces): each worker
    re-parses its file from the path and rebuilds the rule pack, touching
    no shared state.  Findings are plain frozen dataclasses, so they
    pickle back unchanged.
    """
    path_str, rel, select, root_str = item
    module = ModuleSource(Path(path_str), rel)
    rules = build_rules(None if select is None else list(select))
    ctx = LintContext(root=Path(root_str), modules=[module])
    return _file_findings(module, rules, ctx)


def run_lint(
    paths: list[Path],
    *,
    root: Path | None = None,
    select: list[str] | None = None,
    baseline_path: Path | None = None,
    jobs: int | None = None,
) -> LintReport:
    """Run the (selected) rule pack over ``paths``.

    Findings are filtered in two layers: per-line / per-file suppression
    comments (counted, never shown), then the baseline (shown separately
    by the reporters, never failing the run).  Non-suppressible findings
    bypass both.

    ``jobs`` fans the per-file phase out through ``supervised_map`` (the
    repo's one sanctioned process pool).  Workers return their findings
    in input order and the repo-scope phase, suppression filter, and sort
    all run in the parent, so the report is bit-identical to a serial
    run.
    """
    root = detect_root(paths) if root is None else root
    modules = collect_sources(paths, root)
    ctx = LintContext(root=root, modules=modules)
    rules = build_rules(select)

    raw: list[Finding] = []
    if jobs is not None and jobs > 1:
        from repro.runtime.supervisor import raise_on_failures, supervised_map

        items = [
            (str(m.path), m.rel, None if select is None else tuple(select), str(root))
            for m in modules
        ]
        outcomes = supervised_map(_file_phase_task, items, workers=jobs)
        raise_on_failures(outcomes, what="lint file")
        for outcome in outcomes:
            raw.extend(outcome.value)
    else:
        for module in modules:
            raw.extend(_file_findings(module, rules, ctx))
    for rule in rules:
        if rule.scope == "repo":
            raw.extend(rule.check_repo(ctx))

    by_rel = {m.rel: m for m in modules}
    kept: list[Finding] = []
    suppressed = 0
    for f in raw:
        module = by_rel.get(f.path)
        if (
            f.suppressible
            and module is not None
            and module.suppressed(f.rule, f.line)
        ):
            suppressed += 1
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))

    baselined: list[Finding] = []
    if baseline_path is not None and baseline_path.exists():
        table = load_baseline(baseline_path)
        suppressible = [f for f in kept if f.suppressible]
        hard = [f for f in kept if not f.suppressible]
        new, baselined = split_baselined(suppressible, table)
        kept = sorted(new + hard, key=lambda f: (f.path, f.line, f.rule))

    return LintReport(
        findings=kept,
        baselined=baselined,
        suppressed=suppressed,
        files=len(modules),
        rules=[r.name for r in rules],
    )
