"""Whole-program index for repo-scope lint rules.

:class:`ProjectIndex` is built once per lint run (lazily, the first time
a rule touches ``LintContext.project``) from the already-collected
:class:`~repro.analysis.core.ModuleSource` list.  It turns the flat file
list into the structures cross-module rules need:

* a **module graph** — dotted module names derived from paths
  (``src/repro/scenario/sweep.py`` → ``repro.scenario.sweep``), internal
  import edges, and per-module import *bindings* (local name → fully
  qualified target) that follow aliases and relative imports;
* a **symbol table** — every class, function, and method, addressable by
  qualified name (``repro.simulator.components.MetricsCollector``,
  ``...EventCountsCollector.on_admit``), plus module-level assignments
  (the globals workers must not mutate);
* every static **registry registration**, resolved to the decorated
  definition where there is one;
* a best-effort **call graph** over names the index can actually resolve
  (direct calls, module-attribute calls, ``self.`` method calls) — the
  propagation substrate for the taint and purity rules.

Like every other analysis structure, the index is a *pure reader*: it
parses, it never imports the code under analysis.  Degradation is partial
by design — a module that does not parse contributes nothing (it is
listed in :attr:`ProjectIndex.skipped` and separately reported as a
``syntax-error`` finding by the runner), namespace packages (directories
without ``__init__.py``) index like any other, and unresolvable names
simply resolve to ``None`` instead of raising.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import ImportMap, ModuleSource

#: register-family functions whose call sites declare components.
_REGISTER_FNS = frozenset({"register", "register_value", "register_instance"})

#: Maximum binding-chain length followed when resolving re-exports.
_RESOLVE_DEPTH = 16


def module_name_for(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    A leading ``src/`` component is stripped (the repo's layout), and
    ``__init__.py`` names its package.  Paths outside any package
    (``examples/quickstart.py``, ``benchmarks/helpers.py``) still get a
    stable dotted name from their directories, so the index can hold the
    whole linted tree, not just the importable library.
    """
    parts = list(Path(rel).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else rel


@dataclass(frozen=True)
class Registration:
    """One static ``@register``-family call site."""

    kind: str
    name: str
    module: ModuleSource
    node: ast.Call
    #: Qualified name of the decorated class/function, None for bare calls.
    target: str | None


@dataclass
class ClassInfo:
    """One class definition, addressable by qualified name."""

    qualname: str
    module: ModuleSource
    node: ast.ClassDef
    #: Base classes as written (dotted source text, unresolved).
    bases: list[str] = field(default_factory=list)

    def methods(self) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        return {
            stmt.name: stmt
            for stmt in self.node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: ModuleSource
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Qualified name of the enclosing class for methods, else None.
    class_qualname: str | None = None


def _dotted(expr: ast.expr) -> str | None:
    """``a.b.c`` for a Name-rooted attribute chain, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _literal_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _ModuleIndexer(ast.NodeVisitor):
    """One pass over a module collecting defs, globals, and registrations."""

    def __init__(self, index: ProjectIndex, module: ModuleSource, mod_name: str) -> None:
        self.index = index
        self.module = module
        self.mod_name = mod_name
        self.imports = ImportMap(module.tree)
        self.scope: list[str] = []  # enclosing def/class names
        self.class_stack: list[str] = []  # enclosing class qualnames
        self._decorator_calls: set[int] = set()  # node ids handled at the def site

    # -- definitions -------------------------------------------------------------

    def _qual(self, name: str) -> str:
        return ".".join([self.mod_name, *self.scope, name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        bases = [b for b in (_dotted(base) for base in node.bases) if b is not None]
        self.index.classes[qual] = ClassInfo(qual, self.module, node, bases)
        self._collect_registrations(node, qual)
        self.scope.append(node.name)
        self.class_stack.append(qual)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qual = self._qual(node.name)
        self.index.functions[qual] = FunctionInfo(
            qual, self.module, node, self.class_stack[-1] if self.class_stack else None
        )
        self._collect_registrations(node, qual)
        self.scope.append(node.name)
        in_class = bool(self.class_stack)
        if in_class:
            # Nested defs inside a method are scoped under the method, not
            # the class; the class context does not extend through them.
            self.class_stack.append(self.class_stack[-1])
        self.generic_visit(node)
        if in_class:
            self.class_stack.pop()
        self.scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.scope:  # module level only
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.index.module_globals[self.mod_name][target.id] = node
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self.scope and isinstance(node.target, ast.Name):
            self.index.module_globals[self.mod_name][node.target.id] = node
        self.generic_visit(node)

    # -- registrations -----------------------------------------------------------

    def _collect_registrations(self, node: ast.AST, target: str | None) -> None:
        decorators = getattr(node, "decorator_list", [])
        for deco in decorators:
            if isinstance(deco, ast.Call):
                self._decorator_calls.add(id(deco))
            self._maybe_registration(deco, target)

    def _maybe_registration(self, call: ast.AST, target: str | None) -> None:
        if not isinstance(call, ast.Call):
            return
        if self.imports.registry_call(call.func) not in _REGISTER_FNS:
            return
        args = list(call.args)
        kwargs = {k.arg: k.value for k in call.keywords if k.arg}
        kind = _literal_str(args[0] if args else kwargs.get("kind"))
        name = _literal_str(args[1] if len(args) > 1 else kwargs.get("name"))
        if kind is not None and name is not None:
            self.index.registrations.append(
                Registration(kind, name, self.module, call, target)
            )

    def visit_Call(self, node: ast.Call) -> None:
        # Bare (non-decorator) register calls: register_instance("kind",
        # "name", obj).  Decorator calls were already collected at the def
        # site with their target attached, so they are skipped here.
        if id(node) not in self._decorator_calls:
            self._maybe_registration(node, None)
        self.generic_visit(node)


class ProjectIndex:
    """Module graph + symbol table + registrations + call graph.

    Build once from the collected modules; every attribute is a plain
    dict keyed by dotted names, so rules can be written against stable
    structures instead of re-walking ASTs.
    """

    def __init__(self, modules: list[ModuleSource]) -> None:
        #: dotted module name -> source (first wins on collisions).
        self.modules: dict[str, ModuleSource] = {}
        #: rel path -> dotted module name.
        self.module_names: dict[str, str] = {}
        #: modules whose AST is unavailable (syntax errors): partial index.
        self.skipped: list[ModuleSource] = []
        #: module -> local name -> fully qualified imported target.
        self.bindings: dict[str, dict[str, str]] = {}
        #: internal import graph (edges to modules present in the index).
        self.imports: dict[str, set[str]] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: module -> top-level assigned name -> the assignment statement.
        self.module_globals: dict[str, dict[str, ast.stmt]] = {}
        self.registrations: list[Registration] = []
        #: function qualname -> resolved call targets (qualified names).
        self.calls: dict[str, set[str]] = {}

        for module in modules:
            name = module_name_for(module.rel)
            if module.tree is None:
                self.skipped.append(module)
                continue
            if name in self.modules:
                continue
            self.modules[name] = module
            self.module_names[module.rel] = name
            self.module_globals[name] = {}
        for name, module in self.modules.items():
            self.bindings[name] = self._collect_bindings(name, module)
        for name, module in self.modules.items():
            indexer = _ModuleIndexer(self, module, name)
            indexer.visit(module.tree)
        for name in self.modules:
            self.imports[name] = {
                self._binding_module(target)
                for target in self.bindings[name].values()
                if self._binding_module(target) is not None
            }
        self._build_call_graph()

    # -- import bindings ---------------------------------------------------------

    def _collect_bindings(self, mod_name: str, module: ModuleSource) -> dict[str, str]:
        bindings: dict[str, str] = {}
        package = mod_name.rpartition(".")[0]
        if module.rel.endswith("__init__.py"):
            package = mod_name
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        bindings[alias.asname] = alias.name
                    else:
                        head = alias.name.partition(".")[0]
                        bindings[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    up = package.split(".") if package else []
                    if node.level > 1:
                        up = up[: len(up) - (node.level - 1)]
                    base = ".".join([p for p in [".".join(up), node.module or ""] if p])
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    bindings[bound] = f"{base}.{alias.name}" if base else alias.name
        return bindings

    def _binding_module(self, target: str) -> str | None:
        """The indexed module a fully qualified target lives in, if any."""
        parts = target.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    # -- symbol resolution -------------------------------------------------------

    def resolve(self, fq: str) -> ClassInfo | FunctionInfo | None:
        """The definition behind a qualified name, following re-exports."""
        seen: set[str] = set()
        for _ in range(_RESOLVE_DEPTH):
            if fq in seen:
                return None
            seen.add(fq)
            if fq in self.classes:
                return self.classes[fq]
            if fq in self.functions:
                return self.functions[fq]
            mod = self._binding_module(fq)
            if mod is None or mod == fq:
                return None
            rest = fq[len(mod) + 1 :].split(".")
            head = rest[0]
            bound = self.bindings.get(mod, {}).get(head)
            if bound is None:
                return None
            fq = ".".join([bound, *rest[1:]])
        return None

    def resolve_in_module(self, mod_name: str, dotted: str) -> str | None:
        """Fully qualify a dotted name as seen from inside ``mod_name``."""
        head, _, rest = dotted.partition(".")
        local = f"{mod_name}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        if head in self.module_globals.get(mod_name, {}) and not rest:
            return local
        bound = self.bindings.get(mod_name, {}).get(head)
        if bound is not None:
            return f"{bound}.{rest}" if rest else bound
        if f"{mod_name}.{head}" in self.classes and rest:
            return local
        return None

    def class_named(self, name: str, prefer: str | None = None) -> ClassInfo | None:
        """A class by bare name (``prefer`` picks among homonyms by prefix)."""
        matches = [c for q, c in self.classes.items() if q.rpartition(".")[2] == name]
        if prefer is not None:
            preferred = [c for c in matches if c.qualname.startswith(prefer)]
            if preferred:
                matches = preferred
        return min(matches, key=lambda c: c.qualname) if matches else None

    def mro_methods(self, cls: ClassInfo, depth: int = 8) -> dict[str, ast.AST]:
        """Methods visible on ``cls`` through index-resolvable bases."""
        methods: dict[str, ast.AST] = {}
        stack: list[tuple[ClassInfo, int]] = [(cls, 0)]
        seen: set[str] = set()
        while stack:
            current, d = stack.pop(0)
            if current.qualname in seen or d > depth:
                continue
            seen.add(current.qualname)
            for name, node in current.methods().items():
                methods.setdefault(name, node)
            mod_name = self.module_names.get(current.module.rel)
            for base in current.bases:
                fq = self.resolve_in_module(mod_name, base) if mod_name else None
                resolved = self.resolve(fq) if fq else None
                if isinstance(resolved, ClassInfo):
                    stack.append((resolved, d + 1))
        return methods

    # -- call graph --------------------------------------------------------------

    def _build_call_graph(self) -> None:
        for qual, info in self.functions.items():
            mod_name = self.module_names.get(info.module.rel)
            if mod_name is None:
                continue
            targets: set[str] = set()
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                resolved = self._resolve_call(dotted, mod_name, info)
                if resolved is not None:
                    targets.add(resolved)
            self.calls[qual] = targets

    def _resolve_call(
        self, dotted: str, mod_name: str, info: FunctionInfo
    ) -> str | None:
        head, _, rest = dotted.partition(".")
        if head == "self" and info.class_qualname is not None and rest:
            # Walk the (index-resolvable) MRO: the method may live on a base.
            cls = self.classes.get(info.class_qualname)
            stack, seen = ([cls] if cls else []), set()
            while stack:
                current = stack.pop(0)
                if current.qualname in seen:
                    continue
                seen.add(current.qualname)
                candidate = f"{current.qualname}.{rest}"
                if candidate in self.functions:
                    return candidate
                mod = self.module_names.get(current.module.rel)
                for base in current.bases:
                    fq = self.resolve_in_module(mod, base) if mod else None
                    resolved = self.resolve(fq) if fq else None
                    if isinstance(resolved, ClassInfo):
                        stack.append(resolved)
            return None
        fq = self.resolve_in_module(mod_name, dotted)
        if fq is None:
            return None
        resolved = self.resolve(fq)
        if isinstance(resolved, FunctionInfo):
            return resolved.qualname
        if isinstance(resolved, ClassInfo):
            # Calling a class runs its constructor.
            init = f"{resolved.qualname}.__init__"
            return init if init in self.functions else resolved.qualname
        return None

    def callees(self, qualname: str) -> set[str]:
        return self.calls.get(qualname, set())

    def reachable_from(self, roots: list[str], limit: int = 500) -> list[str]:
        """Qualnames reachable through the call graph, BFS order, bounded."""
        order: list[str] = []
        seen: set[str] = set()
        queue = [r for r in roots if r in self.functions or r in self.classes]
        while queue and len(order) < limit:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            queue.extend(sorted(self.callees(current) - seen))
        return order
