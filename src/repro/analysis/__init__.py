"""Static analysis: the ``repro-lint`` AST-based invariant checker.

The determinism, registry, golden-freeze, merge-discipline and docs
contracts this reproduction rests on (ROADMAP "Established architecture")
are enforced *statically* here — at review time, in CI, on every file,
including code paths no test reaches.  Rules are components like
everything else: registered under kind ``lint`` via
``@register("lint", name)``, discoverable through :mod:`repro.registry`,
and suppressible per line (``# repro-lint: disable=<rule>``) or via a
committed baseline file.

Front doors:

* ``python -m repro.analysis src examples`` (console entry
  ``repro-lint``) — the CLI, gating CI;
* :func:`repro.analysis.runner.run_lint` — the library entry tests and
  tooling use;
* ``docs/analysis.md`` — the rule catalogue and how to write a rule.

Importing this package registers the stock rule pack (import-driven
registration, like every other kind).
"""

from repro.analysis import rules  # noqa: F401  (registers the rule pack)
from repro.analysis.core import Finding, LintContext, LintRule, ModuleSource
from repro.analysis.runner import LintReport, run_lint

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "LintRule",
    "ModuleSource",
    "run_lint",
]
