"""``python -m repro.analysis`` — the repro-lint invariant checker."""

from repro.analysis.cli import main

raise SystemExit(main())
