"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a committed JSON file listing findings that existed when a
rule was introduced (or that are deliberate, with a justifying note).
``repro-lint --baseline <file>`` subtracts matching findings from the
failing set; ``--update-baseline`` rewrites the file from the current
findings, pruning entries that no longer match.

Matching is by :attr:`repro.analysis.core.Finding.fingerprint` — a hash
of ``(rule, path, source line)`` that ignores line numbers, so unrelated
edits above a grandfathered line do not resurrect it.  Every entry should
carry a ``note`` saying *why* the finding is acceptable; entries without
one are legal but frowned upon in review.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding
from repro.errors import ReproError

BASELINE_VERSION = 1
#: Default baseline location, relative to the lint root.
DEFAULT_BASELINE = "lint-baseline.json"


class BaselineError(ReproError):
    """A baseline file that cannot be read or has the wrong shape."""


def load_baseline(path: Path) -> dict[str, dict]:
    """``fingerprint -> entry`` from a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format "
            f"(expected {{'version': {BASELINE_VERSION}, 'findings': [...]}})"
        )
    entries = payload.get("findings", [])
    table: dict[str, dict] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise BaselineError(f"baseline {path}: malformed entry {entry!r}")
        table[entry["fingerprint"]] = entry
    return table


def split_baselined(
    findings: list[Finding], table: dict[str, dict]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, grandfathered) against a baseline.

    A baseline fingerprint matches every finding with the same content
    (two identical offending lines in one file share an entry — the
    baseline grandfathers the *pattern at that path*, documented
    behaviour rather than an accident).
    """
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        (old if f.fingerprint in table else new).append(f)
    return new, old


def write_baseline(path: Path, findings: list[Finding], notes: dict[str, str] | None = None) -> None:
    """Serialize ``findings`` as the new baseline (sorted, stable)."""
    notes = notes or {}
    seen: set[str] = set()
    entries = []
    for f in sorted(findings, key=lambda f: (f.path, f.rule, f.line)):
        if f.fingerprint in seen:
            continue
        seen.add(f.fingerprint)
        entry = {
            "rule": f.rule,
            "path": f.path,
            "snippet": f.snippet,
            "fingerprint": f.fingerprint,
        }
        note = notes.get(f.fingerprint)
        if note:
            entry["note"] = note
        entries.append(entry)
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
