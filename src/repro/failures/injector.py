"""Failure injection: driving revocations and capacity dips through the replay.

The :class:`FailureInjector` owns the failure side of a simulation run.  It
expands a :class:`~repro.failures.models.FailureModel` schedule against the
resolved cluster, merges it with the VM trace's start/end events, and runs
the combined stream through the simulator's unmodified event handlers —
the event loop itself stays the deterministic heart of the system, failures
are just more events.

Semantics, per event kind (ties at one interval are processed in this
order — server arrivals, VM departures, VM arrivals, revocations, dip
ends, dip starts, requeued restarts, evacuation ticks, evacuation
deadlines):

* **revocation** — the server leaves for good; every VM it hosted is
  handled according to ``response``:

  - ``"evacuate"`` (deflation-first): each resident is re-placed through
    the normal admission/scoring path, deflating the destination's
    residents as needed — the paper's thesis applied to transience:
    deflation *absorbs* the revocation.  On-demand residents are placed
    first (they cannot be deflated into a tight spot), then deflatable
    ones.  Without a warning window the server's capacity drops to zero
    immediately and residents that no surviving server can take are
    lost.  With ``warning_intervals`` set, the revocation is a *warning*:
    the server stops accepting placements (draining) but keeps running,
    and migration is rationed by ``evacuation_budget`` — at most ``k``
    VMs (or ``c`` cores) per interval move, one evacuation tick per
    interval, until the deadline ``warning_intervals`` later, when the
    capacity finally drops to zero and the stragglers are killed.  A
    resident that finds no destination at one tick simply stays put and
    retries at the next.
  - ``"kill"`` (kill-and-requeue): every resident is killed on the spot —
    the classic preemption experience — and re-queued to restart
    ``restart_delay`` intervals later through normal admission.  The gap
    between kill and successful restart is recorded as downtime; VMs whose
    restart is rejected (or whose lifetime ends first) are lost.

* **capacity dip** — the server's capacity is scaled by the event's
  ``scale`` for its duration.  Under a deflation policy the standard
  rebalance squeezes residents into the reduced capacity (and reinflates
  them when the dip ends); under the preemption baseline the lowest
  priority deflatable residents are evicted until the remainder fits.

* **server arrival** — a new server joins the cluster at nominal shape
  (elastic transient pools): the simulator grows its per-server state,
  the nominal-capacity accounting adds the arrival's cores, and from that
  instant the server is an ordinary placement candidate (in partitioned
  mode it joins pool ``ordinal mod n_pools``, a static rule the sharded
  engine replicates when slicing).

Lost and absorbed work are tallied in core-intervals (VM cores x trace
intervals; one interval is 5 minutes of VM-seconds per core) so "how much
work did deflation save" is directly comparable across VM sizes.  The
tallies are event-level: a VM revoked twice contributes at each event.

The injector is attached by the engine when a scenario carries a
``failures`` spec (:meth:`Scenario.with_failures`); a simulator without an
injector runs the original array-sorted loop untouched, which is what keeps
failure-free scenarios bit-identical to the pinned reference.
"""

from __future__ import annotations

import copy
import heapq

import numpy as np

from repro.errors import SimulationError
from repro.failures.models import FailureModel, check_topology, resolve_topology
from repro.registry import create

#: Event kinds, ordered by processing priority within one interval.  Server
#: ARRIVALs come first (new capacity is usable by anything else at that
#: interval); END before START mirrors the simulator's own sort.  Dip
#: *ends* sort before dip *starts* so back-to-back dips (one ending exactly
#: when the next begins) hand over cleanly instead of the ending dip
#: cancelling the just-started one.  Evacuation ticks (EVAC) and drain
#: DEADLINEs come last, after the interval's departures freed capacity and
#: its requeues landed.  The sharded engine's merger replays shard streams
#: in this same ``(t, kind, key)`` order, so renumbering these is a
#: cross-module change (see ``repro.simulator.sharded`` and the
#: ``failure-log`` collector's ``merge_shards``).
_ARRIVAL, _END, _START, _REVOKE, _DIP_END, _DIP_START, _REQUEUE, _EVAC, _DEADLINE = range(9)

#: ``response`` modes for revocations.
RESPONSES = ("evacuate", "kill")

#: Keys of a scenario ``failures`` spec consumed by the injector itself;
#: everything else is passed to the failure model's constructor.
INJECTOR_KEYS = (
    "model",
    "seed",
    "response",
    "restart_delay",
    "warning_intervals",
    "evacuation_budget",
)


class FailureInjector:
    """Drives one failure schedule through one simulator replay.

    Parameters
    ----------
    model:
        The schedule generator (a registered ``failure`` component).
    seed:
        Seed for the schedule's RNG.  The same ``(model spec, seed)`` on the
        same cluster always yields the same schedule, so failure-injected
        runs stay deterministic across processes and cache layers.
    response:
        ``"evacuate"`` for deflation-first migration off revoked servers,
        ``"kill"`` for kill-and-requeue (see the module docstring).
    restart_delay:
        Intervals between a kill and the requeued restart attempt
        (``response="kill"`` only).  ``None`` disables requeueing: killed
        VMs are simply lost.
    warning_intervals:
        Revocation warning window (``response="evacuate"`` only).  ``None``
        (the default) keeps the legacy instant evacuation; a positive
        value turns every revocation into a timed drain with one
        evacuation tick per interval and a straggler-killing deadline
        ``warning_intervals`` after the warning.
    evacuation_budget:
        Per-tick migration ration during a drain (requires
        ``warning_intervals``): an int ``k`` (at most ``k`` VMs per tick)
        or ``{"cores": c}`` (successful migrations totalling at most ``c``
        cores per tick; a VM larger than the whole budget still moves when
        it is the tick's first migration, so nothing starves).  ``None``
        moves everything the cluster can take at the first tick.
    topology:
        The scenario's ``topology`` spec (racks/groups), resolved against
        the cluster size at schedule time and handed to topology-aware
        models; ``None`` for topology-free scenarios.
    """

    def __init__(
        self,
        model: FailureModel,
        seed: int = 0,
        response: str = "evacuate",
        restart_delay: float | None = 1.0,
        warning_intervals: float | None = None,
        evacuation_budget: int | dict | None = None,
        topology: dict | None = None,
    ) -> None:
        if response not in RESPONSES:
            raise SimulationError(f"response must be one of {RESPONSES}, got {response!r}")
        if restart_delay is not None and restart_delay < 0:
            raise SimulationError("restart_delay must be >= 0 intervals")
        if warning_intervals is not None:
            if warning_intervals <= 0:
                raise SimulationError(
                    "warning_intervals must be > 0 (omit it for instant evacuation)"
                )
            if response != "evacuate":
                raise SimulationError(
                    'warning_intervals only applies to response="evacuate" '
                    "(kills model zero-warning reclamation)"
                )
        self._budget_vms, self._budget_cores = self._parse_budget(
            evacuation_budget, warning_intervals
        )
        if topology is not None:
            check_topology(topology)
        self.model = model
        self.seed = int(seed)
        self.response = response
        self.restart_delay = restart_delay
        self.warning_intervals = (
            None if warning_intervals is None else float(warning_intervals)
        )
        self.evacuation_budget = evacuation_budget
        self.topology = topology
        #: The declarative ``failures`` spec this injector was built from
        #: (:meth:`from_spec` only; None for direct construction).  Snapshot
        #: restores compare it to decide between resuming the stored event
        #: heap verbatim and rebuilding a fresh schedule for a what-if fork.
        self.spec: dict | None = None
        self._reset()

    @staticmethod
    def _parse_budget(
        budget: int | dict | None, warning_intervals: float | None
    ) -> tuple[int | None, float | None]:
        """Normalize an ``evacuation_budget`` spec to ``(vms, cores)``."""
        if budget is None:
            return None, None
        if warning_intervals is None:
            raise SimulationError(
                "evacuation_budget needs warning_intervals (a ration only "
                "means something over a warning window)"
            )
        if isinstance(budget, dict):
            unknown = sorted(set(budget) - {"vms", "cores"})
            if unknown or len(budget) != 1:
                raise SimulationError(
                    'evacuation_budget dict needs exactly one of "vms" or '
                    f'"cores", got {sorted(budget)}'
                )
            if "vms" in budget:
                vms = int(budget["vms"])
                if vms < 1:
                    raise SimulationError("evacuation_budget vms must be >= 1")
                return vms, None
            cores = float(budget["cores"])
            if cores <= 0:
                raise SimulationError("evacuation_budget cores must be > 0")
            return None, cores
        vms = int(budget)
        if vms < 1:
            raise SimulationError("evacuation_budget must be >= 1 VMs per interval")
        return vms, None

    @classmethod
    def from_spec(cls, spec: dict, topology: dict | None = None) -> "FailureInjector":
        """Build an injector from a scenario's ``failures`` dict.

        The spec mixes injector knobs (``seed``, ``response``,
        ``restart_delay``, ``warning_intervals``, ``evacuation_budget``)
        with model parameters; everything that is not an injector key is
        forwarded to the registered model's constructor, so ``{"model":
        "spot", "rate": 0.002, "seed": 7}`` builds
        ``SpotRevocations(rate=0.002)`` driven with seed 7.  ``topology``
        is the scenario's cluster topology spec (not part of the failure
        spec — the same topology can serve several failure models).
        """
        params = dict(spec)
        try:
            name = params.pop("model")
        except KeyError:
            raise SimulationError('failure spec needs a "model" key') from None
        seed = params.pop("seed", 0)
        response = params.pop("response", "evacuate")
        restart_delay = params.pop("restart_delay", 1.0)
        warning_intervals = params.pop("warning_intervals", None)
        evacuation_budget = params.pop("evacuation_budget", None)
        model = create("failure", name, **params)
        injector = cls(
            model,
            seed=seed,
            response=response,
            restart_delay=restart_delay,
            warning_intervals=warning_intervals,
            evacuation_budget=evacuation_budget,
            topology=topology,
        )
        injector.spec = copy.deepcopy(spec)
        return injector

    # -- per-run state -----------------------------------------------------------

    def _reset(self) -> None:
        self._revoked: set[int] = set()
        self._dip_active: dict[int, float] = {}
        self._requeue_pending: dict[int, float] = {}  # vm -> kill time
        self._draining: dict[int, float] = {}  # server -> deadline
        self._drain_queue: dict[int, list[int]] = {}  # server -> pending VMs
        self._nominal_cap: np.ndarray | None = None
        self._initial_cores = 0.0
        #: The merged VM + failure event heap and running peak, owned by
        #: :meth:`start` / :meth:`step` (``drive`` is their composition).
        self._heap: list[tuple[float, int, int, float]] | None = None
        self._peak = 0.0
        self.counts = {
            "revocations": 0,
            "capacity_dips": 0,
            "server_arrivals": 0,
            "evacuated": 0,
            "evacuation_lost": 0,
            "deadline_killed": 0,
            "killed": 0,
            "recovered": 0,
            "requeue_lost": 0,
            "on_demand_lost": 0,
            "cascade_preemptions": 0,
            "capacity_overruns": 0,
        }
        self.downtime_intervals = 0.0
        self.absorbed_core_intervals = 0.0
        self.lost_core_intervals = 0.0
        self.arrived_nominal_cores = 0.0

    def _accrue(self, metric: str, value: float) -> None:
        """Add one term to a float summary metric (``downtime_intervals``,
        ``absorbed_core_intervals``, ``lost_core_intervals``).

        Every accrual flows through here so the arithmetic stays a single
        left-to-right accumulation; the sharded engine's recording injector
        overrides this to log each term, letting the shard merger replay
        the terms in global event order and reproduce the flat run's float
        accumulation bit for bit.
        """
        setattr(self, metric, getattr(self, metric) + value)

    def _after_event(self, sim, t: float, kind: int, key: int) -> None:
        """Hook called after each merged-stream event is processed.

        ``key`` is the VM index (END/START/REQUEUE) or the server index
        (REVOKE/DIP_START/DIP_END).  The base injector does nothing; the
        sharded engine's recording subclass snapshots committed cores and
        the terms accrued during the event.
        """

    def nominal_total_cores(self) -> float:
        """Provisioned CPU capacity: the initial fleet plus every arrival.

        Kept as ``initial + accrued-arrival-cores`` (not a fresh array sum
        over the grown capacity matrix) so the sharded merger can reproduce
        it exactly: the initial term is the flat tile-sum both engines
        evaluate identically, and the arrival term replays through the
        order-sensitive float-accrual machinery.
        """
        if self._nominal_cap is None:
            raise SimulationError("injector has not driven a replay yet")
        return self._initial_cores + self.arrived_nominal_cores

    def summary(self) -> dict:
        """Plain-scalar failure metrics, stored under ``collected``.

        All values are JSON-serializable, so failure-injected results ride
        through the on-disk :class:`~repro.scenario.cache.SweepCache`
        unchanged.
        """
        return {
            **self.counts,
            "servers_revoked": len(self._revoked),
            "downtime_intervals": self.downtime_intervals,
            "absorbed_core_intervals": self.absorbed_core_intervals,
            "lost_core_intervals": self.lost_core_intervals,
            "arrived_nominal_cores": self.arrived_nominal_cores,
        }

    # -- the merged event loop ---------------------------------------------------

    def schedule(self, n_servers: int, horizon: float):
        """The validated flat failure schedule for one replay.

        Seeds the RNG, resolves the scenario topology against the cluster
        size, and runs the model's topology-aware entry point.  Arrival
        events are validated to use contiguous indices (``n_servers``,
        ``n_servers + 1``, ... in time order) and every other event must
        target a server that exists — initial fleet or arrival.  Shared by
        :meth:`drive` and the sharded engine's slicer, which must see the
        *same* flat schedule to stay bit-identical.
        """
        rng = np.random.default_rng(self.seed)
        group_ids = resolve_topology(self.topology, n_servers)
        events = self.model.events_with_topology(n_servers, horizon, rng, group_ids)
        arrivals = sorted(
            ((ev.time, ev.server) for ev in events if ev.action == "arrive")
        )
        for j, (_, server) in enumerate(arrivals):
            if server != n_servers + j:
                raise SimulationError(
                    f"failure model {self.model.name!r} scheduled arrival index "
                    f"{server}; arrivals must be contiguous from {n_servers} "
                    "in time order"
                )
        n_total = n_servers + len(arrivals)
        arrival_time = {server: time for time, server in arrivals}
        for ev in events:
            if ev.action == "arrive":
                continue
            if ev.server >= n_total:
                raise SimulationError(
                    f"failure model {self.model.name!r} scheduled server "
                    f"{ev.server} on a {n_servers}-server cluster"
                    + (f" with {len(arrivals)} arrivals" if arrivals else "")
                )
            if ev.server >= n_servers and ev.time < arrival_time[ev.server]:
                raise SimulationError(
                    f"failure model {self.model.name!r} scheduled a "
                    f"{ev.action} on server {ev.server} at t={ev.time} "
                    f"before its arrival at t={arrival_time[ev.server]}"
                )
        return events

    def drive(self, sim) -> float:
        """Run the full replay (VM events + failures); returns peak cores.

        Called by :meth:`ClusterSimulator.run` when an injector is
        attached; uses the simulator's own ``_handle_start`` /
        ``_handle_end`` so placement, deflation, and metrics behave exactly
        as in the failure-free loop.  ``drive`` is exactly :meth:`start`
        followed by an unbounded :meth:`step` — the split exists so
        checkpoint/resume (``ClusterSimulator.run_until``) can stop the
        replay at an event boundary without changing how events process.
        """
        self.start(sim)
        self.step(sim)
        return self._peak

    def start(self, sim, vm_entries: list | None = None) -> None:
        """Reset state and build the merged event heap without driving it.

        ``vm_entries`` overrides the VM side of the stream with an explicit
        remainder (``(t, _END|_START, vm, 0.0)`` tuples) — the snapshot
        restore path uses it to fork a warm failure-free prefix into this
        injector's schedule without replaying the prefix's VM events.
        """
        self._reset()
        self._nominal_cap = sim.server_cap.copy()
        self._initial_cores = float(self._nominal_cap[:, 0].sum())
        horizon = float(sim.traces.horizon())
        schedule = self.schedule(sim.config.n_servers, horizon)

        heap: list[tuple[float, int, int, float]] = []
        if vm_entries is None:
            ends = sim.vm_end.tolist()
            starts = sim.vm_start.tolist()
            for i in range(len(sim.traces)):
                heap.append((float(ends[i]), _END, i, 0.0))
                heap.append((float(starts[i]), _START, i, 0.0))
        else:
            heap.extend(vm_entries)
        for ev in schedule:
            if ev.action == "revoke":
                heap.append((ev.time, _REVOKE, ev.server, 0.0))
            elif ev.action == "arrive":
                heap.append((ev.time, _ARRIVAL, ev.server, 0.0))
            else:
                heap.append((ev.time, _DIP_START, ev.server, ev.scale))
                heap.append((ev.time + ev.duration, _DIP_END, ev.server, 0.0))
        self._check_dip_overlap(schedule)
        heapq.heapify(heap)
        self._heap = heap
        self._peak = 0.0

    def step(self, sim, until: float | None = None) -> bool:
        """Process events with ``t < until`` (all of them when None).

        Returns True when the stream is exhausted.  Every event key
        ``(t, kind, key)`` in the heap is unique, so pops follow a strict
        total order regardless of the heap's internal layout — which is
        what lets a snapshot store the remaining entries as a sorted list
        and re-heapify on restore without changing replay order.  Dynamic
        pushes (requeues, evacuation ticks, deadlines) never schedule
        before the current event, so stopping at ``until`` processes
        exactly the events an uninterrupted run would have processed
        before that boundary.
        """
        heap = self._heap
        if heap is None:
            raise SimulationError("injector.step() before start()")
        peak = self._peak
        while heap and (until is None or heap[0][0] < until):
            t, kind, key, aux = heapq.heappop(heap)
            if kind == _END:
                sim._handle_end(t, key)
            elif kind == _START:
                sim._handle_start(t, key)
                if sim._committed_cores > peak:
                    peak = sim._committed_cores
            elif kind == _REVOKE:
                self._revoke(sim, t, key, heap)
            elif kind == _DIP_START:
                self._dip_start(sim, t, key, aux)
            elif kind == _DIP_END:
                self._dip_end(sim, t, key)
            elif kind == _ARRIVAL:
                self._arrive(sim, t, key)
            elif kind == _EVAC:
                self._evac_tick(sim, t, key, heap)
            elif kind == _DEADLINE:
                self._deadline(sim, t, key)
            else:
                self._requeue(sim, t, key)
                if sim._committed_cores > peak:
                    peak = sim._committed_cores
            self._after_event(sim, t, kind, key)
        self._peak = peak
        return not heap

    # -- snapshot/restore ---------------------------------------------------------

    def state_snapshot(self) -> dict:
        """Copy of the injector's mutable mid-replay state (plus the heap).

        Everything a resumed replay needs to continue bit-identically:
        accruals and counts, revocation/dip/drain/requeue bookkeeping, the
        nominal-capacity matrix, and the remaining event heap stored as a
        sorted list (safe: pop order only depends on the entry *set*, see
        :meth:`step`).  The constructor identity (``spec`` + topology)
        rides along so a restore can tell a pure resume from a what-if
        fork into a different failure regime.
        """
        if self._heap is None:
            raise SimulationError("injector has not driven a replay yet")
        return {
            "spec": copy.deepcopy(self.spec),
            "topology": copy.deepcopy(self.topology),
            "revoked": sorted(self._revoked),
            "dip_active": dict(self._dip_active),
            "requeue_pending": dict(self._requeue_pending),
            "draining": dict(self._draining),
            "drain_queue": {s: list(q) for s, q in self._drain_queue.items()},
            "nominal_cap": self._nominal_cap.copy(),
            "initial_cores": self._initial_cores,
            "counts": dict(self.counts),
            "downtime_intervals": self.downtime_intervals,
            "absorbed_core_intervals": self.absorbed_core_intervals,
            "lost_core_intervals": self.lost_core_intervals,
            "arrived_nominal_cores": self.arrived_nominal_cores,
            "heap": tuple(sorted(self._heap)),
            "peak": self._peak,
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate a :meth:`state_snapshot` for a verbatim resume.

        Only valid when this injector drives the *same* failure stream the
        snapshot was taken under (same spec, seed, and topology) — the
        caller (:mod:`repro.simulator.snapshot`) checks that; a different
        spec must rebuild via :meth:`start` instead.
        """
        self._revoked = set(state["revoked"])
        self._dip_active = dict(state["dip_active"])
        self._requeue_pending = dict(state["requeue_pending"])
        self._draining = dict(state["draining"])
        self._drain_queue = {s: list(q) for s, q in state["drain_queue"].items()}
        self._nominal_cap = state["nominal_cap"].copy()
        self._initial_cores = state["initial_cores"]
        self.counts = dict(state["counts"])
        self.downtime_intervals = state["downtime_intervals"]
        self.absorbed_core_intervals = state["absorbed_core_intervals"]
        self.lost_core_intervals = state["lost_core_intervals"]
        self.arrived_nominal_cores = state["arrived_nominal_cores"]
        heap = [tuple(entry) for entry in state["heap"]]
        heapq.heapify(heap)
        self._heap = heap
        self._peak = state["peak"]

    @staticmethod
    def state_is_pristine(state: dict) -> bool:
        """True when the snapshot saw no failure activity before its boundary.

        A pristine prefix (no revocations, dips, arrivals, drains, or
        requeues processed; all accruals zero) is shared by *every* failure
        regime, so it may be forked into a different spec; a contaminated
        prefix may only be resumed under the spec that produced it.
        """
        return (
            not state["revoked"]
            and not state["dip_active"]
            and not state["requeue_pending"]
            and not state["draining"]
            and not state["drain_queue"]
            and all(v == 0 for v in state["counts"].values())
            and state["downtime_intervals"] == 0.0
            and state["absorbed_core_intervals"] == 0.0
            and state["lost_core_intervals"] == 0.0
            and state["arrived_nominal_cores"] == 0.0
        )

    @staticmethod
    def _check_dip_overlap(schedule) -> None:
        """Reject schedules with overlapping dips on one server.

        ``_dip_active`` holds a single scale per server, so an overlap
        would silently end early when the first dip's end restores full
        capacity.  The stock random models never overlap by construction;
        an explicit ``trace-schedule`` can, and must fail loudly instead
        of mis-simulating.
        """
        windows: dict[int, list[tuple[float, float]]] = {}
        for ev in schedule:
            if ev.action == "dip":
                windows.setdefault(ev.server, []).append((ev.time, ev.time + ev.duration))
        for server, spans in windows.items():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                if b_start < a_end - 1e-9:
                    raise SimulationError(
                        f"overlapping capacity dips on server {server} "
                        f"(next dip starts at {b_start} before the previous "
                        f"ends at {a_end}); merge or separate them"
                    )

    def _place_tracked(self, sim, t: float, vm: int) -> bool:
        """``sim._place`` with preemption-cascade loss accounting.

        Under the preemption baseline, placing an evacuated/requeued
        on-demand VM may preempt deflatable residents on the destination
        server.  That collateral work is lost *to the failure*, so it is
        tallied exactly like the dip path's evictions.
        """
        log: list[int] = []
        sim._preempt_log = log
        try:
            placed = sim._place(t, vm)
        finally:
            sim._preempt_log = None
        for victim in log:
            self.counts["cascade_preemptions"] += 1
            self._accrue(
                "lost_core_intervals",
                max(0.0, float(sim.vm_end[victim]) - t) * float(sim.vm_caps[victim, 0]),
            )
        return placed

    # -- revocations -------------------------------------------------------------

    def _ordered_residents(self, sim, server: int) -> list[int]:
        """Evacuation order: on-demand residents first, then deflatable.

        On-demand VMs cannot be deflated into a tight destination, so they
        get first pick of the surviving capacity.
        """
        residents = list(sim.residents[server])
        return [v for v in residents if not sim.vm_deflatable[v]] + [
            v for v in residents if sim.vm_deflatable[v]
        ]

    def _revoke(self, sim, t: float, server: int, heap: list) -> None:
        if server in self._revoked or server in self._draining:
            return
        if self.warning_intervals is not None and self.response == "evacuate":
            # Warned revocation: the server drains — no new placements,
            # budgeted evacuation ticks, stragglers killed at the deadline.
            deadline = t + self.warning_intervals
            self._draining[server] = deadline
            self._drain_queue[server] = self._ordered_residents(sim, server)
            self.counts["revocations"] += 1
            sim._mark_draining(server)
            for c in sim._collectors:
                c.on_revocation(t, server, sim)
            heapq.heappush(heap, (t, _EVAC, server, 0.0))
            heapq.heappush(heap, (deadline, _DEADLINE, server, 0.0))
            return
        self._revoked.add(server)
        self.counts["revocations"] += 1
        self._dip_active.pop(server, None)
        sim._mark_revoked(server)
        for c in sim._collectors:
            c.on_revocation(t, server, sim)
        for vm in self._ordered_residents(sim, server):
            if self.response == "evacuate":
                self._evacuate(sim, t, vm, server)
            else:
                self._kill(sim, t, vm, server, heap)

    def _evacuate(self, sim, t: float, vm: int, server: int) -> None:
        sim._detach(vm, server)
        sim.vm_server[vm] = -1
        remaining = max(0.0, float(sim.vm_end[vm]) - t)
        cores = float(sim.vm_caps[vm, 0])
        if self._place_tracked(sim, t, vm):
            self.counts["evacuated"] += 1
            self._accrue("absorbed_core_intervals", remaining * cores)
        else:
            self.counts["evacuation_lost"] += 1
            self._accrue("lost_core_intervals", remaining * cores)
            self._mark_lost(sim, t, vm, server)

    def _kill(self, sim, t: float, vm: int, server: int, heap: list) -> None:
        sim._detach(vm, server)
        sim.vm_server[vm] = -1
        self._mark_lost(sim, t, vm, server)
        self.counts["killed"] += 1
        end = float(sim.vm_end[vm])
        if self.restart_delay is not None and t + self.restart_delay < end:
            self._requeue_pending[vm] = t
            heapq.heappush(heap, (t + self.restart_delay, _REQUEUE, vm, 0.0))
        else:
            self._accrue("lost_core_intervals", max(0.0, end - t) * float(sim.vm_caps[vm, 0]))

    def _requeue(self, sim, t: float, vm: int) -> None:
        kill_t = self._requeue_pending.pop(vm)
        cores = float(sim.vm_caps[vm, 0])
        end = float(sim.vm_end[vm])
        if self._place_tracked(sim, t, vm):
            out = sim.outcomes[vm]
            out.preempted = False
            out.end_interval = end
            if sim.vm_deflatable[vm]:
                sim.vm_preempted[vm] = False
            else:
                self.counts["on_demand_lost"] -= 1  # it came back after all
            self.counts["recovered"] += 1
            self._accrue("downtime_intervals", t - kill_t)
            self._accrue("absorbed_core_intervals", (end - t) * cores)
            self._accrue("lost_core_intervals", (t - kill_t) * cores)
        else:
            self.counts["requeue_lost"] += 1
            self._accrue("lost_core_intervals", (end - kill_t) * cores)

    def _mark_lost(self, sim, t: float, vm: int, server: int) -> None:
        """Terminate a VM the way a preemption does (flags + history).

        The ``vm_preempted`` array feeds ``n_preempted`` and therefore the
        Figure 20 ``failure_probability``, which is defined over
        *deflatable* VMs — so only deflatable victims raise it.  On-demand
        victims keep their ``VMOutcome.preempted`` flag (which ends their
        replay) and are tallied in :meth:`summary` as ``on_demand_lost``.
        """
        out = sim.outcomes[vm]
        out.preempted = True
        out.end_interval = t
        if sim.vm_deflatable[vm]:
            sim.vm_preempted[vm] = True
            sim._append_history_one(vm, t, 0.0)
            sim._last_frac[vm] = 0.0
        else:
            self.counts["on_demand_lost"] += 1
        for c in sim._collectors:
            c.on_preempt(t, vm, server, sim)

    # -- warning-time drains -------------------------------------------------------

    def _evac_tick(self, sim, t: float, server: int, heap: list) -> None:
        """One budgeted evacuation round off a draining server.

        Walks the pending queue in evacuation order, migrating VMs through
        the normal placement path until the per-tick budget is spent.  VMs
        that ended naturally drop out; VMs with no feasible destination
        (or beyond the budget) stay queued for the next tick.  A VM larger
        than a cores budget still moves as a tick's first migration, so a
        drain always makes progress when the cluster has room.
        """
        if server in self._revoked:
            return
        pending = self._drain_queue.get(server)
        if not pending:
            return
        moved_vms = 0
        moved_cores = 0.0
        still_pending: list[int] = []
        for vm in pending:
            if vm not in sim.residents[server]:
                continue  # ended naturally during the drain
            cores = float(sim.vm_caps[vm, 0])
            over_vms = self._budget_vms is not None and moved_vms >= self._budget_vms
            over_cores = (
                self._budget_cores is not None
                and moved_vms > 0
                and moved_cores + cores > self._budget_cores + 1e-9
            )
            if over_vms or over_cores:
                still_pending.append(vm)
                continue
            if self._evacuate_draining(sim, t, vm, server):
                moved_vms += 1
                moved_cores += cores
            else:
                still_pending.append(vm)
        self._drain_queue[server] = still_pending
        if still_pending and t + 1.0 < self._draining[server] - 1e-9:
            heapq.heappush(heap, (t + 1.0, _EVAC, server, 0.0))

    def _evacuate_draining(self, sim, t: float, vm: int, server: int) -> bool:
        """Migrate one VM off a draining server; False leaves it in place.

        Unlike the instant-evacuation path, failure here is not loss — the
        source server is still running, so the VM simply stays resident
        and the caller retries at the next tick (the deadline is what
        finally kills stragglers).
        """
        sim._detach(vm, server)
        sim.vm_server[vm] = -1
        if self._place_tracked(sim, t, vm):
            self.counts["evacuated"] += 1
            self._accrue(
                "absorbed_core_intervals",
                max(0.0, float(sim.vm_end[vm]) - t) * float(sim.vm_caps[vm, 0]),
            )
            if sim._policy is not None and sim.resident_deflatable[server]:
                # The departure relieved pressure on the source: reinflate
                # the residents still waiting their turn.
                sim._rebalance(t, server)
            return True
        sim._reattach(vm, server)
        sim.vm_server[vm] = server
        return False

    def _deadline(self, sim, t: float, server: int) -> None:
        """The warning window closed: kill stragglers, revoke for real."""
        if server in self._revoked:
            return
        pending = self._drain_queue.pop(server, [])
        del self._draining[server]
        self._revoked.add(server)
        self._dip_active.pop(server, None)
        sim._end_draining(server)
        sim._mark_revoked(server)
        for vm in pending:
            if vm not in sim.residents[server]:
                continue
            sim._detach(vm, server)
            sim.vm_server[vm] = -1
            self.counts["deadline_killed"] += 1
            self._accrue(
                "lost_core_intervals",
                max(0.0, float(sim.vm_end[vm]) - t) * float(sim.vm_caps[vm, 0]),
            )
            self._mark_lost(sim, t, vm, server)
        for c in sim._collectors:
            c.on_evacuation_deadline(t, server, sim)

    # -- server arrivals -----------------------------------------------------------

    def _arrive(self, sim, t: float, server: int) -> None:
        """Attach one arriving server (elastic transient capacity)."""
        sim._attach_server(server)
        row = sim.server_cap[server]
        self._nominal_cap = np.vstack([self._nominal_cap, row[None, :]])
        self.counts["server_arrivals"] += 1
        self._accrue("arrived_nominal_cores", float(row[0]))
        for c in sim._collectors:
            c.on_server_arrival(t, server, sim)

    # -- capacity dips -----------------------------------------------------------

    def _dip_start(self, sim, t: float, server: int, scale: float) -> None:
        if server in self._revoked:
            return
        self._dip_active[server] = scale
        self.counts["capacity_dips"] += 1
        sim.server_cap[server] = self._nominal_cap[server] * scale
        sim._cap_eps[server] = sim.server_cap[server] + 1e-9
        for c in sim._collectors:
            c.on_capacity_dip(t, server, scale, sim)
        self._absorb_pressure(sim, t, server)

    def _dip_end(self, sim, t: float, server: int) -> None:
        if server in self._revoked or server not in self._dip_active:
            return
        del self._dip_active[server]
        sim.server_cap[server] = self._nominal_cap[server]
        sim._cap_eps[server] = sim.server_cap[server] + 1e-9
        for c in sim._collectors:
            c.on_capacity_dip(t, server, 1.0, sim)
        if sim._policy is not None and sim.resident_deflatable[server]:
            # Reinflate: with the pressure gone the rebalance returns every
            # resident to full allocation.
            sim._rebalance(t, server)

    def _absorb_pressure(self, sim, t: float, server: int) -> None:
        """Fit the server's residents into its (reduced) capacity."""
        if sim._policy is not None:
            if sim.resident_deflatable[server]:
                sim._rebalance(t, server)
            if (sim.committed[server] - sim.reclaimed[server] > sim._cap_eps[server]).any():
                self.counts["capacity_overruns"] += 1
            return
        # Preemption baseline: no deflation headroom, so evict the lowest
        # priority deflatable residents until the remainder fits.
        prio = sim._vm_prio_list
        while (sim.committed[server] > sim._cap_eps[server]).any():
            defl = sim.resident_deflatable[server]
            if not defl:
                self.counts["capacity_overruns"] += 1
                break
            victim = min(defl, key=lambda v: (prio[v], v))
            sim._preempt(t, victim)
            self._accrue(
                "lost_core_intervals",
                max(0.0, float(sim.vm_end[victim]) - t) * float(sim.vm_caps[victim, 0]),
            )
