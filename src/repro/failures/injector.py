"""Failure injection: driving revocations and capacity dips through the replay.

The :class:`FailureInjector` owns the failure side of a simulation run.  It
expands a :class:`~repro.failures.models.FailureModel` schedule against the
resolved cluster, merges it with the VM trace's start/end events, and runs
the combined stream through the simulator's unmodified event handlers —
the event loop itself stays the deterministic heart of the system, failures
are just more events.

Semantics, per event kind (ties at one interval are processed in this
order — VM departures, VM arrivals, revocations, dip ends, dip starts,
requeued restarts):

* **revocation** — the server's capacity drops to zero and it never comes
  back; every VM it hosted is handled according to ``response``:

  - ``"evacuate"`` (deflation-first): each resident is re-placed through
    the normal admission/scoring path, deflating the destination's
    residents as needed — the paper's thesis applied to transience:
    deflation *absorbs* the revocation.  On-demand residents are placed
    first (they cannot be deflated into a tight spot), then deflatable
    ones.  Residents that no surviving server can take are lost.
  - ``"kill"`` (kill-and-requeue): every resident is killed on the spot —
    the classic preemption experience — and re-queued to restart
    ``restart_delay`` intervals later through normal admission.  The gap
    between kill and successful restart is recorded as downtime; VMs whose
    restart is rejected (or whose lifetime ends first) are lost.

* **capacity dip** — the server's capacity is scaled by the event's
  ``scale`` for its duration.  Under a deflation policy the standard
  rebalance squeezes residents into the reduced capacity (and reinflates
  them when the dip ends); under the preemption baseline the lowest
  priority deflatable residents are evicted until the remainder fits.

Lost and absorbed work are tallied in core-intervals (VM cores x trace
intervals; one interval is 5 minutes of VM-seconds per core) so "how much
work did deflation save" is directly comparable across VM sizes.  The
tallies are event-level: a VM revoked twice contributes at each event.

The injector is attached by the engine when a scenario carries a
``failures`` spec (:meth:`Scenario.with_failures`); a simulator without an
injector runs the original array-sorted loop untouched, which is what keeps
failure-free scenarios bit-identical to the pinned reference.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import SimulationError
from repro.failures.models import FailureModel
from repro.registry import create

#: Event kinds, ordered by processing priority within one interval.  END and
#: START mirror the simulator's own sort keys (kinds 0 and 1).  Dip *ends*
#: sort before dip *starts* so back-to-back dips (one ending exactly when
#: the next begins) hand over cleanly instead of the ending dip cancelling
#: the just-started one.
_END, _START, _REVOKE, _DIP_END, _DIP_START, _REQUEUE = range(6)

#: ``response`` modes for revocations.
RESPONSES = ("evacuate", "kill")

#: Keys of a scenario ``failures`` spec consumed by the injector itself;
#: everything else is passed to the failure model's constructor.
INJECTOR_KEYS = ("model", "seed", "response", "restart_delay")


class FailureInjector:
    """Drives one failure schedule through one simulator replay.

    Parameters
    ----------
    model:
        The schedule generator (a registered ``failure`` component).
    seed:
        Seed for the schedule's RNG.  The same ``(model spec, seed)`` on the
        same cluster always yields the same schedule, so failure-injected
        runs stay deterministic across processes and cache layers.
    response:
        ``"evacuate"`` for deflation-first migration off revoked servers,
        ``"kill"`` for kill-and-requeue (see the module docstring).
    restart_delay:
        Intervals between a kill and the requeued restart attempt
        (``response="kill"`` only).  ``None`` disables requeueing: killed
        VMs are simply lost.
    """

    def __init__(
        self,
        model: FailureModel,
        seed: int = 0,
        response: str = "evacuate",
        restart_delay: float | None = 1.0,
    ) -> None:
        if response not in RESPONSES:
            raise SimulationError(f"response must be one of {RESPONSES}, got {response!r}")
        if restart_delay is not None and restart_delay < 0:
            raise SimulationError("restart_delay must be >= 0 intervals")
        self.model = model
        self.seed = int(seed)
        self.response = response
        self.restart_delay = restart_delay
        self._reset()

    @classmethod
    def from_spec(cls, spec: dict) -> "FailureInjector":
        """Build an injector from a scenario's ``failures`` dict.

        The spec mixes injector knobs (``seed``, ``response``,
        ``restart_delay``) with model parameters; everything that is not an
        injector key is forwarded to the registered model's constructor, so
        ``{"model": "spot", "rate": 0.002, "seed": 7}`` builds
        ``SpotRevocations(rate=0.002)`` driven with seed 7.
        """
        params = dict(spec)
        try:
            name = params.pop("model")
        except KeyError:
            raise SimulationError('failure spec needs a "model" key') from None
        seed = params.pop("seed", 0)
        response = params.pop("response", "evacuate")
        restart_delay = params.pop("restart_delay", 1.0)
        model = create("failure", name, **params)
        return cls(model, seed=seed, response=response, restart_delay=restart_delay)

    # -- per-run state -----------------------------------------------------------

    def _reset(self) -> None:
        self._revoked: set[int] = set()
        self._dip_active: dict[int, float] = {}
        self._requeue_pending: dict[int, float] = {}  # vm -> kill time
        self._nominal_cap: np.ndarray | None = None
        self.counts = {
            "revocations": 0,
            "capacity_dips": 0,
            "evacuated": 0,
            "evacuation_lost": 0,
            "killed": 0,
            "recovered": 0,
            "requeue_lost": 0,
            "on_demand_lost": 0,
            "cascade_preemptions": 0,
            "capacity_overruns": 0,
        }
        self.downtime_intervals = 0.0
        self.absorbed_core_intervals = 0.0
        self.lost_core_intervals = 0.0

    def _accrue(self, metric: str, value: float) -> None:
        """Add one term to a float summary metric (``downtime_intervals``,
        ``absorbed_core_intervals``, ``lost_core_intervals``).

        Every accrual flows through here so the arithmetic stays a single
        left-to-right accumulation; the sharded engine's recording injector
        overrides this to log each term, letting the shard merger replay
        the terms in global event order and reproduce the flat run's float
        accumulation bit for bit.
        """
        setattr(self, metric, getattr(self, metric) + value)

    def _after_event(self, sim, t: float, kind: int, key: int) -> None:
        """Hook called after each merged-stream event is processed.

        ``key`` is the VM index (END/START/REQUEUE) or the server index
        (REVOKE/DIP_START/DIP_END).  The base injector does nothing; the
        sharded engine's recording subclass snapshots committed cores and
        the terms accrued during the event.
        """

    def nominal_total_cores(self) -> float:
        """Provisioned CPU capacity before any failure mutated it."""
        if self._nominal_cap is None:
            raise SimulationError("injector has not driven a replay yet")
        return float(self._nominal_cap[:, 0].sum())

    def summary(self) -> dict:
        """Plain-scalar failure metrics, stored under ``collected``.

        All values are JSON-serializable, so failure-injected results ride
        through the on-disk :class:`~repro.scenario.cache.SweepCache`
        unchanged.
        """
        return {
            **self.counts,
            "servers_revoked": len(self._revoked),
            "downtime_intervals": self.downtime_intervals,
            "absorbed_core_intervals": self.absorbed_core_intervals,
            "lost_core_intervals": self.lost_core_intervals,
        }

    # -- the merged event loop ---------------------------------------------------

    def drive(self, sim) -> float:
        """Run the full replay (VM events + failures); returns peak cores.

        Called by :meth:`ClusterSimulator.run` when an injector is
        attached; uses the simulator's own ``_handle_start`` /
        ``_handle_end`` so placement, deflation, and metrics behave exactly
        as in the failure-free loop.
        """
        self._reset()
        self._nominal_cap = sim.server_cap.copy()
        n = len(sim.traces)
        horizon = float(sim.traces.horizon())
        rng = np.random.default_rng(self.seed)
        schedule = self.model.events(sim.config.n_servers, horizon, rng)

        ends = sim.vm_end.tolist()
        starts = sim.vm_start.tolist()
        heap: list[tuple[float, int, int, float]] = []
        for i in range(n):
            heap.append((float(ends[i]), _END, i, 0.0))
            heap.append((float(starts[i]), _START, i, 0.0))
        for ev in schedule:
            if ev.server >= sim.config.n_servers:
                raise SimulationError(
                    f"failure model {self.model.name!r} scheduled server "
                    f"{ev.server} on a {sim.config.n_servers}-server cluster"
                )
            if ev.action == "revoke":
                heap.append((ev.time, _REVOKE, ev.server, 0.0))
            else:
                heap.append((ev.time, _DIP_START, ev.server, ev.scale))
                heap.append((ev.time + ev.duration, _DIP_END, ev.server, 0.0))
        self._check_dip_overlap(schedule)
        heapq.heapify(heap)

        peak = 0.0
        while heap:
            t, kind, key, aux = heapq.heappop(heap)
            if kind == _END:
                sim._handle_end(t, key)
            elif kind == _START:
                sim._handle_start(t, key)
                if sim._committed_cores > peak:
                    peak = sim._committed_cores
            elif kind == _REVOKE:
                self._revoke(sim, t, key, heap)
            elif kind == _DIP_START:
                self._dip_start(sim, t, key, aux)
            elif kind == _DIP_END:
                self._dip_end(sim, t, key)
            else:
                self._requeue(sim, t, key)
                if sim._committed_cores > peak:
                    peak = sim._committed_cores
            self._after_event(sim, t, kind, key)
        return peak

    @staticmethod
    def _check_dip_overlap(schedule) -> None:
        """Reject schedules with overlapping dips on one server.

        ``_dip_active`` holds a single scale per server, so an overlap
        would silently end early when the first dip's end restores full
        capacity.  The stock random models never overlap by construction;
        an explicit ``trace-schedule`` can, and must fail loudly instead
        of mis-simulating.
        """
        windows: dict[int, list[tuple[float, float]]] = {}
        for ev in schedule:
            if ev.action == "dip":
                windows.setdefault(ev.server, []).append((ev.time, ev.time + ev.duration))
        for server, spans in windows.items():
            spans.sort()
            for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
                if b_start < a_end - 1e-9:
                    raise SimulationError(
                        f"overlapping capacity dips on server {server} "
                        f"(next dip starts at {b_start} before the previous "
                        f"ends at {a_end}); merge or separate them"
                    )

    def _place_tracked(self, sim, t: float, vm: int) -> bool:
        """``sim._place`` with preemption-cascade loss accounting.

        Under the preemption baseline, placing an evacuated/requeued
        on-demand VM may preempt deflatable residents on the destination
        server.  That collateral work is lost *to the failure*, so it is
        tallied exactly like the dip path's evictions.
        """
        log: list[int] = []
        sim._preempt_log = log
        try:
            placed = sim._place(t, vm)
        finally:
            sim._preempt_log = None
        for victim in log:
            self.counts["cascade_preemptions"] += 1
            self._accrue(
                "lost_core_intervals",
                max(0.0, float(sim.vm_end[victim]) - t) * float(sim.vm_caps[victim, 0]),
            )
        return placed

    # -- revocations -------------------------------------------------------------

    def _revoke(self, sim, t: float, server: int, heap: list) -> None:
        if server in self._revoked:
            return
        self._revoked.add(server)
        self.counts["revocations"] += 1
        self._dip_active.pop(server, None)
        sim._mark_revoked(server)
        for c in sim._collectors:
            c.on_revocation(t, server, sim)
        # On-demand residents first: they cannot be deflated into a tight
        # destination, so they get first pick of the surviving capacity.
        residents = list(sim.residents[server])
        ordered = [v for v in residents if not sim.vm_deflatable[v]] + [
            v for v in residents if sim.vm_deflatable[v]
        ]
        for vm in ordered:
            if self.response == "evacuate":
                self._evacuate(sim, t, vm, server)
            else:
                self._kill(sim, t, vm, server, heap)

    def _evacuate(self, sim, t: float, vm: int, server: int) -> None:
        sim._detach(vm, server)
        sim.vm_server[vm] = -1
        remaining = max(0.0, float(sim.vm_end[vm]) - t)
        cores = float(sim.vm_caps[vm, 0])
        if self._place_tracked(sim, t, vm):
            self.counts["evacuated"] += 1
            self._accrue("absorbed_core_intervals", remaining * cores)
        else:
            self.counts["evacuation_lost"] += 1
            self._accrue("lost_core_intervals", remaining * cores)
            self._mark_lost(sim, t, vm, server)

    def _kill(self, sim, t: float, vm: int, server: int, heap: list) -> None:
        sim._detach(vm, server)
        sim.vm_server[vm] = -1
        self._mark_lost(sim, t, vm, server)
        self.counts["killed"] += 1
        end = float(sim.vm_end[vm])
        if self.restart_delay is not None and t + self.restart_delay < end:
            self._requeue_pending[vm] = t
            heapq.heappush(heap, (t + self.restart_delay, _REQUEUE, vm, 0.0))
        else:
            self._accrue("lost_core_intervals", max(0.0, end - t) * float(sim.vm_caps[vm, 0]))

    def _requeue(self, sim, t: float, vm: int) -> None:
        kill_t = self._requeue_pending.pop(vm)
        cores = float(sim.vm_caps[vm, 0])
        end = float(sim.vm_end[vm])
        if self._place_tracked(sim, t, vm):
            out = sim.outcomes[vm]
            out.preempted = False
            out.end_interval = end
            if sim.vm_deflatable[vm]:
                sim.vm_preempted[vm] = False
            else:
                self.counts["on_demand_lost"] -= 1  # it came back after all
            self.counts["recovered"] += 1
            self._accrue("downtime_intervals", t - kill_t)
            self._accrue("absorbed_core_intervals", (end - t) * cores)
            self._accrue("lost_core_intervals", (t - kill_t) * cores)
        else:
            self.counts["requeue_lost"] += 1
            self._accrue("lost_core_intervals", (end - kill_t) * cores)

    def _mark_lost(self, sim, t: float, vm: int, server: int) -> None:
        """Terminate a VM the way a preemption does (flags + history).

        The ``vm_preempted`` array feeds ``n_preempted`` and therefore the
        Figure 20 ``failure_probability``, which is defined over
        *deflatable* VMs — so only deflatable victims raise it.  On-demand
        victims keep their ``VMOutcome.preempted`` flag (which ends their
        replay) and are tallied in :meth:`summary` as ``on_demand_lost``.
        """
        out = sim.outcomes[vm]
        out.preempted = True
        out.end_interval = t
        if sim.vm_deflatable[vm]:
            sim.vm_preempted[vm] = True
            sim._append_history_one(vm, t, 0.0)
            sim._last_frac[vm] = 0.0
        else:
            self.counts["on_demand_lost"] += 1
        for c in sim._collectors:
            c.on_preempt(t, vm, server, sim)

    # -- capacity dips -----------------------------------------------------------

    def _dip_start(self, sim, t: float, server: int, scale: float) -> None:
        if server in self._revoked:
            return
        self._dip_active[server] = scale
        self.counts["capacity_dips"] += 1
        sim.server_cap[server] = self._nominal_cap[server] * scale
        sim._cap_eps[server] = sim.server_cap[server] + 1e-9
        for c in sim._collectors:
            c.on_capacity_dip(t, server, scale, sim)
        self._absorb_pressure(sim, t, server)

    def _dip_end(self, sim, t: float, server: int) -> None:
        if server in self._revoked or server not in self._dip_active:
            return
        del self._dip_active[server]
        sim.server_cap[server] = self._nominal_cap[server]
        sim._cap_eps[server] = sim.server_cap[server] + 1e-9
        for c in sim._collectors:
            c.on_capacity_dip(t, server, 1.0, sim)
        if sim._policy is not None and sim.resident_deflatable[server]:
            # Reinflate: with the pressure gone the rebalance returns every
            # resident to full allocation.
            sim._rebalance(t, server)

    def _absorb_pressure(self, sim, t: float, server: int) -> None:
        """Fit the server's residents into its (reduced) capacity."""
        if sim._policy is not None:
            if sim.resident_deflatable[server]:
                sim._rebalance(t, server)
            if (sim.committed[server] - sim.reclaimed[server] > sim._cap_eps[server]).any():
                self.counts["capacity_overruns"] += 1
            return
        # Preemption baseline: no deflation headroom, so evict the lowest
        # priority deflatable residents until the remainder fits.
        prio = sim._vm_prio_list
        while (sim.committed[server] > sim._cap_eps[server]).any():
            defl = sim.resident_deflatable[server]
            if not defl:
                self.counts["capacity_overruns"] += 1
                break
            victim = min(defl, key=lambda v: (prio[v], v))
            sim._preempt(t, victim)
            self._accrue(
                "lost_core_intervals",
                max(0.0, float(sim.vm_end[victim]) - t) * float(sim.vm_caps[victim, 0]),
            )
