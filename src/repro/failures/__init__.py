"""Transient-failure injection: server churn as pluggable components.

The subsystem has two halves:

* :mod:`repro.failures.models` — :class:`FailureModel` schedule generators
  registered under the ``failure`` registry kind (``spot``,
  ``correlated-spot``, ``exponential-lifetimes``, ``weibull-lifetimes``,
  ``preemption-windows``, ``capacity-dips``, ``elastic-pool``,
  ``trace-schedule``);
* :mod:`repro.failures.injector` — the :class:`FailureInjector` that merges
  a schedule into the cluster simulator's event loop and implements the
  revocation responses (deflation-first evacuation — instant, or rationed
  by warning-time evacuation budgets — vs. kill-and-requeue), plus server
  arrivals for elastic pools.

Scenarios opt in declaratively::

    Scenario().with_workload("azure", n_vms=500)\\
              .with_policy("proportional")\\
              .with_topology(racks=8)\\
              .with_failures("correlated-spot", rate=0.002, seed=7,
                             warning_intervals=3, evacuation_budget=2)

See ``docs/failures.md`` for the full tour.
"""

from repro.failures.injector import RESPONSES, FailureInjector
from repro.failures.models import (
    ACTIONS,
    FailureEvent,
    FailureModel,
    check_topology,
    rack_split,
    resolve_topology,
)

__all__ = [
    "ACTIONS",
    "RESPONSES",
    "FailureEvent",
    "FailureInjector",
    "FailureModel",
    "check_topology",
    "rack_split",
    "resolve_topology",
]
