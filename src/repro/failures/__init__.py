"""Transient-failure injection: revocations and capacity dips as components.

The subsystem has two halves:

* :mod:`repro.failures.models` — :class:`FailureModel` schedule generators
  registered under the ``failure`` registry kind (``spot``,
  ``exponential-lifetimes``, ``weibull-lifetimes``, ``preemption-windows``,
  ``capacity-dips``, ``trace-schedule``);
* :mod:`repro.failures.injector` — the :class:`FailureInjector` that merges
  a schedule into the cluster simulator's event loop and implements the
  revocation responses (deflation-first evacuation vs. kill-and-requeue).

Scenarios opt in declaratively::

    Scenario().with_workload("azure", n_vms=500)\\
              .with_policy("proportional")\\
              .with_failures("spot", rate=0.002, seed=7, response="evacuate")

See ``docs/failures.md`` for the full tour.
"""

from repro.failures.injector import RESPONSES, FailureInjector
from repro.failures.models import ACTIONS, FailureEvent, FailureModel

__all__ = [
    "ACTIONS",
    "RESPONSES",
    "FailureEvent",
    "FailureInjector",
    "FailureModel",
]
