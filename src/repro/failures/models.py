"""Transient-server failure models (registry kind ``failure``).

The paper's premise is that deflation lets interactive applications run on
*transient* servers — capacity that the provider can revoke or shrink with
little or no warning (spot/preemptible VMs, harvested capacity).  A
:class:`FailureModel` turns that premise into a concrete, reproducible
schedule of :class:`FailureEvent`\\ s — server **revocations** (the server
leaves for the rest of the replay) and **capacity dips** (the server
temporarily shrinks, e.g. the harvested share is clawed back) — which the
:class:`~repro.failures.injector.FailureInjector` drives through the
cluster simulator's event loop.

Models are pure schedule generators: given the cluster size, the replay
horizon, and a seeded :class:`numpy.random.Generator`, they return a list
of events.  All randomness flows through that generator, so a schedule is a
deterministic function of ``(model spec, seed, n_servers, horizon)`` —
which is what makes failure-injected sweeps cacheable and bit-identical
between serial and parallel execution.

Registered models:

* ``spot`` — spot-market style: a cluster-level revocation process with a
  per-server hazard rate, mirroring the fixed-warning reclamations of
  portfolio-driven transient capacity (Sharma et al.).  The fixed warning
  maps onto the injector's ``response`` knob: ``"evacuate"`` assumes the
  warning suffices for deflation-first migration, ``"kill"`` models
  zero-warning providers.
* ``exponential-lifetimes`` / ``weibull-lifetimes`` — per-server lifetime
  draws; exponential is the memoryless special case (Weibull shape 1).
* ``preemption-windows`` — temporally-constrained preemptions à la
  Kadupitiya et al.: revocations can only strike inside recurring windows
  (e.g. the provider reclaims capacity during business hours).
* ``correlated-spot`` — topology-aware spot revocations: servers belong to
  racks/zones (from the scenario's ``topology`` or the model's own
  ``racks`` split) and a hazard event revokes a whole blast-radius group
  at once, the way real reclamations arrive in rack/zone-correlated
  bursts.  With singleton groups it degenerates to ``spot`` exactly
  (bit-identical schedules from the same seed).
* ``capacity-dips`` — per-server Poisson arrivals of temporary capacity
  reductions with exponential durations.
* ``elastic-pool`` — churn: spot-style revocations *plus* a Poisson
  process of server **arrivals**, so transient capacity flows back in;
  arrived servers are themselves transient and can be revoked later.
* ``trace-schedule`` — an explicit, fully declarative event list (the
  escape hatch for replaying measured revocation traces).

Plugging in a new model is one decorator::

    from repro.failures import FailureEvent, FailureModel
    from repro.registry import register

    @register("failure", "lunar")
    class LunarOutages(FailureModel):
        name = "lunar"
        def __init__(self, period: float = 708.7):
            self.period = period
        def events(self, n_servers, horizon, rng):
            times = np.arange(self.period, horizon, self.period)
            return [FailureEvent(time=float(t), action="revoke",
                                 server=int(rng.integers(n_servers)))
                    for t in times]

after which ``Scenario().with_failures("lunar", period=300)`` is valid.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.registry import register

#: Actions a failure event can carry.
ACTIONS = ("revoke", "dip", "arrive")


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled infrastructure event.

    ``action`` is ``"revoke"`` (the server leaves permanently at ``time``),
    ``"dip"`` (its capacity is scaled by ``scale`` for ``duration``
    intervals, then restored), or ``"arrive"`` (a *new* server joins the
    cluster at ``time``; arrival indices must be contiguous —
    ``n_servers``, ``n_servers + 1``, ... in time order).  Times are trace
    intervals, matching the VM trace clock.
    """

    time: float
    action: str
    server: int
    scale: float = 1.0  # remaining capacity fraction during a dip
    duration: float = 0.0  # dip length in intervals (ignored otherwise)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise SimulationError(f"unknown failure action {self.action!r}; valid: {ACTIONS}")
        if self.time < 0:
            raise SimulationError("failure time must be >= 0")
        if self.server < 0:
            raise SimulationError("server index must be >= 0")
        if self.action == "dip":
            # A dip must leave some capacity: a full outage is a revocation
            # (zero-capacity servers would poison placement scoring).
            if not (0.0 < self.scale < 1.0):
                raise SimulationError("dip scale must be in (0, 1)")
            if self.duration <= 0:
                raise SimulationError("dip duration must be > 0 intervals")


def check_topology(spec: dict) -> dict:
    """Validate a scenario ``topology`` spec's shape (cluster-size-agnostic).

    Two declarative forms: ``{"racks": R}`` splits the cluster contiguously
    into ``R`` near-equal blast-radius groups, ``{"groups": [[0, 1], [2],
    ...]}`` lists explicit server groups (servers not listed form singleton
    groups).  Full index-range validation happens at resolve time, when the
    cluster size is known.
    """
    if not isinstance(spec, dict):
        raise SimulationError("topology spec must be a dict")
    unknown = sorted(set(spec) - {"racks", "groups"})
    if unknown:
        raise SimulationError(f"unknown topology keys {unknown}; valid: ['groups', 'racks']")
    if ("racks" in spec) == ("groups" in spec):
        raise SimulationError('topology spec needs exactly one of "racks" or "groups"')
    if "racks" in spec:
        if int(spec["racks"]) < 1:
            raise SimulationError("topology racks must be >= 1")
    else:
        seen: set[int] = set()
        for group in spec["groups"]:
            for s in group:
                s = int(s)
                if s < 0:
                    raise SimulationError("topology server indices must be >= 0")
                if s in seen:
                    raise SimulationError(f"server {s} appears in more than one topology group")
                seen.add(s)
    return spec


def rack_split(n_servers: int, racks: int) -> np.ndarray:
    """Contiguous near-equal rack assignment: per-server group ids.

    Group sizes differ by at most one; with ``racks >= n_servers`` every
    server is its own group (blast radius 1).
    """
    if racks < 1:
        raise SimulationError("topology racks must be >= 1")
    return (np.arange(n_servers) * racks) // n_servers


def resolve_topology(spec: dict | None, n_servers: int) -> np.ndarray | None:
    """Per-server group-id array for a ``topology`` spec (None passes through)."""
    if spec is None:
        return None
    check_topology(spec)
    if "racks" in spec:
        return rack_split(n_servers, int(spec["racks"]))
    ids = np.arange(n_servers)  # default: every server its own group
    next_id = n_servers
    for group in spec["groups"]:
        for s in group:
            if int(s) >= n_servers:
                raise SimulationError(
                    f"topology group lists server {int(s)} but the cluster "
                    f"has only {n_servers} servers"
                )
            ids[int(s)] = next_id
        next_id += 1
    return ids


class FailureModel(abc.ABC):
    """Generates a deterministic failure schedule for one replay.

    Subclasses register under kind ``failure`` and must draw all randomness
    from the ``rng`` argument (never module-level state), so the schedule
    is reproducible from the scenario's failure spec alone.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def events(
        self, n_servers: int, horizon: float, rng: np.random.Generator
    ) -> list[FailureEvent]:
        """The failure schedule for a cluster of ``n_servers`` over ``horizon``.

        Events may be returned in any order; the injector sorts them
        deterministically before the replay.
        """

    def events_with_topology(
        self,
        n_servers: int,
        horizon: float,
        rng: np.random.Generator,
        group_ids: np.ndarray | None,
    ) -> list[FailureEvent]:
        """Schedule generation with the scenario's resolved topology.

        ``group_ids`` is the per-server blast-radius group array from the
        scenario's ``topology`` field (None when the scenario declares
        none).  The injector always calls this entry point; the default
        ignores the topology and delegates to :meth:`events`, so existing
        models are untouched.  Topology-aware models override it.
        """
        return self.events(n_servers, horizon, rng)


def _check_fraction(fraction: float) -> float:
    """Validate a transient-fleet share at model construction time."""
    if not (0.0 < fraction <= 1.0):
        raise SimulationError("fraction must be in (0, 1]")
    return fraction


def _transient_servers(
    n_servers: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """The subset of servers eligible for failures (sorted indices).

    ``fraction`` models a mixed fleet: only that share of the cluster is
    transient capacity; the rest is reliable on-demand hardware.  The subset
    is drawn from ``rng``, so it is part of the reproducible schedule.
    """
    k = max(1, int(round(fraction * n_servers)))
    if k >= n_servers:
        return np.arange(n_servers)
    return np.sort(rng.permutation(n_servers)[:k])


@register("failure", "spot")
class SpotRevocations(FailureModel):
    """Spot-market revocations: a memoryless per-server hazard.

    Each surviving transient server is revoked at cluster-level rate
    ``rate`` per server-interval (so the expected number of revocations in
    one interval is ``rate * surviving_servers``).  This is the classic
    spot/preemptible model used by portfolio-driven transient-capacity
    work: revocations arrive with a *fixed warning*, which in this
    reproduction maps to the injector's ``response="evacuate"`` mode (the
    warning is assumed long enough for deflation-first migration);
    ``response="kill"`` models zero-warning reclamation.
    """

    name = "spot"

    def __init__(self, rate: float = 0.001, fraction: float = 1.0) -> None:
        if rate <= 0:
            raise SimulationError("rate must be > 0 revocations per server-interval")
        self.rate = rate
        self.fraction = _check_fraction(fraction)

    def events(self, n_servers, horizon, rng):
        transient = list(_transient_servers(n_servers, self.fraction, rng))
        out: list[FailureEvent] = []
        t = 0.0
        while transient:
            gap = rng.exponential(1.0 / (self.rate * len(transient)))
            t += gap
            if t >= horizon:
                break
            victim = transient.pop(int(rng.integers(len(transient))))
            out.append(FailureEvent(time=float(t), action="revoke", server=int(victim)))
        return out


@register("failure", "correlated-spot")
class CorrelatedSpotRevocations(FailureModel):
    """Topology-aware spot revocations: whole blast-radius groups at once.

    Real spot/harvest reclamations are not independent per server — a rack
    decommission or a zone-level capacity clawback takes out a correlated
    group in one burst.  Hazard events arrive at cluster-level rate
    ``rate`` per surviving *group*-interval and each revokes an entire
    surviving group (all its servers at the same instant), so with
    near-equal groups the *expected revoked-server volume matches*
    ``spot`` at the same ``rate`` — burstiness is the only thing that
    changes, which is what makes the correlated-vs-independent frontier
    comparison meaningful.

    Groups come from the scenario's ``topology`` field when present
    (:meth:`Scenario.with_topology`), else from the model's own ``racks``
    parameter (contiguous near-equal split).  With blast radius 1 (racks
    >= servers, or singleton topology groups) the rng draw sequence is
    identical to ``spot``'s, so the schedule — and therefore the whole
    replay — reproduces ``spot`` bit for bit.
    """

    name = "correlated-spot"

    def __init__(self, rate: float = 0.001, fraction: float = 1.0, racks: int = 8) -> None:
        if rate <= 0:
            raise SimulationError("rate must be > 0 revocations per server-interval")
        if racks < 1:
            raise SimulationError("racks must be >= 1")
        self.rate = rate
        self.fraction = _check_fraction(fraction)
        self.racks = int(racks)

    def events(self, n_servers, horizon, rng):
        return self.events_with_topology(n_servers, horizon, rng, None)

    def events_with_topology(self, n_servers, horizon, rng, group_ids):
        transient = _transient_servers(n_servers, self.fraction, rng)
        if group_ids is None:
            group_ids = rack_split(n_servers, self.racks)
        # Surviving groups, restricted to their transient members, ordered
        # by ascending group id (== ascending lowest member, matching the
        # order spot walks its transient list in the singleton case).
        groups: list[list[int]] = []
        by_id: dict[int, list[int]] = {}
        for s in transient.tolist():
            gid = int(group_ids[s])
            if gid not in by_id:
                by_id[gid] = []
                groups.append(by_id[gid])
            by_id[gid].append(s)
        out: list[FailureEvent] = []
        t = 0.0
        while groups:
            # Group-level hazard: one event per rate * surviving-groups,
            # revoking a whole group — the per-*server* revocation volume
            # therefore matches spot's in expectation (and the draw
            # sequence matches it exactly when every group is a singleton).
            t += rng.exponential(1.0 / (self.rate * len(groups)))
            if t >= horizon:
                break
            victims = groups.pop(int(rng.integers(len(groups))))
            out.extend(
                FailureEvent(time=float(t), action="revoke", server=int(s))
                for s in victims
            )
        return out


@register("failure", "elastic-pool")
class ElasticPool(FailureModel):
    """Churning transient pool: spot revocations plus server arrivals.

    Revocations follow the ``spot`` hazard (rate ``rate`` per surviving
    transient server-interval); independently, fresh transient servers
    arrive as a Poisson process at ``arrival_rate`` servers per interval
    (capped at ``max_arrivals`` when given).  Arrived servers take the
    next contiguous indices (``n_servers``, ``n_servers + 1``, ...), join
    the revocable population immediately, and can themselves be revoked
    later — so capacity flows both ways, the defining property of elastic
    transient pools.

    The interleaving is exact: the revocation hazard is memoryless, so
    whenever an arrival lands before the next drawn revocation the gap is
    simply re-drawn from the (larger) population at the arrival instant.
    """

    name = "elastic-pool"

    def __init__(
        self,
        rate: float = 0.001,
        arrival_rate: float = 0.01,
        fraction: float = 1.0,
        max_arrivals: int | None = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError("rate must be > 0 revocations per server-interval")
        if arrival_rate <= 0:
            raise SimulationError("arrival_rate must be > 0 servers per interval")
        if max_arrivals is not None and max_arrivals < 0:
            raise SimulationError("max_arrivals must be >= 0")
        self.rate = rate
        self.arrival_rate = arrival_rate
        self.fraction = _check_fraction(fraction)
        self.max_arrivals = max_arrivals

    def events(self, n_servers, horizon, rng):
        # Arrival times first (one exponential stream), then the revocation
        # hazard over the piecewise-constant alive population.
        arrival_times: list[float] = []
        t = 0.0
        while self.max_arrivals is None or len(arrival_times) < self.max_arrivals:
            t += rng.exponential(1.0 / self.arrival_rate)
            if t >= horizon:
                break
            arrival_times.append(float(t))
        out = [
            FailureEvent(time=ta, action="arrive", server=int(n_servers + j))
            for j, ta in enumerate(arrival_times)
        ]
        alive = _transient_servers(n_servers, self.fraction, rng).tolist()
        t = 0.0
        next_arrival = 0
        while True:
            if not alive:
                if next_arrival >= len(arrival_times):
                    break
                t = arrival_times[next_arrival]
                alive.append(n_servers + next_arrival)
                next_arrival += 1
                continue
            gap = rng.exponential(1.0 / (self.rate * len(alive)))
            if next_arrival < len(arrival_times) and t + gap >= arrival_times[next_arrival]:
                # An arrival lands first: grow the population and re-draw
                # from the arrival instant (memoryless hazard).
                t = arrival_times[next_arrival]
                alive.append(n_servers + next_arrival)
                next_arrival += 1
                continue
            t += gap
            if t >= horizon:
                break
            victim = alive.pop(int(rng.integers(len(alive))))
            out.append(FailureEvent(time=float(t), action="revoke", server=int(victim)))
        return out


@register("failure", "weibull-lifetimes")
@register("failure", "exponential-lifetimes", shape=1.0)
class WeibullLifetimes(FailureModel):
    """Per-server lifetimes drawn from a Weibull distribution.

    ``mean_lifetime`` fixes the distribution mean (in intervals); ``shape``
    controls the hazard trajectory — ``shape < 1`` is infant-mortality
    (revocations cluster early), ``shape = 1`` is the memoryless
    exponential (registered separately as ``exponential-lifetimes``), and
    ``shape > 1`` is wear-out (revocations cluster late).  Servers whose
    drawn lifetime exceeds the replay horizon simply survive.
    """

    name = "weibull-lifetimes"

    def __init__(
        self,
        mean_lifetime: float = 288.0,
        shape: float = 1.5,
        fraction: float = 1.0,
    ) -> None:
        if mean_lifetime <= 0:
            raise SimulationError("mean_lifetime must be > 0 intervals")
        if shape <= 0:
            raise SimulationError("shape must be > 0")
        self.mean_lifetime = mean_lifetime
        self.shape = shape
        self.fraction = _check_fraction(fraction)
        #: Weibull scale chosen so the mean comes out at ``mean_lifetime``.
        self._scale = mean_lifetime / math.gamma(1.0 + 1.0 / shape)

    def events(self, n_servers, horizon, rng):
        transient = _transient_servers(n_servers, self.fraction, rng)
        lifetimes = self._scale * rng.weibull(self.shape, size=transient.size)
        return [
            FailureEvent(time=float(t), action="revoke", server=int(s))
            for s, t in zip(transient.tolist(), lifetimes.tolist())
            if t < horizon
        ]


@register("failure", "preemption-windows")
class PreemptionWindows(FailureModel):
    """Temporally-constrained preemption (Kadupitiya et al.).

    Revocations can only strike inside recurring windows: intervals ``t``
    with ``offset <= t mod period < offset + width``.  Within a window each
    surviving transient server is revoked independently with per-interval
    probability ``rate``.  With the default day-length period this models a
    provider that reclaims transient capacity during business hours and
    leaves it alone overnight.
    """

    name = "preemption-windows"

    def __init__(
        self,
        rate: float = 0.002,
        period: float = 288.0,
        offset: float = 96.0,
        width: float = 96.0,
        fraction: float = 1.0,
    ) -> None:
        if rate <= 0 or rate > 1:
            raise SimulationError("rate must be a per-interval probability in (0, 1]")
        if period <= 0 or width <= 0 or width > period:
            raise SimulationError("need 0 < width <= period")
        if not (0.0 <= offset < period):
            raise SimulationError("offset must be in [0, period)")
        self.rate = rate
        self.period = period
        self.offset = offset
        self.width = width
        self.fraction = _check_fraction(fraction)

    def _window_times(self, horizon: float) -> np.ndarray:
        times = np.arange(int(math.ceil(horizon)), dtype=np.float64)
        phase = np.mod(times - self.offset, self.period)
        return times[phase < self.width]

    def events(self, n_servers, horizon, rng):
        transient = _transient_servers(n_servers, self.fraction, rng)
        window_times = self._window_times(horizon)
        out: list[FailureEvent] = []
        if window_times.size == 0:
            return out
        for s in transient.tolist():
            hits = rng.random(window_times.size) < self.rate
            idx = int(np.argmax(hits))
            if hits[idx]:
                out.append(
                    FailureEvent(
                        time=float(window_times[idx]), action="revoke", server=int(s)
                    )
                )
        return out


@register("failure", "capacity-dips")
class CapacityDips(FailureModel):
    """Transient capacity reductions (harvest clawbacks, co-tenant surges).

    Each transient server sees a Poisson process (rate ``rate`` per
    interval) of dips; a dip scales the server to ``1 - depth`` of its
    nominal capacity for an exponentially-distributed duration with mean
    ``mean_duration`` intervals.  Dips on one server never overlap: the
    next inter-arrival gap starts after the previous dip ends.
    """

    name = "capacity-dips"

    def __init__(
        self,
        rate: float = 0.002,
        depth: float = 0.5,
        mean_duration: float = 12.0,
        fraction: float = 1.0,
    ) -> None:
        if rate <= 0:
            raise SimulationError("rate must be > 0 dips per server-interval")
        if not (0.0 < depth < 1.0):
            raise SimulationError("depth must be in (0, 1); model a full outage as a revocation")
        if mean_duration <= 0:
            raise SimulationError("mean_duration must be > 0 intervals")
        self.rate = rate
        self.depth = depth
        self.mean_duration = mean_duration
        self.fraction = _check_fraction(fraction)

    def events(self, n_servers, horizon, rng):
        transient = _transient_servers(n_servers, self.fraction, rng)
        scale = 1.0 - self.depth
        out: list[FailureEvent] = []
        for s in transient.tolist():
            t = 0.0
            while True:
                t += rng.exponential(1.0 / self.rate)
                if t >= horizon:
                    break
                duration = max(1.0, rng.exponential(self.mean_duration))
                duration = min(duration, horizon - t)
                if duration > 0:
                    out.append(
                        FailureEvent(
                            time=float(t),
                            action="dip",
                            server=int(s),
                            scale=scale,
                            duration=float(duration),
                        )
                    )
                t += duration
        return out


@register("failure", "trace-schedule")
class TraceSchedule(FailureModel):
    """Explicit, fully declarative failure schedule.

    ``events`` is a list of plain dicts — ``{"t": 10, "action": "revoke",
    "server": 3}``, ``{"t": 20, "action": "dip", "server": 1,
    "scale": 0.5, "duration": 12}``, or ``{"t": 30, "action": "arrive",
    "server": 8}`` — so measured churn traces can be replayed verbatim and
    the whole schedule rides inside the scenario's ``failures`` dict (and
    therefore inside sweep-cache keys).  Arrivals must use the next
    contiguous indices past the cluster (the injector validates); any
    other event whose server index falls outside the cluster plus its
    arrivals is rejected loudly.
    """

    name = "trace-schedule"

    def __init__(self, events: list | tuple = ()) -> None:
        parsed = []
        for spec in events:
            spec = dict(spec)
            try:
                time = float(spec.pop("t"))
                action = str(spec.pop("action"))
                server = int(spec.pop("server"))
            except KeyError as missing:
                raise SimulationError(
                    f"trace-schedule events need 't', 'action' and 'server'; missing {missing}"
                ) from None
            scale = float(spec.pop("scale", 1.0)) if action == "dip" else 1.0
            duration = float(spec.pop("duration", 1.0)) if action == "dip" else 0.0
            if spec:
                raise SimulationError(f"unknown trace-schedule event keys {sorted(spec)}")
            parsed.append(
                FailureEvent(
                    time=time, action=action, server=server, scale=scale, duration=duration
                )
            )
        self._events = tuple(parsed)

    def events(self, n_servers, horizon, rng):
        n_total = n_servers + sum(1 for ev in self._events if ev.action == "arrive")
        for ev in self._events:
            if ev.action != "arrive" and ev.server >= n_total:
                raise SimulationError(
                    f"trace-schedule targets server {ev.server} but the cluster "
                    f"has only {n_servers} servers"
                    + (f" plus {n_total - n_servers} arrivals" if n_total > n_servers else "")
                )
        return [ev for ev in self._events if ev.time < horizon]
