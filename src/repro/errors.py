"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ResourceError(ReproError):
    """Invalid resource arithmetic (negative capacity, dimension mismatch)."""


class DeflationError(ReproError):
    """A deflation request could not be satisfied.

    Raised when a policy is asked to reclaim more than the deflatable pool can
    yield, or when a mechanism is driven outside its safe operating range.
    """


class PlacementError(ReproError):
    """No server can host a VM, even after maximal deflation."""


class AdmissionRejected(PlacementError):
    """The cluster manager rejected the VM at admission control."""


class HotplugError(ReproError):
    """A hotplug/unplug operation failed outright (vs. partial completion)."""


class DomainStateError(ReproError):
    """An operation was attempted on a domain in an incompatible state."""


class RegistryError(ReproError):
    """Invalid component-registry operation (duplicate name, bad kind)."""


class UnknownComponentError(RegistryError):
    """A component name was not found in the registry.

    The message always lists the valid choices for the requested kind so
    typos are self-diagnosing.
    """


class SimulationError(ReproError):
    """Internal inconsistency detected by the discrete-event simulator."""


class TraceError(ReproError):
    """Malformed or inconsistent trace data."""


class SweepError(SimulationError):
    """A supervised sweep had tasks fail after exhausting their retries.

    ``failures`` carries the failed task outcomes (structured
    :class:`repro.runtime.TaskOutcome` records: scenario index, failure
    kind, error type/message, attempt count), so callers catching the
    error can still see exactly what broke without re-parsing messages.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)
