"""Unified component registry for every pluggable piece of the system.

The simulation pipeline is assembled from named components — deflation
policies, placement strategies and scorers, admission controllers, pricing
models, metrics collectors, workload sources, experiments, engines.  This
module is the single discovery point for all of them, replacing the four
ad-hoc per-module dictionaries (``POLICIES``, ``STRATEGIES``,
``PRICING_MODELS``, ``EXPERIMENTS``) the repo grew organically.  Those names
still exist as thin :class:`RegistryView` shims, so legacy call sites keep
working while new components become visible to every consumer at once.

Two registration modes:

* ``@register(kind, name, **defaults)`` — registers a *factory* (a class or
  callable).  :func:`create` builds a fresh instance per call;
  :func:`resolve` builds one shared singleton lazily.  ``defaults`` are
  keyword arguments bound at registration, so one class can back several
  named variants (e.g. ``priority`` / ``priority-eq3``).
* ``@register_value(kind, name)`` — registers the object itself (used for
  experiment ``run`` functions, which must not be called at lookup time).

Conventions:

* kinds are lower-case singular nouns (``policy``, ``scorer``, ``pricing``);
* names are lower-case, dash-separated, and stable — they appear in
  ``Scenario`` dicts, CLIs, and result tables;
* registering a duplicate name raises :class:`RegistryError` unless
  ``replace=True`` is passed (explicit overriding is how downstream code
  swaps a stock component for its own).

The module depends only on :mod:`repro.errors`, so any module can register
components without import cycles.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RegistryError, UnknownComponentError


@dataclass
class _Entry:
    """One registered component."""

    kind: str
    name: str
    obj: Any
    defaults: dict[str, Any]
    is_factory: bool
    singleton: Any = None
    has_singleton: bool = field(default=False)

    def build(self, **kwargs: Any) -> Any:
        if not self.is_factory:
            if kwargs:
                raise RegistryError(
                    f"{self.kind}:{self.name} is registered as a value, "
                    f"not a factory; it takes no construction arguments"
                )
            return self.obj
        merged = {**self.defaults, **kwargs}
        return self.obj(**merged)

    def shared(self) -> Any:
        if not self.is_factory:
            return self.obj
        if not self.has_singleton:
            self.singleton = self.obj(**self.defaults)
            self.has_singleton = True
        return self.singleton


_REGISTRY: dict[str, dict[str, _Entry]] = {}


def _lookup(kind: str, name: str) -> _Entry:
    entries = _REGISTRY.get(kind)
    if not entries:
        raise UnknownComponentError(
            f"unknown component kind {kind!r}; registered kinds: {kinds()}"
        )
    try:
        return entries[name]
    except KeyError:
        raise UnknownComponentError(
            f"unknown {kind} {name!r}; available: {names(kind)}"
        ) from None


def _add(entry: _Entry, replace: bool) -> None:
    entries = _REGISTRY.setdefault(entry.kind, {})
    if entry.name in entries and not replace:
        raise RegistryError(
            f"{entry.kind} {entry.name!r} is already registered; "
            f"pass replace=True to override"
        )
    entries[entry.name] = entry


def register(
    kind: str, name: str | None = None, *, replace: bool = False, **defaults: Any
) -> Callable[[Any], Any]:
    """Decorator registering a factory (class or callable) under ``kind``.

    ``name`` defaults to the factory's ``name`` attribute, falling back to
    its ``__name__``.  ``defaults`` are bound construction kwargs.
    """

    def deco(obj: Any) -> Any:
        resolved = name
        if resolved is None:
            resolved = getattr(obj, "name", None)
            if not isinstance(resolved, str) or not resolved or resolved == "abstract":
                resolved = obj.__name__
        _add(
            _Entry(kind=kind, name=resolved, obj=obj, defaults=dict(defaults), is_factory=True),
            replace,
        )
        return obj

    return deco


def register_value(kind: str, name: str, *, replace: bool = False) -> Callable[[Any], Any]:
    """Decorator registering an object as-is (no construction on lookup)."""

    def deco(obj: Any) -> Any:
        _add(_Entry(kind=kind, name=name, obj=obj, defaults={}, is_factory=False), replace)
        return obj

    return deco


def register_instance(kind: str, name: str, obj: Any, *, replace: bool = False) -> Any:
    """Imperative form of :func:`register_value` for pre-built instances."""
    _add(_Entry(kind=kind, name=name, obj=obj, defaults={}, is_factory=False), replace)
    return obj


def create(kind: str, name: str, **kwargs: Any) -> Any:
    """Construct a fresh component instance by name."""
    return _lookup(kind, name).build(**kwargs)


def resolve(kind: str, name: str) -> Any:
    """Return the shared singleton for a component (built lazily)."""
    return _lookup(kind, name).shared()


def names(kind: str) -> list[str]:
    """Sorted names registered under one kind."""
    return sorted(_REGISTRY.get(kind, ()))


def kinds() -> list[str]:
    """Sorted list of all registered kinds."""
    return sorted(k for k, entries in _REGISTRY.items() if entries)


def is_registered(kind: str, name: str) -> bool:
    return name in _REGISTRY.get(kind, ())


def unregister(kind: str, name: str) -> None:
    """Remove one component (primarily for tests cleaning up after plugins)."""
    try:
        del _REGISTRY[kind][name]
    except KeyError:
        raise UnknownComponentError(
            f"unknown {kind} {name!r}; available: {names(kind)}"
        ) from None


def validate(kind: str, name: str) -> str:
    """Check a name is registered, returning it; raise a listing error if not."""
    _lookup(kind, name)
    return name


class RegistryView(Mapping):
    """Live read-only mapping ``name -> shared instance`` for one kind.

    The legacy per-module dictionaries (``POLICIES`` and friends) are
    instances of this class, so components registered later — including by
    downstream plugins — appear in them automatically.
    """

    __slots__ = ("_kind",)

    def __init__(self, kind: str) -> None:
        self._kind = kind

    @property
    def kind(self) -> str:
        return self._kind

    def __getitem__(self, name: str) -> Any:
        try:
            return resolve(self._kind, name)
        except UnknownComponentError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(names(self._kind))

    def __len__(self) -> int:
        return len(names(self._kind))

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and is_registered(self._kind, name)

    def __repr__(self) -> str:
        return f"RegistryView({self._kind!r}: {names(self._kind)})"
