"""repro — reproduction of "Cloud-scale VM Deflation for Running Interactive
Applications On Transient Servers" (Fuerst, Ali-Eldin, Shenoy, Sharma;
HPDC 2020).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: deflation policies
  (Eqs. 1–4, deterministic), deflation-aware placement, the VM model, and
  the slack/linear/knee performance model.
* :mod:`repro.hypervisor` — simulated KVM/libvirt/cgroups substrate with
  transparent, explicit (hotplug) and hybrid deflation mechanisms.
* :mod:`repro.cluster` — the centralized cluster manager and per-server
  integration.
* :mod:`repro.simulator` — trace-driven discrete-event cluster simulation
  (failure probability, throughput loss, revenue).
* :mod:`repro.traces` — Azure-like and Alibaba-like trace synthesizers.
* :mod:`repro.feasibility` — the Section 3 deflation-feasibility analysis.
* :mod:`repro.queueing` / :mod:`repro.microsim` — processor-sharing and
  service-graph simulators behind the application studies.
* :mod:`repro.apps` — Wikipedia, social-network, SpecJBB, Memcached and
  kernel-compile harnesses.
* :mod:`repro.loadbalancer` — vanilla and deflation-aware weighted
  round-robin load balancing.
* :mod:`repro.pricing` — static, priority and allocation-based pricing.
* :mod:`repro.experiments` — one module per paper figure plus a CLI runner.
* :mod:`repro.registry` — unified component registry; every pluggable piece
  (policy, scorer, admission controller, pricing model, workload source,
  experiment, engine) is discoverable and overridable by name.
* :mod:`repro.scenario` — the declarative ``Scenario -> Engine -> ResultSet``
  pipeline with parallel sweeps; the preferred front door for simulations.
"""

from repro.core import (
    DeflationPolicy,
    DeterministicPolicy,
    LocalDeflationController,
    PerfProfile,
    PriorityPolicy,
    ProportionalPolicy,
    ResourceVector,
    VMAllocation,
    VMClass,
    VMSpec,
    get_policy,
    on_demand_spec,
)
from repro.scenario import (
    ResultSet,
    Scenario,
    ScenarioResult,
    run_scenario,
    run_sweep,
)

__version__ = "1.1.0"

__all__ = [
    "ResultSet",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "run_sweep",
    "DeflationPolicy",
    "DeterministicPolicy",
    "LocalDeflationController",
    "PerfProfile",
    "PriorityPolicy",
    "ProportionalPolicy",
    "ResourceVector",
    "VMAllocation",
    "VMClass",
    "VMSpec",
    "get_policy",
    "on_demand_spec",
    "__version__",
]
