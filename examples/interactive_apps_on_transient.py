"""The paper's headline story: interactive apps survive on transient servers.

Run with::

    python examples/interactive_apps_on_transient.py

Simulates the two interactive applications from the paper's evaluation —
the multi-tier Wikipedia replica and the 30-microservice social network —
at increasing deflation, showing that both absorb ~50% resource reclamation
with negligible user-visible impact (which preemption could never offer).
"""

from repro.apps import (
    WikipediaConfig,
    run_deflation_point,
    run_socialnet_point,
)


def wikipedia_story() -> None:
    print("=== Wikipedia (multi-tier, 30 cores, 800 req/s) ===")
    cfg = WikipediaConfig(duration_s=10.0)
    base = run_deflation_point(cfg, 0, seed=4)
    print(f"  undeflated: mean {base.mean_rt:.2f}s, p99 {base.percentiles[99]:.1f}s")
    for pct in (50, 70, 90):
        p = run_deflation_point(cfg, pct, seed=4)
        print(f"  deflated {pct}% ({p.cores:.0f} cores): mean {p.mean_rt:.2f}s "
              f"({p.mean_rt / base.mean_rt:.1f}x), served {100 * p.served_fraction:.1f}%")
    print("  -> even a 50-70% CPU reclamation is invisible to users;")
    print("     a preemption would have been a full outage.")


def socialnet_story() -> None:
    print("\n=== social network (30 microservices, 500 req/s) ===")
    base = run_socialnet_point(0, duration_s=10.0, seed=4)
    print(f"  undeflated: median {base.median_ms:.1f}ms, p99 {base.p99_ms:.0f}ms")
    for pct in (30, 50, 65):
        p = run_socialnet_point(pct, duration_s=10.0, seed=4)
        print(f"  deflated {pct}%: median {p.median_ms:.1f}ms, p99 {p.p99_ms:.0f}ms "
              f"(bottleneck rho {p.bottleneck_rho:.2f})")
    print("  -> microservices tolerate 50%; past the knee the fan-out")
    print("     amplifies queueing, so policies should stop short of it.")


if __name__ == "__main__":
    wikipedia_story()
    socialnet_story()
