"""Deflation-aware load balancing, end to end (paper Section 7.3).

Run with::

    python examples/deflation_aware_lb.py

Two parts:

1. the *notification path*: a live
   :class:`~repro.core.controller.LocalDeflationController` hosts web-server
   VMs; a :class:`~repro.loadbalancer.DeflationAwareBalancer` subscribes to
   its deflation events (Figure 1's hypervisor -> load-balancer channel) and
   its weights follow allocations automatically;
2. the *performance payoff*: the Figure 19 comparison of vanilla vs.
   deflation-aware weighting on a simulated 3-replica web cluster.
"""

from repro import ResourceVector, VMSpec, get_policy, on_demand_spec
from repro.core import LocalDeflationController
from repro.loadbalancer import DeflationAwareBalancer, WebClusterConfig, run_lb_sweep


def notification_demo() -> None:
    print("=== live deflation notifications drive LB weights ===")
    capacity = ResourceVector(cpu=32, memory_mb=64 * 1024, disk_mbps=2000, net_mbps=10_000)
    controller = LocalDeflationController(capacity, get_policy("proportional"))

    balancer = DeflationAwareBalancer({"web-a": 10.0, "web-b": 10.0})
    controller.subscribe(balancer.on_deflation)

    a = VMSpec(capacity=ResourceVector(10, 16384, 200, 500), priority=0.5)
    b = VMSpec(capacity=ResourceVector(10, 16384, 200, 500), priority=0.5)
    controller.place(a)
    controller.place(b)
    balancer.map_vm(a.vm_id, "web-a")
    balancer.map_vm(b.vm_id, "web-b")
    print(f"weights before pressure: {balancer.weights}")

    # On-demand arrival forces deflation; the balancer learns instantly.
    od = on_demand_spec(ResourceVector(20, 32768, 200, 500))
    controller.place(od)
    print(f"weights after deflation: "
          f"{ {k: round(v, 2) for k, v in balancer.weights.items()} }")
    picks = balancer.pick_many(10)
    print(f"next 10 picks: {picks}")

    controller.remove(od.vm_id)
    print(f"weights after reinflation: {balancer.weights}")


def fig19_demo() -> None:
    print("\n=== Figure 19: tail latency, vanilla vs deflation-aware ===")
    cfg = WebClusterConfig(duration_s=20.0)
    sweep = run_lb_sweep(cfg, levels_pct=(0, 40, 60, 80), seed=3)
    vanilla = {p.deflation_pct: p for p in sweep["vanilla"]}
    aware = {p.deflation_pct: p for p in sweep["deflation-aware"]}
    print("  defl%   vanilla p90    aware p90    improvement")
    for pct in sorted(vanilla):
        v, a = vanilla[pct], aware[pct]
        imp = 100 * (v.p90_rt - a.p90_rt) / v.p90_rt if v.p90_rt else 0.0
        print(f"  {pct:>4}   {v.p90_rt:>9.2f}s   {a.p90_rt:>9.2f}s   {imp:>9.0f}%")


if __name__ == "__main__":
    notification_demo()
    fig19_demo()
