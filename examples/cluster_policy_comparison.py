"""Compare cluster deflation policies against the preemption status quo.

Run with::

    python examples/cluster_policy_comparison.py

Declares one (policy x overcommitment) grid of :class:`repro.Scenario`
objects, executes it with ``run_sweep`` (pass ``--workers N`` to fan out
over processes — results are bit-identical to the serial path), and prints
the three cluster-level metrics the paper evaluates: failure probability
(Fig 20), throughput loss (Fig 21), and revenue (Fig 22).
"""

import argparse

from repro.scenario import Scenario, run_sweep

POLICIES = ("proportional", "priority", "deterministic", "preemption")
LEVELS = (0.0, 0.2, 0.4, 0.6)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None, help="parallel sweep processes")
    args = parser.parse_args()

    base = Scenario(name="policy-comparison").with_workload("azure", n_vms=600, seed=8)
    grid = [
        base.with_policy(policy).with_overcommitment(oc)
        for policy in POLICIES
        for oc in LEVELS
    ]
    results = run_sweep(grid, workers=args.workers)

    print(f"ran {len(results)} scenarios ({len(POLICIES)} policies x {len(LEVELS)} OC levels)")

    header = "  OC%   " + "".join(f"{p:>15}" for p in POLICIES)
    print("\nfailure probability (deflatable VMs):")
    print(header)
    for oc in LEVELS:
        row = f"  {100 * oc:<5.0f}"
        for p in POLICIES:
            (r,) = results.filter(policy=p, overcommitment=oc)
            row += f"{100 * r.failure_probability:>14.2f}%"
        print(row)

    print("\nthroughput loss (deflatable VMs):")
    print(header)
    for oc in LEVELS:
        row = f"  {100 * oc:<5.0f}"
        for p in POLICIES:
            (r,) = results.filter(policy=p, overcommitment=oc)
            row += f"{100 * r.throughput_loss:>14.2f}%"
        print(row)

    print("\nrevenue-per-server increase vs static@OC=0 (priority deflation):")
    priority_series = results.filter(policy="priority")
    (base_point,) = priority_series.filter(overcommitment=LEVELS[0])
    base_rev = base_point.revenue_per_server["static"]
    for pricing in ("static", "priority", "allocation"):
        cells = "  ".join(
            f"{100 * r.scenario.overcommitment:.0f}%:"
            f"{100 * (r.revenue_per_server[pricing] / base_rev - 1.0):+.0f}%"
            for r in priority_series
        )
        print(f"  {pricing:>11}: {cells}")

    print("\ntakeaway: deflation (any policy) nearly eliminates failures that")
    print("preemption suffers, at single-digit throughput cost; priorities cut")
    print("that cost by an order of magnitude and double revenue.")


if __name__ == "__main__":
    main()
