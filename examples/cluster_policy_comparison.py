"""Compare cluster deflation policies against the preemption status quo.

Run with::

    python examples/cluster_policy_comparison.py

Replays one synthetic Azure-style trace at increasing overcommitment under
all three deflation policies plus the preemption baseline, and prints the
three cluster-level metrics the paper evaluates: failure probability
(Fig 20), throughput loss (Fig 21), and revenue (Fig 22).
"""

from repro.simulator import overcommitment_sweep
from repro.traces import AzureTraceConfig, synthesize_azure_trace

POLICIES = ("proportional", "priority", "deterministic", "preemption")
LEVELS = (0.0, 0.2, 0.4, 0.6)


def main() -> None:
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=600, seed=8))
    print(f"trace: {len(traces)} VMs, horizon {traces.horizon()} five-minute intervals")
    sweep = overcommitment_sweep(traces, levels=LEVELS, policies=POLICIES)

    print("\nfailure probability (deflatable VMs):")
    header = "  OC%   " + "".join(f"{p:>15}" for p in POLICIES)
    print(header)
    for i, oc in enumerate(LEVELS):
        row = f"  {100 * oc:<5.0f}"
        for p in POLICIES:
            row += f"{100 * sweep.points[p][i].result.failure_probability:>14.2f}%"
        print(row)

    print("\nthroughput loss (deflatable VMs):")
    print(header)
    for i, oc in enumerate(LEVELS):
        row = f"  {100 * oc:<5.0f}"
        for p in POLICIES:
            row += f"{100 * sweep.points[p][i].result.throughput_loss:>14.2f}%"
        print(row)

    print("\nrevenue-per-server increase vs static@OC=0 (priority deflation):")
    for pricing in ("static", "priority", "allocation"):
        series = sweep.revenue_increase("priority", pricing)
        cells = "  ".join(f"{oc:.0f}%:{v:+.0f}%" for oc, v in series)
        print(f"  {pricing:>11}: {cells}")

    print("\ntakeaway: deflation (any policy) nearly eliminates failures that")
    print("preemption suffers, at single-digit throughput cost; priorities cut")
    print("that cost by an order of magnitude and double revenue.")


if __name__ == "__main__":
    main()
