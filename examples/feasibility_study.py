"""Feasibility study: how much can cloud VMs be deflated? (Paper Section 3.)

Run with::

    python examples/feasibility_study.py

Synthesizes Azure-style VM traces and Alibaba-style container traces, then
answers the paper's two research questions:

1. how much slack do cloud VMs have (how far can they be deflated with
   <=1% of time underallocated)?
2. how do workload class and VM size affect deflatability?
"""

import numpy as np

from repro.core.vm import VMClass
from repro.feasibility import (
    deflation_sweep,
    max_safe_deflation_per_vm,
    utilization_summary,
)
from repro.traces import (
    AlibabaTraceConfig,
    AzureTraceConfig,
    synthesize_alibaba_trace,
    synthesize_azure_trace,
)


def main() -> None:
    traces = synthesize_azure_trace(AzureTraceConfig(n_vms=800, seed=42))
    series = [r.cpu_util for r in traces]

    print("=== Q1: slack in cloud VMs (CPU) ===")
    sweep = deflation_sweep(series, levels=(0.1, 0.3, 0.5, 0.7))
    for row in sweep.as_table():
        print(
            f"  deflation {row['deflation_pct']:.0f}%: median VM underallocated "
            f"{100 * row['median']:.1f}% of the time (mean {100 * row['mean']:.1f}%)"
        )
    safe = max_safe_deflation_per_vm(series, tolerance=0.01)
    print(f"  median safe deflation (<=1% impact): {100 * float(np.median(safe)):.0f}%")

    print("\n=== Q2a: by workload class ===")
    for cls in VMClass:
        sub = [r.cpu_util for r in traces.by_class(cls)]
        if not sub:
            continue
        s = deflation_sweep(sub, levels=(0.5,))
        print(f"  {cls.value:>18}: mean underallocation at 50% deflation = "
              f"{100 * s.means()[0]:.1f}%")

    print("\n=== Q2b: by VM size (paper: no correlation) ===")
    for label in ("small(<=2GB)", "medium(<=8GB)", "large(>8GB)"):
        sub = [r.cpu_util for r in traces.by_size_class(label)]
        if not sub:
            continue
        s = deflation_sweep(sub, levels=(0.5,))
        print(f"  {label:>14}: mean underallocation at 50% deflation = "
              f"{100 * s.means()[0]:.1f}%")

    print("\n=== memory is occupied but idle (Alibaba containers) ===")
    containers = synthesize_alibaba_trace(AlibabaTraceConfig(n_containers=300))
    mem = deflation_sweep([r.mem_util for r in containers], levels=(0.1,))
    bw = utilization_summary([r.mem_bw_util for r in containers])
    print(f"  at 10% memory deflation, median container 'underallocated' "
          f"{100 * mem.medians()[0]:.0f}% of the time ...")
    print(f"  ... but mean memory-bus utilization is only {100 * bw.mean:.3f}% "
          f"- occupancy is not need")


if __name__ == "__main__":
    main()
