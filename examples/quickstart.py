"""Quickstart: deflatable VMs on one server, then a small cluster.

Run with::

    python examples/quickstart.py

Demonstrates the core public API:

* declare deflatable / on-demand VMs (:class:`repro.VMSpec`),
* host them under a deflation policy (:class:`repro.LocalDeflationController`),
* watch deflation and reinflation happen as pressure comes and goes,
* place VMs across a cluster with deflation-aware placement.
"""

from repro import ResourceVector, VMSpec, get_policy, on_demand_spec
from repro.cluster import make_uniform_cluster
from repro.core import LocalDeflationController


def single_server_demo() -> None:
    print("=== single server: proportional deflation ===")
    capacity = ResourceVector(cpu=48, memory_mb=128 * 1024, disk_mbps=2000, net_mbps=10_000)
    controller = LocalDeflationController(capacity, get_policy("proportional"))

    web = VMSpec(
        capacity=ResourceVector(cpu=16, memory_mb=32 * 1024, disk_mbps=500, net_mbps=1000),
        priority=0.4,
        min_fraction=0.1,
    )
    cache = VMSpec(
        capacity=ResourceVector(cpu=24, memory_mb=64 * 1024, disk_mbps=500, net_mbps=1000),
        priority=0.6,
        min_fraction=0.1,
    )
    controller.place(web)
    controller.place(cache)
    print(f"committed: {controller.committed()}")
    print(f"no pressure yet; web allocation = {controller.allocation_of(web.vm_id)}")

    # An on-demand VM arrives and pushes the server into overcommitment:
    # the two deflatable VMs shrink proportionally to make room.
    big = on_demand_spec(ResourceVector(cpu=24, memory_mb=64 * 1024, disk_mbps=500, net_mbps=1000))
    controller.place(big)
    print("after on-demand arrival (pressure!):")
    for vm_id, fracs in controller.deflation_summary().items():
        print(f"  {vm_id}: cpu deflated {100 * fracs['cpu']:.0f}%, "
              f"memory deflated {100 * fracs['memory_mb']:.0f}%")

    # The on-demand VM leaves; survivors reinflate automatically.
    controller.remove(big.vm_id)
    print(f"after departure, web allocation = {controller.allocation_of(web.vm_id)}")


def cluster_demo() -> None:
    print("\n=== cluster: deflation-aware placement ===")
    capacity = ResourceVector(cpu=48, memory_mb=128 * 1024, disk_mbps=2000, net_mbps=10_000)
    cluster = make_uniform_cluster(n_servers=4, capacity=capacity, policy=get_policy("priority"))

    placed = 0
    for i in range(14):
        spec = VMSpec(
            capacity=ResourceVector(cpu=16, memory_mb=32 * 1024, disk_mbps=200, net_mbps=500),
            priority=0.2 + 0.2 * (i % 4),
            deflatable=True,
        )
        decision = cluster.request_vm(spec)
        placed += 1
        print(f"  {spec.vm_id} (priority {spec.priority:.1f}) -> {decision.server_id}")
    stats = cluster.stats()
    print(f"placed {placed} VMs on {stats.n_servers} servers; "
          f"cluster overcommitment = {100 * stats.overcommitment:.0f}%")
    cluster.verify_invariants()
    print("all allocation invariants hold")


if __name__ == "__main__":
    single_server_demo()
    cluster_demo()
