"""The sharded scale-out engine, end to end.

Run with::

    PYTHONPATH=src python examples/sharded_engine.py

Walks the second execution backend (see ``docs/engines.md``):

1. **select** — engines are scenario data: ``with_engine("sharded")``
   routes the same declarative scenario to the scale-out backend, no
   other changes;
2. **verify** — the sharded run is bit-identical to ``cluster-sim`` on
   partitioned scenarios, with and without failure injection;
3. **inspect** — ``ShardedEngine.plan()`` exposes the shard split
   (per-pool servers, VMs, and sliced failure schedules) before running;
4. **guardrails** — scenarios the engine cannot replay exactly are
   rejected eagerly with actionable errors.
"""

from repro.errors import SimulationError
from repro.scenario import Scenario
from repro.simulator.sharded import ShardedEngine


def build_scenario() -> Scenario:
    return (
        Scenario(name="sharded-demo")
        .with_workload("azure", n_vms=2000, seed=23)
        .with_policy("proportional")
        .with_overcommitment(0.3)
        .with_partitions()
    )


def cross_engine_check() -> None:
    scenario = build_scenario()
    flat = scenario.run(engine="cluster-sim")
    sharded = scenario.run(engine="sharded")
    print("== same scenario, both engines ==")
    for label, r in (("cluster-sim", flat), ("sharded", sharded)):
        print(
            f"{label:<12} placed={r.sim.n_placed} "
            f"fail={r.failure_probability:.4f} loss={r.throughput_loss:.4f} "
            f"revenue[static]={r.revenue['static']:.1f}"
        )
    assert flat.sim == sharded.sim, "engines must agree bit for bit"
    print("bit-identical: True")

    # Failure injection shards too: the flat schedule is sliced per pool.
    faulty = scenario.with_failures("spot", rate=0.005, seed=7, response="evacuate")
    flat_f = faulty.run(engine="cluster-sim")
    sharded_f = faulty.run(engine="sharded")
    assert flat_f.sim == sharded_f.sim
    fi = sharded_f.collected["failure-injection"]
    print(
        f"with spot failures: revocations={fi['revocations']} "
        f"evacuated={fi['evacuated']} — still bit-identical"
    )


def inspect_plan() -> None:
    engine = ShardedEngine()
    plan = engine.plan(build_scenario())
    print(f"\n== shard plan ({plan.n_servers} servers) ==")
    for spec in plan.specs:
        print(
            f"shard {spec.shard_id}: servers "
            f"[{spec.server_offset}, {spec.server_offset + spec.config.n_servers}) "
            f"vms={len(spec.traces)}"
        )


def guardrails() -> None:
    print("\n== guardrails ==")
    flat_scenario = Scenario().with_workload("azure", n_vms=200, seed=23)
    try:
        flat_scenario.run(engine="sharded")
    except SimulationError as err:
        print(f"non-partitioned scenario rejected: {err}")
    timeline = build_scenario().with_collectors("timeline")
    try:
        timeline.run(engine="sharded")
    except SimulationError as err:
        print(f"unmergeable collector rejected: {err}")


def main() -> None:
    cross_engine_check()
    inspect_plan()
    guardrails()


if __name__ == "__main__":
    main()
