"""Correlated failures, warning-time drains, and elastic arrivals.

Run with::

    PYTHONPATH=src python examples/correlated_failures.py

Walks the churn half of the failure subsystem (see ``docs/failures.md``):

1. **blast radius** — the same revocation hazard delivered independently
   (``spot``) vs in rack-correlated bursts (``correlated-spot`` on a
   ``with_topology`` cluster): bursts strand far more VMs because the
   survivors must absorb whole racks at once;
2. **warning windows** — revocations that announce themselves: evacuation
   rationed to a per-interval budget until the deadline kills stragglers,
   across a range of warning lengths;
3. **elastic pools** — ``elastic-pool`` lets transient capacity flow back
   in; arrivals show up in the ``failure-log`` collector and in the
   nominal-capacity accounting.
"""

from repro.scenario import Scenario

BASE = (
    Scenario(name="churn-demo")
    .with_workload("azure", n_vms=300, seed=21)
    .with_policy("proportional")
    .with_overcommitment(0.3)
)
RATE = 0.004
SEED = 7


def blast_radius() -> None:
    print("== same hazard volume, independent vs rack-correlated ==")
    print(f"{'model':<18} {'racks':>5} {'revocations':>12} {'availability':>13} {'absorbed':>9}")
    cases = [("spot", None), ("correlated-spot", 8), ("correlated-spot", 2)]
    for model, racks in cases:
        s = BASE if racks is None else BASE.with_topology(racks=racks)
        r = s.with_failures(model, rate=RATE, seed=SEED, response="evacuate").run()
        fi = r.collected["failure-injection"]
        at_risk = fi["absorbed_core_intervals"] + fi["lost_core_intervals"]
        absorbed = fi["absorbed_core_intervals"] / at_risk if at_risk else 1.0
        print(
            f"{model:<18} {racks if racks else 1:>5} {fi['revocations']:>12} "
            f"{1.0 - r.failure_probability:>13.3f} {absorbed:>9.1%}"
        )


def warning_windows() -> None:
    print("\n== warning-time drains (budget: 2 VMs per interval) ==")
    print(f"{'warning':>7} {'evacuated':>10} {'stragglers':>11} {'availability':>13}")
    base = BASE.with_topology(racks=4)
    for warning in (None, 1, 3, 6):
        kwargs = {} if warning is None else {
            "warning_intervals": warning, "evacuation_budget": 2,
        }
        r = base.with_failures(
            "correlated-spot", rate=RATE, seed=SEED, response="evacuate", **kwargs
        ).run()
        fi = r.collected["failure-injection"]
        print(
            f"{warning if warning else 0:>7} {fi['evacuated']:>10} "
            f"{fi['deadline_killed']:>11} {1.0 - r.failure_probability:>13.3f}"
        )
    print("(warning 0 = instant deflation-first evacuation, the legacy path)")


def elastic_pool() -> None:
    r = (
        BASE.with_collectors("failure-log")
        .with_failures(
            "elastic-pool", rate=RATE, arrival_rate=0.03, seed=SEED,
        )
    ).run()
    fi = r.collected["failure-injection"]
    log = r.collected["failure-log"]
    print("\n== elastic pool: capacity flows back in ==")
    print(
        f"revoked={fi['servers_revoked']} arrived={fi['server_arrivals']} "
        f"nominal cores: {r.sim.total_capacity_cores:.0f} "
        f"(+{fi['arrived_nominal_cores']:.0f} from arrivals) "
        f"availability={1.0 - r.failure_probability:.3f}"
    )
    for t, event, server, scale in log[:6]:
        print(f"  t={t:6.1f} {event:<8} server={server}")
    if len(log) > 6:
        print(f"  ... {len(log) - 6} more events")


def main() -> None:
    blast_radius()
    warning_windows()
    elastic_pool()


if __name__ == "__main__":
    main()
