"""Regenerate every paper figure and export the series as CSV files.

Run with::

    python examples/export_figures.py [output_dir]

Produces one ``<figure-id>.csv`` per experiment (plus the four ablations)
under ``output_dir`` (default: ``./figures``) — ready for the plotting tool
of your choice.
"""

import sys
import time
from pathlib import Path

from repro.experiments.ablations import ABLATIONS
from repro.experiments.registry import EXPERIMENTS


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out_dir.mkdir(parents=True, exist_ok=True)

    jobs = list(EXPERIMENTS.items()) + [
        (f"ablation-{name}", fn) for name, fn in ABLATIONS.items()
    ]
    for figure_id, runner in jobs:
        start = time.perf_counter()
        result = runner("small")
        path = out_dir / f"{figure_id}.csv"
        result.to_csv(path)
        print(f"{figure_id:>22} -> {path}  ({time.perf_counter() - start:.1f}s, "
              f"{len(result.rows)} rows)")
    print(f"\nwrote {len(jobs)} CSV files to {out_dir}/")


if __name__ == "__main__":
    main()
