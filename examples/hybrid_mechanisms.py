"""VM deflation mechanisms on the simulated hypervisor (paper Section 4).

Run with::

    python examples/hybrid_mechanisms.py

Walks a KVM-style domain through the three deflation mechanisms and shows
why hybrid wins: explicit hotplug lets the guest cooperate (drop caches,
stay above its RSS), transparent multiplexing delivers exact fine-grained
targets, and hybrid composes them per Figure 13's pseudo-code.
"""

from repro.core.resources import ResourceVector
from repro.hypervisor import (
    GuestMemoryProfile,
    HypervisorConnection,
    TransparentMechanism,
)


def main() -> None:
    hv = HypervisorConnection(ncpus=48, memory_mb=256 * 1024, hostname="demo-host")
    profile = GuestMemoryProfile(
        rss_mb=10 * 1024, working_set_mb=6 * 1024, page_cache_mb=4 * 1024
    )
    domain = hv.create_domain(
        "jvm-vm",
        ResourceVector(cpu=8, memory_mb=16 * 1024, disk_mbps=500, net_mbps=1000),
        memory_profile=profile,
    )
    print(f"domain started: {domain.config.max_vcpus} vCPUs, "
          f"{domain.config.max_memory_mb:.0f} MB")

    # --- transparent: exact but guest-oblivious --------------------------------
    target = ResourceVector(cpu=3.5, memory_mb=9 * 1024, disk_mbps=250, net_mbps=500)
    TransparentMechanism(domain).apply(target)
    print("\ntransparent deflation to 3.5 cores / 9 GB:")
    print(f"  effective: {domain.effective_resources()}")
    print(f"  guest still sees {domain.guest.online_vcpus} vCPUs, "
          f"{domain.guest.plugged_memory_mb:.0f} MB plugged")
    print(f"  hypervisor must swap {domain.swapped_memory_mb():.0f} MB "
          f"(guest keeps touching heap + cache)")

    # --- hybrid: hotplug first, multiplex the rest -----------------------------
    mech = hv.mechanism("jvm-vm")
    mech.reinflate()
    report = mech.apply(target)
    print("\nhybrid deflation to the same target:")
    print(f"  memory hot-unplugged: {report.memory_hotplug.achieved:.0f} MB "
          f"(guest dropped caches, kept its RSS)")
    print(f"  cpu hotplug: {report.cpu_hotplug.achieved:.0f} vCPUs removed, "
          f"quota covers the fractional rest")
    print(f"  effective: {report.effective}")
    print(f"  hypervisor swap now: {domain.swapped_memory_mb():.0f} MB")

    # --- safety threshold ---------------------------------------------------------
    mech.reinflate()
    # Ask the raw explicit mechanism for 4 GB — far below the 10 GB RSS floor.
    outcome = mech.explicit.set_memory_mb(4 * 1024)
    print("\nattempt to hot-unplug straight to 4 GB (below the guest RSS):")
    print(f"  guest granted only {outcome.achieved:.0f} MB of "
          f"{outcome.requested:.0f} MB requested - hot unplug returns unfinished")
    print(f"  guest stops at its safety floor: "
          f"{domain.guest.plugged_memory_mb:.0f} MB still plugged")
    # The hybrid path closes the gap with the transparent layer instead.
    mech.deflate_memory(4 * 1024)
    print(f"  hybrid lands the VM on target anyway: "
          f"{domain.effective_memory_mb():.0f} MB effective")
    print(f"  the price: {domain.swapped_memory_mb():.0f} MB of hypervisor swap")


if __name__ == "__main__":
    main()
