"""The unified Scenario API, end to end.

Run with::

    python examples/scenario_pipeline.py

Shows the three layers of the pipeline:

1. **declare** — build scenarios fluently or from plain dicts;
2. **plug in** — register a custom pricing model and a custom placement
   scorer by name; they become first-class citizens everywhere (the revenue
   report below picks the new model up automatically);
3. **run** — execute a grid with ``run_sweep`` and slice the
   :class:`~repro.scenario.ResultSet` into series.
"""

from repro.pricing.models import PricingModel
from repro.registry import register
from repro.scenario import Scenario, run_sweep
from repro.simulator.components import PlacementScorer


# -- 2a. a plug-in pricing model: surge pricing for high-priority VMs ---------------
@register("pricing", "surge")
class SurgePricing(PricingModel):
    """Pay priority-rate plus a 50% surcharge above priority 0.6."""

    name = "surge"

    def rate(self, priority: float, allocation_fraction: float) -> float:
        return priority * (1.5 if priority > 0.6 else 1.0)


# -- 2b. a plug-in placement scorer: pack the fullest feasible server ---------------
@register("scorer", "fullest-first")  # repro-lint: disable=registry-docs (demo plug-in)
class FullestFirstScorer(PlacementScorer):
    name = "fullest-first"

    def score(self, demand_norm, avail_norm):
        return -avail_norm.sum(axis=1)


def main() -> None:
    # -- 1. declare ------------------------------------------------------------
    base = (
        Scenario(name="demo")
        .with_workload("azure", n_vms=300, seed=21)
        .with_collectors("event-counts")
    )
    from_dict = Scenario.from_dict(
        {
            "name": "demo-from-dict",
            "workload": {"source": "azure", "n_vms": 300, "seed": 21},
            "policy": "priority",
            "overcommitment": 0.5,
            "collectors": ["event-counts"],
        }
    )
    grid = [
        base.with_policy(policy).with_overcommitment(oc)
        for policy in ("proportional", "priority")
        for oc in (0.0, 0.3, 0.6)
    ] + [from_dict]

    # -- 3. run ----------------------------------------------------------------
    results = run_sweep(grid, workers=2)
    print(f"ran {len(results)} scenarios (2 workers, bit-identical to serial)\n")
    for r in results:
        print(f"  {r.describe()}")

    (halfway,) = results.filter(name="demo-from-dict")
    counts = halfway.collected.get("event-counts")
    print(f"\nfrom-dict scenario events: {counts}" if counts else "")

    print("\nrevenue per server at 60% OC (note the plugged-in 'surge' model):")
    (point,) = results.filter(policy="priority", overcommitment=0.6)
    for model, rev in sorted(point.revenue_per_server.items()):
        print(f"  {model:>10}: {rev:10.0f}")

    print("\ncustom scorer in one line:")
    custom = base.with_policy("proportional").with_overcommitment(0.6).with_scorer("fullest-first")
    cosine = base.with_policy("proportional").with_overcommitment(0.6)
    for r in run_sweep([cosine, custom]):
        print(f"  scorer={r.scenario.scorer:>14}: throughput loss {100 * r.throughput_loss:.2f}%")


if __name__ == "__main__":
    main()
