"""Failure injection, end to end: a revocation sweep on transient servers.

Run with::

    PYTHONPATH=src python examples/failure_injection.py

Walks the failure-injection subsystem (see ``docs/failures.md``):

1. **declare** — attach a registered failure model to a scenario with
   ``with_failures``; the spec is plain data and round-trips through
   ``to_dict`` like every other scenario field;
2. **sweep** — run a (revocation-rate x policy) grid through ``run_sweep``
   with a ``SweepCache`` (failure specs are part of the cache key, and the
   seeded schedules make parallel sweeps bit-identical to serial);
3. **compare responses** — deflation-first evacuation vs. kill-and-requeue
   on the same schedule, plus a capacity-dip run with the ``failure-log``
   collector recording each event.
"""

from repro.scenario import Scenario, SweepCache, run_sweep

#: Per-server revocation hazards (per 5-minute interval).
RATES = (0.002, 0.01)
POLICIES = ("proportional", "preemption")


def revocation_sweep() -> None:
    base = (
        Scenario(name="revocation-sweep")
        .with_workload("azure", n_vms=300, seed=21)
        .with_overcommitment(0.3)
    )
    grid = [
        base.with_policy(policy).with_failures(
            "spot", rate=rate, seed=7, response="evacuate"
        )
        for policy in POLICIES
        for rate in RATES
    ]

    cache = SweepCache()  # in-process; pass a path to persist across runs
    results = run_sweep(grid, workers=2, cache=cache)

    print("== spot revocations, deflation-first evacuation ==")
    print(f"{'policy':<14} {'rate':>6} {'revocations':>12} {'availability':>13} {'absorbed':>9}")
    for r in results:
        fi = r.collected["failure-injection"]
        at_risk = fi["absorbed_core_intervals"] + fi["lost_core_intervals"]
        absorbed = fi["absorbed_core_intervals"] / at_risk if at_risk else 1.0
        print(
            f"{r.scenario.policy:<14} {r.scenario.failures['rate']:>6} "
            f"{fi['revocations']:>12} {1.0 - r.failure_probability:>13.3f} "
            f"{absorbed:>9.1%}"
        )

    # A warm re-run is pure cache hits — bit-identical results, no simulation.
    rerun = run_sweep(grid, cache=cache)
    assert all(a == b for a, b in zip(results, rerun))
    print(f"cache: {cache.stats()}")


def response_comparison() -> None:
    base = (
        Scenario(name="responses")
        .with_workload("azure", n_vms=300, seed=21)
        .with_policy("proportional")
        .with_overcommitment(0.3)
    )
    print("\n== same schedule, evacuate vs kill-and-requeue ==")
    for response in ("evacuate", "kill"):
        r = base.with_failures(
            "spot", rate=0.01, seed=7, response=response, restart_delay=2
        ).run()
        fi = r.collected["failure-injection"]
        print(
            f"{response:<9} evacuated={fi['evacuated']:<3} killed={fi['killed']:<3} "
            f"recovered={fi['recovered']:<3} downtime={fi['downtime_intervals']:.0f} "
            f"intervals lost={fi['lost_core_intervals']:.0f} core-intervals"
        )


def capacity_dips() -> None:
    r = (
        Scenario(name="dips")
        .with_workload("azure", n_vms=300, seed=21)
        .with_policy("proportional")
        .with_overcommitment(0.2)
        .with_collectors("failure-log")
        .with_failures("capacity-dips", rate=0.004, depth=0.5, mean_duration=12, seed=3)
    ).run()
    fi = r.collected["failure-injection"]
    log = r.collected["failure-log"]
    print("\n== capacity dips (50% depth), absorbed by deflation ==")
    print(f"dips={fi['capacity_dips']} overruns={fi['capacity_overruns']} "
          f"throughput_loss={r.throughput_loss:.4f}")
    for t, event, server, scale in log[:5]:
        print(f"  t={t:6.1f} {event:<6} server={server} scale={scale}")
    if len(log) > 5:
        print(f"  ... {len(log) - 5} more events")


def main() -> None:
    revocation_sweep()
    response_comparison()
    capacity_dips()


if __name__ == "__main__":
    main()
