"""Seeded random scenario generator for the randomized equivalence layer.

The property suites (``tests/test_randomized_equivalence.py``) draw
scenarios from :func:`random_scenario` and assert that every execution
mode returns the same bits.  All randomness flows from one passed
``np.random.Generator``, so a run is a pure function of its seed: CI
replays the fixed default, ``--repro-fuzz-seed`` probes fresh ground, and
any failing scenario is reproducible from ``(seed, index)`` alone —
the failure message names both (see docs/testing.md).

Generated scenarios deliberately stay small (tight clusters, <200 VMs):
the layer's value is breadth across the configuration space — every
policy x sizing mode x partitioning x collector set x failure regime —
not trace length.
"""

from __future__ import annotations

import numpy as np

from repro.scenario import Scenario

POLICIES = ("proportional", "priority", "deterministic", "preemption")
ADMISSIONS = ("deflation-aware", "rigid")
SCORERS = ("cosine", "most-available", "least-available")
#: Only snapshottable + mergeable collectors: generated scenarios must be
#: able to ride every execution mode under test.
COLLECTORS = ("event-counts", "rejection-log", "failure-log")


def _pick(rng: np.random.Generator, options):
    return options[int(rng.integers(len(options)))]


def random_scenario(rng: np.random.Generator, index: int = 0) -> Scenario:
    """Draw one valid scenario; consumes a bounded number of rng draws."""
    scenario = (
        Scenario(name=f"fuzz-{index}")
        .with_workload("azure", n_vms=int(rng.integers(60, 181)), seed=int(rng.integers(1, 2**16)))
        .with_policy(_pick(rng, POLICIES))
        .with_scorer(_pick(rng, SCORERS))
    )
    # The preemption baseline carries its own fixed admission rule and
    # rejects a configured controller; draw regardless so the stream of
    # draws (and thus every later scenario) is policy-independent.
    admission = _pick(rng, ADMISSIONS)
    if scenario.policy != "preemption":
        scenario = scenario.with_admission(admission)

    # Sizing: the paper's overcommitment-driven shrink, or an explicit count.
    if rng.random() < 0.25:
        scenario = scenario.with_servers(int(rng.integers(10, 25)))
    else:
        scenario = scenario.with_overcommitment(float(_pick(rng, (0.0, 0.2, 0.4, 0.6))))

    if rng.random() < 0.5:
        scenario = scenario.with_partitions(int(rng.integers(2, 5)))

    n_collectors = int(rng.integers(0, len(COLLECTORS) + 1))
    if n_collectors:
        chosen = sorted(rng.choice(len(COLLECTORS), size=n_collectors, replace=False).tolist())
        scenario = scenario.with_collectors(*(COLLECTORS[i] for i in chosen))

    return _with_random_failures(rng, scenario)


def _with_random_failures(rng: np.random.Generator, scenario: Scenario) -> Scenario:
    roll = rng.random()
    seed = int(rng.integers(1, 2**16))
    rate = float(rng.uniform(0.002, 0.006))
    if roll < 0.22:
        return scenario  # failure-free
    if roll < 0.40:
        spec = {"model": "spot", "rate": rate, "seed": seed, "response": "evacuate"}
        return scenario.with_failures(**_maybe_warned(rng, spec))
    if roll < 0.55:
        return scenario.with_failures(
            "spot",
            rate=rate,
            seed=seed,
            response="kill",
            restart_delay=int(rng.integers(1, 4)),
        )
    if roll < 0.70:
        spec = {"model": "correlated-spot", "rate": rate, "seed": seed, "response": "evacuate"}
        return scenario.with_topology(racks=int(rng.integers(3, 7))).with_failures(
            **_maybe_warned(rng, spec)
        )
    if roll < 0.85:
        return scenario.with_failures(
            "elastic-pool",
            rate=rate,
            arrival_rate=float(rng.uniform(0.01, 0.03)),
            seed=seed,
        )
    return scenario.with_failures(
        "capacity-dips",
        rate=rate,
        depth=float(rng.uniform(0.3, 0.7)),
        mean_duration=float(rng.uniform(6.0, 18.0)),
        seed=seed,
    )


def _maybe_warned(rng: np.random.Generator, spec: dict) -> dict:
    """Sometimes add the warning-time drain knobs to an evacuate spec."""
    if rng.random() < 0.35:
        spec = dict(spec, warning_intervals=int(rng.integers(1, 4)))
        if rng.random() < 0.5:
            spec["evacuation_budget"] = int(rng.integers(1, 4))
    return spec


def waterfill_stress_scenario(rng: np.random.Generator, index: int = 0) -> Scenario:
    """Scenario biased toward the water-fill solver's corner regimes.

    The closed-form breakpoint solver (docs/performance.md, "Deliberate
    numerical changes") has distinct paths for tied breakpoints, saturated
    pools and degenerate active sets; these scenarios push replays into
    them: deep overcommitment so solves run cap-adjacent, high QoS floors
    so pools are nearly exhausted (cap-saturated, with identical per-class
    VM shapes producing tied breakpoints), and occasional tiny clusters
    whose servers host only one or two deflatable VMs.  Failure-free by
    design: the batched departure hot path only runs on the failure-free
    array loop, and this generator exists to hammer exactly that path
    against the per-event stream/resume and sharded replays.
    """
    tiny = rng.random() < 0.3
    n_vms = int(rng.integers(8, 26)) if tiny else int(rng.integers(60, 181))
    scenario = (
        Scenario(name=f"waterfill-stress-{index}")
        .with_workload("azure", n_vms=n_vms, seed=int(rng.integers(1, 2**16)))
        .with_policy(_pick(rng, ("priority", "priority-eq3", "proportional")))
        .with_scorer(_pick(rng, SCORERS))
        .with_admission(_pick(rng, ADMISSIONS))
        # Deep overcommitment keeps servers under pressure, so nearly every
        # departure triggers a real solve near the pool boundary.
        .with_overcommitment(float(_pick(rng, (0.4, 0.6, 0.8))))
    )
    if rng.random() < 0.5:
        # High floors shrink every deflatable pool toward zero width.
        scenario = scenario.with_min_fraction(float(_pick(rng, (0.5, 0.75, 0.9))))
    if rng.random() < 0.5:
        # Partitioned arm: overcommitment sizing above can shrink the
        # cluster below the pool count (which never shards), so pin an
        # explicit cluster with room for one server per pool while staying
        # small enough to keep real deflation pressure.
        scenario = scenario.with_servers(int(rng.integers(8, 16))).with_partitions(
            int(rng.integers(2, 5))
        )
    return scenario


def waterfill_stress_batch(seed: int, count: int, start: int = 0) -> list[Scenario]:
    """Deterministic batch of water-fill-stressing scenarios (same contract
    as :func:`scenario_batch`: reproduce one failure from (seed, index))."""
    rng = np.random.default_rng(seed)
    batch = [waterfill_stress_scenario(rng, index=i) for i in range(start + count)]
    return batch[start:]


def scenario_batch(seed: int, count: int, start: int = 0) -> list[Scenario]:
    """The deterministic batch a property suite iterates.

    One generator draws the whole batch, so scenario ``i`` depends on the
    seed and every draw before it — reproduce a single failure by
    regenerating the batch with the reported seed and indexing in.
    """
    rng = np.random.default_rng(seed)
    batch = [random_scenario(rng, index=i) for i in range(start + count)]
    return batch[start:]
