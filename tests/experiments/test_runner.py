"""Tests for the experiments CLI runner."""

import pytest

from repro.experiments.runner import main


class TestCLI:
    def test_single_figure(self, capsys):
        assert main(["fig03"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out
        assert "SpecJBB" in out

    def test_multiple_figures(self, capsys):
        assert main(["fig03", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out and "fig10" in out

    def test_unknown_figure_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["fig99"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig03", "--scale", "galactic"])

    def test_engine_flag_forwarded(self, capsys):
        assert main(["fig20", "--engine", "sharded"]) == 0
        out = capsys.readouterr().out
        assert "fig20" in out

    def test_engine_flag_warns_when_unsupported(self, capsys):
        assert main(["fig03", "--engine", "sharded"]) == 0
        err = capsys.readouterr().err
        assert "no engine knob" in err


class TestEngineAwareSweep:
    def test_sharded_grid_matches_cluster_sim(self):
        """fig20-22's shared grid is bit-identical across engines."""
        from repro.experiments.cluster_sweep import cluster_sweep

        flat = cluster_sweep("small", partitioned=True)
        sharded = cluster_sweep("small", partitioned=True, engine="sharded")
        for policy, points in flat.points.items():
            other = sharded.points[policy]
            assert [p.result for p in points] == [p.result for p in other]

    def test_sharded_requires_partitioned(self):
        from repro.errors import SimulationError
        from repro.experiments.cluster_sweep import cluster_sweep

        with pytest.raises(SimulationError, match="partitioned"):
            cluster_sweep("small", engine="sharded")
