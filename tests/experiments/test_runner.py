"""Tests for the experiments CLI runner."""

import pytest

from repro.experiments.runner import main


class TestCLI:
    def test_single_figure(self, capsys):
        assert main(["fig03"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out
        assert "SpecJBB" in out

    def test_multiple_figures(self, capsys):
        assert main(["fig03", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out and "fig10" in out

    def test_unknown_figure_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["fig99"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig03", "--scale", "galactic"])
