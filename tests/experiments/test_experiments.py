"""Every registered experiment must run at small scale and reproduce the
paper's qualitative claims (shape checks, not absolute numbers)."""

import pytest

from repro.errors import ReproError
from repro.experiments.base import ExperimentResult, check_scale
from repro.experiments.registry import EXPERIMENTS, get_experiment

ALL_IDS = sorted(EXPERIMENTS)


@pytest.fixture(scope="module")
def results():
    """Run every experiment once (small scale); reuse across assertions."""
    return {fig_id: EXPERIMENTS[fig_id]("small") for fig_id in ALL_IDS}


class TestRegistry:
    def test_experiment_count(self):
        assert len(EXPERIMENTS) == 19  # 17 paper figures + portfolio + churn

    def test_lookup(self):
        assert get_experiment("fig20") is EXPERIMENTS["fig20"]
        with pytest.raises(ReproError):
            get_experiment("fig99")

    def test_scale_validation(self):
        assert check_scale("small") == "small"
        with pytest.raises(ReproError):
            check_scale("enormous")


class TestAllRun:
    @pytest.mark.parametrize("fig_id", ALL_IDS)
    def test_runs_and_has_rows(self, results, fig_id):
        result = results[fig_id]
        assert isinstance(result, ExperimentResult)
        assert result.figure_id == fig_id
        assert result.rows, f"{fig_id} produced no rows"
        assert result.format_table()  # printable

    @pytest.mark.parametrize("fig_id", ALL_IDS)
    def test_rows_cover_columns(self, results, fig_id):
        result = results[fig_id]
        for row in result.rows:
            missing = [c for c in result.columns if c not in row]
            assert not missing, f"{fig_id} row missing {missing}"


class TestShapeClaims:
    def test_fig03_specjbb_has_no_slack_memcached_does(self, results):
        rows = results["fig03"].rows
        at_10 = next(r for r in rows if abs(r["deflation_pct"] - 10) < 1)
        assert at_10["SpecJBB"] < 0.99
        assert at_10["Memcached"] == pytest.approx(1.0)

    def test_fig05_median_low_at_50pct(self, results):
        rows = [r for r in results["fig05"].rows if abs(r["deflation_pct"] - 50) < 1]
        assert rows[0]["median"] <= 0.30

    def test_fig06_interactive_beats_batch(self, results):
        rows = results["fig06"].rows
        inter = {r["deflation_pct"]: r["mean"] for r in rows if r["group"] == "interactive"}
        batch = {r["deflation_pct"]: r["mean"] for r in rows if r["group"] == "delay-insensitive"}
        for pct in (30.0, 50.0):
            assert inter[pct] < batch[pct]

    def test_fig07_sizes_similar(self, results):
        rows = [r for r in results["fig07"].rows if abs(r["deflation_pct"] - 50) < 1]
        means = [r["mean"] for r in rows]
        assert max(means) - min(means) < 0.25

    def test_fig08_peak_orders_impact(self, results):
        rows = [r for r in results["fig08"].rows if abs(r["deflation_pct"] - 40) < 1]
        by_group = {r["group"]: r["mean"] for r in rows}
        order = ["p95<33%", "33%<=p95<66%", "66%<=p95<80%", "p95>=80%"]
        present = [g for g in order if g in by_group]
        vals = [by_group[g] for g in present]
        assert vals == sorted(vals)

    def test_fig09_memory_occupancy_high(self, results):
        rows = [r for r in results["fig09"].rows if abs(r["deflation_pct"] - 10) < 1]
        assert rows[0]["median"] > 0.70

    def test_fig10_bandwidth_tiny(self, results):
        rows = {r["statistic"]: r["value_pct"] for r in results["fig10"].rows}
        assert rows["mean"] < 0.2  # percent
        assert rows["max"] <= 1.01

    def test_fig11_disk_feasible(self, results):
        rows = [r for r in results["fig11"].rows if abs(r["deflation_pct"] - 50) < 1]
        assert rows[0]["mean"] < 0.01

    def test_fig12_network_feasible(self, results):
        rows = {r["deflation_pct"]: r["mean"] for r in results["fig12"].rows}
        assert rows[70.0] < 0.05
        assert rows[50.0] < 0.005

    def test_fig14_hybrid_advantage(self, results):
        rows = {r["deflation_pct"]: r for r in results["fig14"].rows}
        assert rows[20.0]["hybrid_rt"] < rows[20.0]["transparent_rt"]
        assert rows[45.0]["transparent_rt"] > 1.3

    def test_fig16_flat_then_degrading(self, results):
        rows = {r["deflation_pct"]: r for r in results["fig16"].rows}
        assert rows[50]["mean_rt_s"] < 1.5 * rows[0]["mean_rt_s"]
        assert rows[90]["mean_rt_s"] > 2 * rows[0]["mean_rt_s"]

    def test_fig17_served_cliff_after_70(self, results):
        rows = {r["deflation_pct"]: r["served_pct"] for r in results["fig17"].rows}
        assert rows[70] > 98
        assert rows[97] < 90

    def test_fig18_abrupt_knee(self, results):
        rows = {r["deflation_pct"]: r for r in results["fig18"].rows}
        assert rows[50]["p99_ms"] < 4 * rows[0]["p99_ms"]
        assert rows[65]["p99_ms"] > 2.5 * rows[50]["p99_ms"]

    def test_fig19_aware_wins_at_high_deflation(self, results):
        rows = {r["deflation_pct"]: r for r in results["fig19"].rows}
        assert rows[80]["aware_p90_s"] < rows[80]["vanilla_p90_s"]

    def test_fig20_deflation_beats_preemption(self, results):
        rows = {r["overcommit_pct"]: r for r in results["fig20"].rows}
        top = max(rows)
        assert rows[top]["preemption_failure"] > 0.1
        assert rows[top]["proportional_failure"] < rows[top]["preemption_failure"] / 3

    def test_fig21_priority_order_of_magnitude(self, results):
        rows = {r["overcommit_pct"]: r for r in results["fig21"].rows}
        top = max(rows)
        assert rows[top]["priority_loss"] < rows[top]["proportional_loss"]

    def test_fig22_pricing_ordering(self, results):
        rows = {r["overcommit_pct"]: r for r in results["fig22"].rows}
        top = max(rows)
        assert rows[top]["priority_increase_pct"] > rows[top]["static_increase_pct"]
        assert rows[top]["allocation_increase_pct"] < rows[top]["static_increase_pct"]
