"""Tests for the experiment-result container."""

import csv

from repro.experiments.base import ExperimentResult


def make_result():
    r = ExperimentResult(
        figure_id="figX",
        title="demo",
        columns=["x", "y"],
        notes="a note",
    )
    r.add_row(x=1.0, y=2.0)
    r.add_row(x=3.0, y=4.0)
    return r


class TestFormatting:
    def test_table_contains_everything(self):
        text = make_result().format_table()
        assert "figX" in text and "demo" in text and "a note" in text
        assert "x" in text and "3" in text

    def test_series_extraction(self):
        assert make_result().series("x", "y") == [(1.0, 2.0), (3.0, 4.0)]

    def test_series_skips_missing(self):
        r = make_result()
        r.add_row(x=9.0)  # no y
        assert len(r.series("x", "y")) == 2


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "fig.csv"
        make_result().to_csv(path)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows == [{"x": "1.0", "y": "2.0"}, {"x": "3.0", "y": "4.0"}]

    def test_extra_keys_ignored(self, tmp_path):
        r = make_result()
        r.add_row(x=5.0, y=6.0, secret=42)
        path = tmp_path / "fig.csv"
        r.to_csv(path)
        with path.open() as fh:
            header = fh.readline().strip()
        assert header == "x,y"
