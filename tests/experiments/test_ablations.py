"""Tests for the ablation experiments."""

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
    run_hotplug_granularity_ablation,
    run_min_fraction_ablation,
    run_placement_ablation,
    run_priority_levels_ablation,
)


class TestRegistry:
    def test_four_ablations(self):
        assert set(ABLATIONS) == {"placement", "minfrac", "hotplug", "priolevels"}

    @pytest.mark.parametrize("name", sorted(ABLATIONS))
    def test_runs_with_rows(self, name):
        result = ABLATIONS[name]("small")
        assert result.rows
        assert result.format_table()


class TestHotplugGranularity:
    def test_explicit_only_overshoots(self):
        result = run_hotplug_granularity_ablation("small")
        rows = {r["resource"]: r for r in result.rows}
        assert rows["cpu"]["mean_overshoot_pct"] > 0
        assert rows["memory"]["mean_overshoot_pct"] >= 0
        assert rows["hybrid(any)"]["mean_overshoot_pct"] == 0.0

    def test_cpu_overshoot_worse_than_memory(self):
        """vCPUs are far coarser units than 128 MB blocks relative to VM size."""
        result = run_hotplug_granularity_ablation("small")
        rows = {r["resource"]: r for r in result.rows}
        assert rows["cpu"]["mean_overshoot_pct"] > rows["memory"]["mean_overshoot_pct"]


class TestMinFraction:
    def test_floor_trades_failures_for_protection(self):
        result = run_min_fraction_ablation("small")
        rows = {r["min_fraction"]: r for r in result.rows}
        # Strong floors protect throughput (deflation barely bites) ...
        assert rows[0.75]["throughput_loss"] < rows[0.0]["throughput_loss"]
        assert rows[0.75]["mean_deflation"] < rows[0.0]["mean_deflation"]
        # ... at the price of reclamation failures (Eq. 2's tradeoff).
        failures = [rows[mf]["failure_prob"] for mf in (0.0, 0.25, 0.5, 0.75)]
        assert failures == sorted(failures)
        assert failures[-1] > 0

    def test_extreme_floor_fails_often(self):
        result = run_min_fraction_ablation("small")
        rows = {r["min_fraction"]: r for r in result.rows}
        assert rows[0.75]["failure_prob"] >= rows[0.0]["failure_prob"]


class TestPriorityLevels:
    def test_levels_run_and_report(self):
        result = run_priority_levels_ablation("small")
        assert [r["n_levels"] for r in result.rows] == [1, 2, 4, 8]
        for row in result.rows:
            assert 0.0 <= row["throughput_loss"] <= 1.0


class TestPlacement:
    def test_modes_compared_at_each_level(self):
        result = run_placement_ablation("small")
        modes = {(r["overcommit_pct"], r["mode"]) for r in result.rows}
        assert (50.0, "shared") in modes and (50.0, "partitioned") in modes
