"""A deliberately impure worker: the exact defect ``worker-purity`` bans.

Tests-only, never shipped.  ``impure_worker`` accumulates into a
module-level list and reports its length — so its answer depends on how
much state its *process* has already accumulated.  Run through
``supervised_map`` that means:

* under ``fork``, workers inherit a copy of the parent interpreter's
  ``_CALLS``, so any in-process call made before the fan-out shifts
  every worker's numbers;
* under ``spawn``, workers import this module fresh and start from an
  empty list.

The chaos-job regression test demonstrates that live fork/spawn
divergence, then feeds this same source to the static ``worker-purity``
rule and asserts the rule would have rejected the worker before any
process ever ran.
"""

from __future__ import annotations

_CALLS: list[int] = []


def impure_worker(item: int) -> int:
    """Returns the number of calls *this process* has seen — impure."""
    _CALLS.append(item)
    return len(_CALLS)


def reset() -> None:
    _CALLS.clear()
