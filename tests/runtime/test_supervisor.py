"""supervised_map: crash/timeout/raise handling, retries, backoff, ordering."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest
import sv_tasks

from repro.errors import SimulationError, SweepError
from repro.runtime import (
    RetryPolicy,
    TaskOutcome,
    raise_on_failures,
    resolve_start_method,
    supervised_map,
)

FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not FORK, reason="fork start method unavailable")

#: Snappy backoff so retry tests stay fast without changing semantics.
FAST = RetryPolicy(backoff_base=0.01, backoff_max=0.05)


def counter(tmp_path, tag):
    return str(tmp_path / f"{tag}.attempts")


def ok_item(payload=1):
    # os.devnull keeps the attempt file inert; n_bad=-1 never misbehaves
    # (the devnull "counter" always reads as attempt 0).
    return (os.devnull, -1, "raise", payload)


class TestHappyPath:
    def test_results_in_input_order(self, tmp_path):
        outcomes = supervised_map(sv_tasks.double, list(range(8)), workers=3)
        assert [o.index for o in outcomes] == list(range(8))
        assert [o.value for o in outcomes] == [2 * i for i in range(8)]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_serial_fallbacks_match_parallel(self):
        items = list(range(5))
        for workers in (None, 0, 1):
            outcomes = supervised_map(sv_tasks.double, items, workers=workers)
            assert [o.value for o in outcomes] == [0, 2, 4, 6, 8]

    def test_single_item_runs_in_process(self):
        outcomes = supervised_map(sv_tasks.double, [21], workers=8)
        assert outcomes[0].value == 42

    def test_on_complete_fires_once_per_task(self):
        seen = []
        supervised_map(sv_tasks.double, list(range(6)), workers=2, on_complete=seen.append)
        assert sorted(o.index for o in seen) == list(range(6))
        assert all(isinstance(o, TaskOutcome) for o in seen)


class TestCrash:
    def test_crash_is_retried_in_fresh_worker(self, tmp_path):
        path = counter(tmp_path, "crash-once")
        [outcome] = supervised_map(
            sv_tasks.flaky, [(path, 1, "crash", 10)], workers=2, policy=FAST
        )
        # workers=2 forces the parallel path even for one real task.
        assert outcome.ok and outcome.value == ("done", 20)
        assert outcome.attempts == 2
        assert sv_tasks.attempts(path) == 2

    def test_sigkill_mid_grid_spares_other_tasks(self, tmp_path):
        items = [ok_item(i) for i in range(6)]
        path = counter(tmp_path, "kill")
        items[3] = (path, 1, "kill", 3)
        outcomes = supervised_map(sv_tasks.flaky, items, workers=3, policy=FAST)
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [("done", 2 * i) for i in range(6)]
        assert outcomes[3].attempts == 2
        assert all(o.attempts == 1 for o in outcomes if o.index != 3)

    def test_crash_exhausts_retry_budget(self, tmp_path):
        path = counter(tmp_path, "always-crash")
        policy = RetryPolicy(max_retries=1, backoff_base=0.01)
        outcomes = supervised_map(
            sv_tasks.flaky,
            [ok_item(0), (path, 99, "crash", 1), ok_item(2)],
            workers=2,
            policy=policy,
        )
        assert outcomes[0].ok and outcomes[2].ok
        bad = outcomes[1]
        assert not bad.ok and bad.failure.kind == "crash"
        assert bad.attempts == 2 and sv_tasks.attempts(path) == 2
        assert "exitcode" in bad.failure.message

    @fork_only
    def test_backoff_delays_retries(self, tmp_path):
        path = counter(tmp_path, "backoff")
        policy = RetryPolicy(max_retries=3, backoff_base=0.4, backoff_factor=1.0)
        start = time.monotonic()
        [outcome] = supervised_map(
            sv_tasks.flaky, [(path, 2, "crash", 1)], workers=2,
            policy=policy, start_method="fork",
        )
        elapsed = time.monotonic() - start
        assert outcome.ok and outcome.attempts == 3
        assert elapsed >= 0.8  # two parked retries at >= 0.4s each


class TestRaise:
    def test_raise_fails_fast_by_default(self, tmp_path):
        path = counter(tmp_path, "raiser")
        outcomes = supervised_map(
            sv_tasks.flaky, [(path, 99, "raise", 1), ok_item(5)], workers=2
        )
        bad = outcomes[0]
        assert not bad.ok and bad.failure.kind == "raise"
        assert bad.failure.error_type == "ValueError"
        assert "flaky raise" in bad.failure.message
        assert "ValueError" in bad.failure.traceback
        assert bad.attempts == 1 and sv_tasks.attempts(path) == 1
        assert outcomes[1].ok

    def test_raise_retry_is_opt_in(self, tmp_path):
        path = counter(tmp_path, "raise-once")
        policy = RetryPolicy(retry_on=("raise", "crash", "timeout"), backoff_base=0.01)
        [outcome] = supervised_map(
            sv_tasks.flaky, [(path, 1, "raise", 4)], workers=2, policy=policy
        )
        assert outcome.ok and outcome.value == ("done", 8)
        assert outcome.attempts == 2 and sv_tasks.attempts(path) == 2

    def test_serial_path_retries_raises_with_same_policy(self, tmp_path):
        path = counter(tmp_path, "serial-raise")
        policy = RetryPolicy(retry_on=("raise",), backoff_base=0.0)
        [outcome] = supervised_map(
            sv_tasks.flaky, [(path, 1, "raise", 7)], workers=None, policy=policy
        )
        assert outcome.ok and outcome.attempts == 2

    def test_unpicklable_result_is_reported_not_fatal(self):
        outcomes = supervised_map(
            sv_tasks.return_lambda, [1, 2], workers=2
        )
        assert all(not o.ok for o in outcomes)
        assert all(o.failure.error_type == "UnpicklableResultError" for o in outcomes)


class TestTimeout:
    def test_hung_task_is_killed_and_retried(self, tmp_path):
        path = counter(tmp_path, "hang-once")
        policy = RetryPolicy(timeout=2.0, backoff_base=0.01)
        start = time.monotonic()
        [outcome] = supervised_map(
            sv_tasks.flaky, [(path, 1, "hang", 6)], workers=2, policy=policy
        )
        elapsed = time.monotonic() - start
        assert outcome.ok and outcome.value == ("done", 12)
        assert outcome.attempts == 2 and sv_tasks.attempts(path) == 2
        assert elapsed < 60  # the 600s sleep was cut short by the kill

    def test_timeout_exhaustion_reports_structured_failure(self, tmp_path):
        path = counter(tmp_path, "always-hang")
        policy = RetryPolicy(max_retries=1, timeout=0.5, backoff_base=0.01)
        outcomes = supervised_map(
            sv_tasks.flaky, [(path, 99, "hang", 1), ok_item(2)], workers=2, policy=policy
        )
        bad = outcomes[0]
        assert not bad.ok and bad.failure.kind == "timeout"
        assert bad.attempts == 2
        assert "wall-clock budget" in bad.failure.message
        assert outcomes[1].ok


class TestPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.35)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped
        assert RetryPolicy(backoff_base=0.0).backoff(5) == 0.0
        assert RetryPolicy().max_attempts == 3

    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(SimulationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(SimulationError, match="unknown retry_on"):
            RetryPolicy(retry_on=("crash", "oom"))

    def test_raise_on_failures(self):
        ok = TaskOutcome(index=0, status="ok", value=1)
        raise_on_failures([ok])  # no-op
        from repro.runtime import TaskFailure

        bad = TaskOutcome(
            index=1,
            status="failed",
            failure=TaskFailure(kind="crash", error_type="WorkerCrashed", message="boom"),
            attempts=3,
        )
        with pytest.raises(SweepError, match="1 of 2 shard task") as info:
            raise_on_failures([ok, bad], what="shard")
        assert isinstance(info.value, SimulationError)
        assert info.value.failures == (bad,)


class TestStartMethods:
    def test_env_var_and_override_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        assert resolve_start_method() in multiprocessing.get_all_start_methods()
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert resolve_start_method() == "spawn"
        if FORK:
            assert resolve_start_method("fork") == "fork"  # override beats env

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError, match="not available"):
            resolve_start_method("definitely-not-a-method")

    def test_spawn_crash_retry(self, tmp_path):
        path = counter(tmp_path, "spawn-crash")
        [outcome] = supervised_map(
            sv_tasks.flaky,
            [(path, 1, "crash", 9)],
            workers=2,
            policy=FAST,
            start_method="spawn",
        )
        assert outcome.ok and outcome.value == ("done", 18)
        assert outcome.attempts == 2 and sv_tasks.attempts(path) == 2

    @fork_only
    def test_fork_and_spawn_return_identical_outcomes(self):
        items = list(range(5))
        fork = supervised_map(sv_tasks.double, items, workers=2, start_method="fork")
        spawn = supervised_map(sv_tasks.double, items, workers=2, start_method="spawn")
        assert fork == spawn
