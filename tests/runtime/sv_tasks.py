"""Worker task functions for the supervisor tests.

Kept in a deliberately tiny module (stdlib imports only): under the
spawn start method every worker child imports the defining module of the
task function, and a heavyweight import would eat into the short
wall-clock timeouts these tests assert on.

Tasks carry their own misbehavior directive in the item — ``(state_file,
n_bad, mode, payload)`` — and count attempts by appending one byte to
``state_file`` per call, so the tests can assert exact attempt counts
across worker processes without any shared-memory machinery.
"""

from __future__ import annotations

import os
import signal
import time


def bump(path: str) -> int:
    """Append one attempt marker; returns this attempt's 1-based ordinal."""
    with open(path, "ab") as fh:
        fh.write(b"x")
    return os.path.getsize(path)


def attempts(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def flaky(arg):
    """Misbehave (`mode`) on the first ``n_bad`` attempts, then succeed."""
    path, n_bad, mode, payload = arg
    attempt = bump(path)
    if attempt <= n_bad:
        if mode == "raise":
            raise ValueError(f"flaky raise (attempt {attempt})")
        if mode == "crash":
            os._exit(43)
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(600)
        raise AssertionError(f"unknown flaky mode {mode!r}")
    return ("done", payload * 2)


def double(x):
    return 2 * x


def return_lambda(_x):
    return lambda: None  # unpicklable: the worker cannot ship it back
