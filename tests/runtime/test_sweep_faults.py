"""run_sweep under injected faults: the docs/robustness.md acceptance bar."""

from __future__ import annotations

import pytest
from chaos_tools import attempts, chaos_scenario, fork_only

from repro.errors import SimulationError, SweepError
from repro.runtime import RetryPolicy
from repro.scenario import SweepCache, SweepJournal, run_sweep

#: Snappy backoff so retries cost milliseconds, not the default tenths.
FAST = RetryPolicy(backoff_base=0.01, backoff_max=0.05)


def grid_with(bad, n_good=4):
    """``n_good`` well-behaved (but run-counting) scenarios plus ``bad``."""
    scenarios = [chaos_scenario("raise", 0, f"good-{i}", seed=10 + i) for i in range(n_good)]
    scenarios.insert(n_good // 2, bad)
    return scenarios


@fork_only
class TestCrashContainment:
    def test_sigkilled_worker_spares_the_rest_and_stays_bit_identical(self, chaos_state):
        """The acceptance test: SIGKILL a worker mid-grid; every other
        scenario still completes, and the retried scenario's results are
        bit-identical to a serial run of the same grid."""
        grid = grid_with(chaos_scenario("kill", 1, "victim"))
        parallel = run_sweep(grid, workers=3, retry=FAST, start_method="fork")
        assert parallel.complete and len(parallel) == len(grid)
        assert attempts("victim") == 2  # SIGKILLed once, retried once
        assert all(attempts(f"good-{i}") == 1 for i in range(4))

        # Counters are now past every directive, so a serial pass runs the
        # identical scenarios clean — supervision must not have changed a bit.
        serial = run_sweep(grid)
        for p, s in zip(parallel, serial):
            assert p == s  # full dataclass equality: scenario + sim payload

    def test_hard_exit_worker_is_contained_too(self, chaos_state):
        grid = grid_with(chaos_scenario("crash", 1, "exiter"), n_good=2)
        rs = run_sweep(grid, workers=2, retry=FAST, start_method="fork")
        assert rs.complete
        assert attempts("exiter") == 2

    def test_crash_exhaustion_raises_sweep_error_by_default(self, chaos_state):
        grid = grid_with(chaos_scenario("crash", 99, "doomed"), n_good=2)
        policy = RetryPolicy(max_retries=1, backoff_base=0.01)
        with pytest.raises(SweepError) as info:
            run_sweep(grid, workers=2, retry=policy, start_method="fork")
        assert isinstance(info.value, SimulationError)  # legacy handlers still catch
        assert "crash" in str(info.value)
        assert len(info.value.failures) == 1
        assert attempts("doomed") == 2  # the retry budget was honored


@fork_only
class TestCollectMode:
    def test_partial_results_with_structured_failures(self, chaos_state):
        grid = grid_with(chaos_scenario("raise", 99, "broken"), n_good=2)
        rs = run_sweep(grid, workers=2, on_error="collect", start_method="fork")
        assert len(rs) == len(grid)
        assert not rs.complete and rs.n_failed == 1
        assert len(rs.ok()) == 2

        [bad] = rs.failed()
        assert bad.error.kind == "raise"
        assert bad.error.error_type == "RuntimeError"
        assert bad.error.attempts == 1  # raises fail fast by default
        assert "chaos raise" in bad.error.message
        assert bad.status == "failed" and not bad.ok
        with pytest.raises(SimulationError, match="no metrics"):
            _ = bad.failure_probability

    def test_failed_scenarios_never_enter_cache_or_journal(self, chaos_state, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        journal = SweepJournal(tmp_path / "journal")
        grid = grid_with(chaos_scenario("raise", 99, "broken"), n_good=2)
        rs = run_sweep(
            grid, workers=2, cache=cache, journal=journal,
            on_error="collect", start_method="fork",
        )
        assert rs.n_failed == 1
        assert len(cache) == 2 and len(journal) == 2  # only the good results


@fork_only
class TestTimeouts:
    def test_hung_scenario_is_killed_and_retried(self, chaos_state):
        grid = grid_with(chaos_scenario("hang", 1, "sleeper"), n_good=2)
        rs = run_sweep(
            grid, workers=2, retry=FAST, timeout=5.0, start_method="fork"
        )
        assert rs.complete
        assert attempts("sleeper") == 2  # killed at the deadline, redone

    def test_timeout_exhaustion_surfaces_as_timeout_failure(self, chaos_state):
        grid = grid_with(chaos_scenario("hang", 99, "wedged"), n_good=2)
        policy = RetryPolicy(max_retries=1, timeout=1.0, backoff_base=0.01)
        rs = run_sweep(
            grid, workers=2, retry=policy, on_error="collect", start_method="fork"
        )
        [bad] = rs.failed()
        assert bad.error.kind == "timeout" and bad.error.attempts == 2
        assert len(rs.ok()) == 2


@fork_only
class TestRetriedDeterminism:
    def test_retried_scenario_equals_unfaulted_twin(self, chaos_state):
        """The same scenario run without any fault (fresh engine, serial)
        must produce the byte-identical sim payload a crash-retried parallel
        run produced."""
        victim = chaos_scenario("kill", 1, "twin")
        [retried] = run_sweep(
            [victim], workers=2, retry=FAST, start_method="fork"
        )
        assert attempts("twin") == 2
        clean = run_sweep([victim.with_engine("cluster-sim")])
        assert retried.sim == clean[0].sim
