"""Start-method plumbing: fork == spawn == serial, env-var selection."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import SimulationError
from repro.scenario import Scenario, run_sweep

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def small_grid():
    base = (
        Scenario(name="start-methods")
        .with_workload("azure", n_vms=40, seed=3)
        .with_servers(3)
    )
    return [base.with_policy(p) for p in ("proportional", "priority", "preemption")]


class TestBitIdentity:
    @fork_available
    def test_fork_spawn_and_serial_sweeps_are_identical(self):
        grid = small_grid()
        serial = run_sweep(grid)
        fork = run_sweep(grid, workers=2, start_method="fork")
        spawn = run_sweep(grid, workers=2, start_method="spawn")
        for s, f, p in zip(serial, fork, spawn):
            assert s == f == p  # scenario + full sim payload, bit for bit

    def test_env_var_steers_the_sweep(self, monkeypatch):
        # Point the default at spawn: the sweep must still match serial.
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        grid = small_grid()[:2]
        assert run_sweep(grid, workers=2) == run_sweep(grid)

    def test_unknown_method_is_rejected_eagerly(self):
        with pytest.raises(SimulationError, match="not available"):
            run_sweep(small_grid(), workers=2, start_method="not-a-method")
