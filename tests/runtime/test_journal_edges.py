"""SweepJournal edge cases: torn manifests, shared dirs, partial resumes.

The happy paths live in ``test_journal.py``; these are the uglier
corners the journal's reset-on-mismatch design must survive — a crash
mid-manifest-write, two different sweeps aimed at one directory, and
resuming after an ``on_error="collect"`` run that completed only part of
the grid.  The invariant throughout: a resume is bit-identical to a cold
run, and a journal never leaks results into the wrong sweep.
"""

from __future__ import annotations

import json

import pytest
from chaos_tools import attempts, chaos_scenario

from repro.runtime import SweepJournal
from repro.scenario import run_sweep


class TestTornManifest:
    """A crash mid-write can tear the *manifest*, not just entries."""

    @pytest.mark.parametrize(
        "tear",
        [
            b"",  # zero-length file (crash between create and write)
            b'{"version": 1, "fingerpr',  # truncated JSON
            b"\x00\x01garbage",  # not JSON at all
        ],
        ids=["empty", "truncated", "binary"],
    )
    def test_torn_manifest_resets_on_bind(self, tmp_path, tear):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 2)
        journal.record(0, "stale")
        (tmp_path / "j" / "manifest.json").write_bytes(tear)
        # The torn manifest can vouch for nothing: entries are discarded
        # rather than trusted, and the journal rebinds cleanly.
        fresh = SweepJournal(tmp_path / "j")
        assert fresh.bind("fp-1", 2) == {}
        assert fresh.record(1, "new")
        assert SweepJournal(tmp_path / "j").bind("fp-1", 2) == {1: "new"}
        manifest = json.loads((tmp_path / "j" / "manifest.json").read_text())
        assert manifest["fingerprint"] == "fp-1"

    def test_manifest_with_wrong_version_resets(self, tmp_path):
        journal = SweepJournal(tmp_path / "j")
        journal.bind("fp-1", 1)
        journal.record(0, "old-layout")
        manifest = json.loads((tmp_path / "j" / "manifest.json").read_text())
        manifest["version"] = 0  # an older journal layout
        (tmp_path / "j" / "manifest.json").write_text(json.dumps(manifest))
        assert SweepJournal(tmp_path / "j").bind("fp-1", 1) == {}


class TestSharedDirectory:
    """One directory, two differing sweeps: the second resets the first,
    and flip-flopping never serves sweep A's results to sweep B."""

    def test_two_sweeps_alternating_on_one_directory(self, chaos_state, tmp_path):
        grid_a = [chaos_scenario("raise", 0, f"a{i}", seed=20 + i) for i in range(3)]
        grid_b = [chaos_scenario("raise", 0, f"b{i}", seed=40 + i) for i in range(2)]
        path = tmp_path / "shared"

        first_a = run_sweep(grid_a, journal=SweepJournal(path))
        assert [attempts(f"a{i}") for i in range(3)] == [1, 1, 1]

        # B takes the directory: A's entries are wiped, B runs fully.
        first_b = run_sweep(grid_b, journal=SweepJournal(path))
        assert [attempts(f"b{i}") for i in range(2)] == [1, 1]
        assert len(SweepJournal(path)) == 2

        # A returns: nothing of B leaks into it, A re-runs fully and
        # reproduces its original bits.
        again_a = run_sweep(grid_a, journal=SweepJournal(path))
        assert [attempts(f"a{i}") for i in range(3)] == [2, 2, 2]
        for f, r in zip(first_a, again_a):
            assert f == r

        # And the directory now vouches for A again, so a further A resume
        # is served entirely from the journal.
        served = run_sweep(grid_a, journal=SweepJournal(path))
        assert [attempts(f"a{i}") for i in range(3)] == [2, 2, 2]
        for f, r in zip(first_b, run_sweep(grid_b, journal=SweepJournal(path))):
            assert f == r  # B re-runs (journal reset again), same bits
        for f, r in zip(first_a, served):
            assert f == r

    def test_same_grid_on_two_journal_objects_is_a_resume(self, chaos_state, tmp_path):
        """Two SweepJournal instances on one directory with the *same*
        sweep cooperate instead of resetting each other."""
        grid = [chaos_scenario("raise", 0, f"s{i}", seed=60 + i) for i in range(2)]
        run_sweep(grid, journal=SweepJournal(tmp_path / "j"))
        run_sweep(grid, journal=SweepJournal(tmp_path / "j"))
        assert [attempts(f"s{i}") for i in range(2)] == [1, 1]


class TestCollectResume:
    """``on_error="collect"`` completes part of the grid; the journal
    holds exactly the successes, and a resume retries only the failures."""

    def test_resume_after_partial_collect_run(self, chaos_state, tmp_path):
        grid = [
            chaos_scenario("raise", 0, "ok0", seed=20),
            chaos_scenario("raise", 1, "flaky", seed=21),  # fails once, then works
            chaos_scenario("raise", 0, "ok1", seed=22),
        ]
        journal = SweepJournal(tmp_path / "journal")
        partial = run_sweep(grid, journal=journal, on_error="collect")
        assert [r.ok for r in partial] == [True, False, True]
        assert len(journal) == 2  # failures are never journaled

        resumed = run_sweep(grid, journal=SweepJournal(tmp_path / "journal"))
        # Only the failed scenario re-ran; the successes were served.
        assert (attempts("ok0"), attempts("flaky"), attempts("ok1")) == (1, 2, 1)
        assert all(r.ok for r in resumed)

        # Bit-identity against an uninterrupted cold run of the same grid
        # (fresh counters so the flaky scenario's chaos budget is spent).
        cold_grid = [
            chaos_scenario("raise", 0, "cold0", seed=20),
            chaos_scenario("raise", 0, "cold1", seed=21),
            chaos_scenario("raise", 0, "cold2", seed=22),
        ]
        cold = run_sweep(cold_grid)
        for r, c in zip(resumed, cold):
            assert r.sim == c.sim

    def test_collect_resume_collects_a_still_failing_scenario(self, chaos_state, tmp_path):
        grid = [
            chaos_scenario("raise", 0, "fine", seed=30),
            chaos_scenario("raise", 9, "doomed", seed=31),  # beyond any retry
        ]
        journal = SweepJournal(tmp_path / "journal")
        first = run_sweep(grid, journal=journal, on_error="collect")
        assert [r.ok for r in first] == [True, False]

        again = run_sweep(grid, journal=SweepJournal(tmp_path / "journal"), on_error="collect")
        assert attempts("fine") == 1  # served from the journal
        assert attempts("doomed") == 2  # retried on resume, failed again
        assert [r.ok for r in again] == [True, False]
        assert again[1].error.error_type == "RuntimeError"
