"""Fixtures for the fault-tolerance suite (docs/robustness.md)."""

from __future__ import annotations

import pytest

import chaos_tools

chaos_tools.ensure_registered()


@pytest.fixture
def chaos_state(tmp_path, monkeypatch):
    """Fresh chaos attempt-counter directory, exported to workers via env."""
    state = tmp_path / "chaos-state"
    monkeypatch.setenv(chaos_tools.CHAOS_STATE_ENV, str(state))
    return state
