"""The ``worker-purity`` rule catches a real, reproduced fork/spawn bug.

The CI chaos job can only catch shared-state workers *probabilistically*
— the divergence needs the right start method and the right schedule.
This test pins the divergence down deterministically with the impure
worker in :mod:`purity_demo`, then runs the static rule over that same
source and asserts it flags the exact write that caused it.  Marked
``chaos`` because it deliberately exercises both start methods through
real worker processes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import purity_demo
from chaos_tools import fork_only
from repro.analysis.runner import run_lint
from repro.runtime.supervisor import raise_on_failures, supervised_map

pytestmark = pytest.mark.chaos


def _counts(start_method: str) -> list[int]:
    outcomes = supervised_map(
        purity_demo.impure_worker,
        [10, 20, 30, 40],
        workers=2,
        start_method=start_method,
    )
    raise_on_failures(outcomes, what="purity-demo")
    return [o.value for o in outcomes]


@fork_only
def test_impure_worker_diverges_between_fork_and_spawn():
    purity_demo.reset()
    # Pollute the parent interpreter with one in-process call — the kind
    # of incidental warm-up a cache fill or an eager import can cause.
    assert purity_demo.impure_worker(0) == 1

    spawn_counts = _counts("spawn")
    fork_counts = _counts("fork")

    # Spawn workers import purity_demo fresh: some worker's first item
    # sees an empty list and reports 1.
    assert min(spawn_counts) == 1, spawn_counts
    # Fork workers inherit the parent's polluted list: every count is
    # shifted by the pre-fan-out call, so no worker can ever report 1.
    assert min(fork_counts) >= 2, fork_counts
    # The same scenario, the same seed-free arithmetic, two different
    # answers: the exact divergence class worker-purity exists to ban.
    assert fork_counts != spawn_counts

    purity_demo.reset()


def test_static_rule_rejects_this_worker_before_any_process_runs(tmp_path):
    # Feed the *same source file* that just diverged to the lint rule,
    # wired into a minimal repo with a supervised_map fan-out site.
    source = (Path(__file__).parent / "purity_demo.py").read_text(encoding="utf-8")
    files = {
        "src/repro/runtime/supervisor.py": (
            "def supervised_map(fn, items, *, workers=None, start_method=None):\n"
            "    return [fn(i) for i in items]\n"
        ),
        "src/pkg/purity_demo.py": source,
        "src/pkg/driver.py": (
            "from repro.runtime.supervisor import supervised_map\n"
            "from pkg.purity_demo import impure_worker\n"
            "def run(items):\n"
            "    return supervised_map(impure_worker, items, workers=2)\n"
        ),
    }
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text, encoding="utf-8")

    report = run_lint(
        [tmp_path / "src"], root=tmp_path, select=["worker-purity"], baseline_path=None
    )
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.path == "src/pkg/purity_demo.py"
    assert "_CALLS" in finding.message
    assert "worker impure_worker()" in finding.message
    assert "_CALLS.append(item)" in finding.snippet
