"""The chaos engine: a tests-only engine that misbehaves on purpose.

Registered under kind ``engine`` as ``"chaos"`` (by ``conftest.py``
importing this module), never shipped in ``src``.  A scenario opts into
chaos through its *name*::

    chaos:<behavior>@<n>:<tag>

The engine misbehaves on the first ``n`` attempts — ``raise`` (an
in-worker exception), ``crash`` (``os._exit``), ``kill`` (SIGKILL to its
own worker), ``hang`` (sleep past any timeout) — then delegates to the
real ``cluster-sim`` engine, so a surviving run produces genuine
simulator results the tests can compare bit-for-bit against serial
baselines.  ``n = 0`` never misbehaves but still counts executions,
which is how the journal/cache tests observe what actually re-ran.

Attempts are counted in one file per tag under the directory named by
``REPRO_CHAOS_STATE`` (workers inherit the environment), so tests assert
exact retry counts across process boundaries.  Chaos sweeps must pin
``start_method="fork"``: spawn workers re-import the library fresh and
would not have this tests-only engine registered.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.registry import is_registered, register
from repro.scenario import Scenario
from repro.scenario.engine import ClusterSimEngine, Engine

CHAOS_STATE_ENV = "REPRO_CHAOS_STATE"

_BEHAVIORS = ("raise", "crash", "kill", "hang")

#: Chaos sweeps pin fork (workers must inherit the tests-only engine
#: registration); skip them on platforms without it.
fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos sweeps need the fork start method (inherited registry)",
)


def bump(tag: str) -> int:
    """Record one execution for ``tag``; returns its 1-based ordinal."""
    root = Path(os.environ[CHAOS_STATE_ENV])
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{tag}.attempts"
    with open(path, "ab") as fh:
        fh.write(b"x")
    return path.stat().st_size


def attempts(tag: str) -> int:
    path = Path(os.environ[CHAOS_STATE_ENV]) / f"{tag}.attempts"
    return path.stat().st_size if path.exists() else 0


def _parse(name: str):
    if not name.startswith("chaos:"):
        return None
    directive, _, tag = name[len("chaos:") :].partition(":")
    behavior, _, n = directive.partition("@")
    assert behavior in _BEHAVIORS and n.isdigit() and tag, f"bad chaos name {name!r}"
    return behavior, int(n), tag


class ChaosEngine(Engine):
    """Misbehaves per the scenario-name directive, then runs cluster-sim."""

    name = "chaos"

    def run(self, scenario: Scenario):
        directive = _parse(scenario.name)
        if directive is not None:
            behavior, n, tag = directive
            attempt = bump(tag)
            if attempt <= n:
                if behavior == "raise":
                    raise RuntimeError(f"chaos raise ({tag}, attempt {attempt})")
                if behavior == "crash":
                    os._exit(43)
                if behavior == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                time.sleep(600)  # hang: far past any test timeout
        return ClusterSimEngine().run(scenario)


def ensure_registered() -> None:
    if not is_registered("engine", "chaos"):
        register("engine", "chaos")(ChaosEngine)


def chaos_scenario(behavior: str, n: int, tag: str, *, seed: int = 7) -> Scenario:
    """A small, fast scenario (≈40 VMs on 3 servers) on the chaos engine."""
    return (
        Scenario(name=f"chaos:{behavior}@{n}:{tag}")
        .with_workload("azure", n_vms=40, seed=seed)
        .with_policy("proportional")
        .with_servers(3)
        .with_engine("chaos")
    )
